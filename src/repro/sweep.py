"""Parallel design-space sweep engine with on-disk result caching.

The platform earns its keep by sweeping large design spaces — the
platform-instance comparisons of Figs. 3-5 and the LMI knob studies of
Fig. 6 each simulate many configurations that are completely independent
of one another.  This module is the execution layer those loops route
through:

:func:`sweep`
    Fan a list of :class:`~repro.platforms.config.PlatformConfig` objects
    out across worker processes and aggregate the
    :class:`~repro.analysis.metrics.RunResult` s deterministically (results
    come back in input order regardless of completion order).  Workers
    receive configurations serialised through the existing
    ``config_to_dict``/``config_from_dict`` round trip, run with an
    optional per-job wall-clock timeout, are retried once if a worker
    process crashes, and the whole engine degrades gracefully to
    in-process execution when multiprocessing is unavailable.

:class:`SweepCache`
    Completed points are cached on disk keyed by a canonical-JSON SHA-256
    of the configuration plus ``max_ps`` (see :func:`config_key`), so
    repeated sweeps and re-runs of ``repro run all`` skip
    already-simulated configurations.  Because every simulation is
    deterministic, a cache hit is bit-identical to a fresh run.

:func:`parallel_map`
    The same pool machinery for experiment workloads that are not plain
    ``PlatformConfig`` runs (single-layer studies, monitor-instrumented
    runs); falls back to a serial map whenever the work is not picklable.

:func:`load_sweep`
    Parse a ``repro sweep`` specification file — a base platform document
    plus explicit ``points`` and/or a cartesian ``grid`` of dotted-path
    overrides — into labelled configurations.

Determinism and observability guarantees:

* every configuration runs on a fresh :class:`~repro.core.kernel.Simulator`
  with seeds taken from the config, so per-config ``(events, sim_time_ps)``
  are bit-identical whether the point ran serially, in a pool, or came
  from the cache (``tests/test_sweep.py`` pins this);
* while an ambient observability capture (:func:`repro.obs.capture`) is
  active the engine forces serial in-process execution and bypasses cache
  hits — span recorders only see simulators built in this process.
"""

from __future__ import annotations

import dataclasses
import hashlib
import itertools
import json
import os
import pickle
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from .analysis.metrics import RunResult
from .core import kernel as _kernel
from .platforms.config import PlatformConfig
from .platforms.loader import ConfigError, config_from_dict, config_to_dict

#: Default wall-clock guard for platform runs (simulated picoseconds).
DEFAULT_MAX_PS = 20_000_000_000_000

#: Bumped whenever the cache entry schema (or simulation semantics that
#: invalidate old entries) change; part of every cache key.
#: 2: RunResult grew energy fields (energy_pj, energy_total_pj) and the
#: configuration document grew the ``energy`` coefficient block.
CACHE_SCHEMA = 2


class SweepError(RuntimeError):
    """A sweep could not complete (worker crash loop or job timeout)."""


# ----------------------------------------------------------------------
# cache keys and result serialisation
# ----------------------------------------------------------------------
def config_key(config: PlatformConfig, max_ps: int = DEFAULT_MAX_PS) -> str:
    """Canonical-JSON SHA-256 of a configuration plus its run bound.

    The key is stable across processes and sessions: the config document
    is serialised with sorted keys and no whitespace, and the package
    version plus :data:`CACHE_SCHEMA` are mixed in so entries from an
    incompatible simulator vintage never match.
    """
    from . import __version__

    payload = {
        "schema": CACHE_SCHEMA,
        "version": __version__,
        "max_ps": int(max_ps),
        "config": config_to_dict(config),
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


_RESULT_FIELDS = tuple(f.name for f in dataclasses.fields(RunResult))


def result_to_dict(result: RunResult) -> Dict[str, Any]:
    """Serialise a :class:`RunResult` to a JSON-compatible dict."""
    return dataclasses.asdict(result)


def result_from_dict(document: Dict[str, Any]) -> RunResult:
    """Rebuild a :class:`RunResult`; raises ``ConfigError`` on drift."""
    try:
        return RunResult(**{name: document[name] for name in _RESULT_FIELDS})
    except (KeyError, TypeError) as exc:
        raise ConfigError(f"malformed cached result: {exc}") from exc


@dataclass
class CachedRun:
    """One simulated point as persisted by the cache."""

    result: RunResult
    events: int
    sim_time_ps: int


@dataclass
class SweepOutcome:
    """One sweep point: the result plus execution provenance."""

    config: PlatformConfig
    key: str
    result: RunResult
    events: int
    sim_time_ps: int
    cached: bool


def default_cache_dir() -> Path:
    """Cache root: ``$REPRO_SWEEP_CACHE``, ``$XDG_CACHE_HOME/repro/sweeps``
    or ``~/.cache/repro/sweeps``.

    On CI runners (``$CI`` set) and on hosts without a resolvable home
    directory the default drops to a per-boot temp directory instead, so
    sweeps stay hermetic and never fail over an unwritable ``$HOME``.
    """
    override = os.environ.get("REPRO_SWEEP_CACHE")
    if override:
        return Path(override)
    xdg = os.environ.get("XDG_CACHE_HOME")
    if xdg:
        return Path(xdg) / "repro" / "sweeps"
    if os.environ.get("CI"):
        return Path(tempfile.gettempdir()) / "repro-sweeps"
    try:
        home = Path.home()
    except (KeyError, RuntimeError):
        return Path(tempfile.gettempdir()) / "repro-sweeps"
    return home / ".cache" / "repro" / "sweeps"


class SweepCache:
    """Disk cache of sweep results, one JSON file per config key.

    Reads treat any unreadable or malformed entry as a miss and writes
    are atomic (temp file + rename), so a cache shared between parallel
    invocations can never serve a torn entry.  All I/O errors degrade to
    cache-off behaviour rather than failing the sweep.
    """

    def __init__(self, root: Union[str, Path, None] = None) -> None:
        self._root: Optional[Path] = Path(root) if root is not None else None

    @property
    def root(self) -> Path:
        """The cache directory, resolved lazily: constructing a cache must
        never fail (or create anything) on hosts without a usable $HOME —
        only actual cache traffic touches the filesystem."""
        if self._root is None:
            self._root = default_cache_dir()
        return self._root

    def path_for(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def get(self, key: str) -> Optional[CachedRun]:
        try:
            document = json.loads(self.path_for(key).read_text())
            if document.get("schema") != CACHE_SCHEMA:
                return None
            return CachedRun(result=result_from_dict(document["result"]),
                             events=int(document["events"]),
                             sim_time_ps=int(document["sim_time_ps"]))
        except (OSError, ValueError, KeyError, TypeError):
            return None

    def put(self, key: str, run: CachedRun) -> None:
        document = {"schema": CACHE_SCHEMA, "key": key,
                    "result": result_to_dict(run.result),
                    "events": run.events, "sim_time_ps": run.sim_time_ps}
        # The temp file must be unique per *writer*, not per key: two
        # processes simulating the same uncached config would otherwise
        # interleave writes into one shared "<key>.tmp" and the rename
        # could publish a torn entry.  mkstemp gives each writer its own
        # file in the same directory, so os.replace stays atomic and
        # last-writer-wins (both writers hold bit-identical results).
        tmp = None
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=self.root, prefix=f"{key[:16]}-",
                                       suffix=".tmp")
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(json.dumps(document, sort_keys=True))
            os.replace(tmp, self.path_for(key))
        except OSError:
            # An unwritable cache must never fail the sweep; drop the
            # orphaned temp file if the rename is what failed.
            if tmp is not None:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        if self.root.is_dir():
            for path in self.root.glob("*.json"):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*.json"))


# ----------------------------------------------------------------------
# execution
# ----------------------------------------------------------------------
def default_jobs() -> int:
    """Worker count when none is given: ``$REPRO_JOBS`` or 1 (serial)."""
    raw = os.environ.get("REPRO_JOBS", "")
    try:
        return max(1, int(raw))
    except ValueError:
        return 1


def _capture_active() -> bool:
    """Is an ambient observability capture installed in this process?"""
    return bool(_kernel._new_sim_hooks)


def _simulate(config: PlatformConfig, max_ps: int) -> CachedRun:
    """Run one configuration on a fresh simulator (the worker body)."""
    from .core import Simulator
    from .platforms import build_platform

    sim = Simulator()
    platform = build_platform(sim, config)
    result = platform.run(max_ps=max_ps)
    return CachedRun(result=result, events=sim.processed_events,
                     sim_time_ps=sim.now)


def _worker(payload: Tuple[Dict[str, Any], int]) -> Dict[str, Any]:
    """Process-pool entry point: config document in, result document out."""
    document, max_ps = payload
    run = _simulate(config_from_dict(document), max_ps)
    return {"result": result_to_dict(run.result), "events": run.events,
            "sim_time_ps": run.sim_time_ps}


def _make_executor(jobs: int):
    """A process pool, or ``None`` when multiprocessing is unavailable."""
    try:
        from concurrent.futures import ProcessPoolExecutor

        return ProcessPoolExecutor(max_workers=jobs)
    except (ImportError, NotImplementedError, OSError, ValueError):
        return None


def _pool_map(fn: Callable[[Any], Any], payloads: Sequence[Any], jobs: int,
              timeout_s: Optional[float], retries: int = 1) -> Optional[List]:
    """Ordered process-pool map with per-job timeout and crash retry.

    Returns ``None`` when no pool could be created at all (the caller
    falls back to a serial map).  A job whose worker process dies is
    resubmitted to a fresh pool up to ``retries`` times; a job that
    exceeds ``timeout_s`` aborts the sweep with :class:`SweepError`.
    """
    import concurrent.futures as cf
    from concurrent.futures.process import BrokenProcessPool

    results: List[Any] = [None] * len(payloads)
    pending: List[Tuple[int, Any]] = list(enumerate(payloads))
    attempt = 0
    while pending:
        executor = _make_executor(min(jobs, len(pending)))
        if executor is None:
            if attempt == 0:
                return None
            raise SweepError("process pool unavailable while retrying "
                             "crashed sweep workers")
        crashed: List[Tuple[int, Any]] = []
        try:
            submitted = [(index, payload, executor.submit(fn, payload))
                         for index, payload in pending]
            for index, payload, future in submitted:
                try:
                    results[index] = future.result(timeout=timeout_s)
                except cf.TimeoutError:
                    raise SweepError(
                        f"sweep job {index} exceeded the {timeout_s}s "
                        f"wall-clock timeout") from None
                except BrokenProcessPool:
                    crashed.append((index, payload))
        finally:
            executor.shutdown(wait=False, cancel_futures=True)
        if crashed and attempt >= retries:
            raise SweepError(
                f"{len(crashed)} sweep worker(s) crashed "
                f"{attempt + 1} time(s); giving up")
        pending = crashed
        attempt += 1
    return results


def _resolve_cache(cache) -> Optional[SweepCache]:
    """Normalise the ``cache`` argument of :func:`sweep`."""
    if cache is False:
        return None
    if cache is None or cache is True:
        return SweepCache()
    if isinstance(cache, SweepCache):
        return cache
    return SweepCache(cache)


def sweep(configs: Iterable[PlatformConfig],
          max_ps: int = DEFAULT_MAX_PS,
          jobs: Optional[int] = None,
          cache: Union[SweepCache, str, Path, bool, None] = None,
          timeout_s: Optional[float] = None,
          retries: int = 1) -> List[SweepOutcome]:
    """Run every configuration, in parallel where possible, with caching.

    ``jobs=None`` reads ``$REPRO_JOBS`` (default 1 = serial in-process).
    ``cache=None`` uses the default on-disk cache; pass ``False`` to
    disable caching or a :class:`SweepCache`/path to redirect it.
    Outcomes are returned in input order; duplicate configurations are
    simulated once and shared.
    """
    configs = list(configs)
    jobs = default_jobs() if jobs is None else max(1, int(jobs))
    store = _resolve_cache(cache)
    # Span recorders attach only to simulators built in this process, and
    # a cache hit would skip simulation entirely — under a capture the
    # sweep runs serially and re-simulates every point.
    capturing = _capture_active()

    keys = [config_key(config, max_ps) for config in configs]
    outcomes: List[Optional[SweepOutcome]] = [None] * len(configs)
    first_index: Dict[str, int] = {}
    duplicates: List[Tuple[int, int]] = []
    misses: List[int] = []
    for index, key in enumerate(keys):
        if key in first_index:
            duplicates.append((index, first_index[key]))
            continue
        first_index[key] = index
        if store is not None and not capturing:
            hit = store.get(key)
            if hit is not None:
                outcomes[index] = SweepOutcome(
                    config=configs[index], key=key, result=hit.result,
                    events=hit.events, sim_time_ps=hit.sim_time_ps,
                    cached=True)
                continue
        misses.append(index)

    if misses:
        executed: Dict[int, CachedRun] = {}
        pool_out = None
        if jobs > 1 and len(misses) > 1 and not capturing:
            payloads = [(config_to_dict(configs[index]), int(max_ps))
                        for index in misses]
            pool_out = _pool_map(_worker, payloads, jobs, timeout_s, retries)
        if pool_out is None:
            for index in misses:
                executed[index] = _simulate(configs[index], max_ps)
        else:
            for index, raw in zip(misses, pool_out):
                executed[index] = CachedRun(
                    result=result_from_dict(raw["result"]),
                    events=int(raw["events"]),
                    sim_time_ps=int(raw["sim_time_ps"]))
        for index in misses:
            run = executed[index]
            if store is not None:
                store.put(keys[index], run)
            outcomes[index] = SweepOutcome(
                config=configs[index], key=keys[index], result=run.result,
                events=run.events, sim_time_ps=run.sim_time_ps, cached=False)

    for index, source in duplicates:
        original = outcomes[source]
        outcomes[index] = SweepOutcome(
            config=configs[index], key=keys[index],
            result=dataclasses.replace(original.result),
            events=original.events, sim_time_ps=original.sim_time_ps,
            cached=True)
    return outcomes  # type: ignore[return-value]


def warm_sweep(configs: Iterable[PlatformConfig],
               checkpoint_dir: Union[str, Path],
               max_ps: int = DEFAULT_MAX_PS,
               fraction: float = 0.5) -> List[SweepOutcome]:
    """Warm-started sweep: every point runs from a verified checkpoint.

    The first invocation populates ``checkpoint_dir`` with one mid-run
    checkpoint per configuration (keyed like the result cache) while
    producing the results; later invocations resume each point from its
    stored checkpoint, which re-verifies the entire state tree bit for
    bit at the checkpoint instant before continuing — so any simulator
    change that silently alters behaviour is caught at the prefix, not
    discovered as drifted sweep numbers.  Outcomes are bit-identical to
    :func:`sweep` either way; ``cached=True`` marks resumed points.
    Serial by design: resume verification attaches to in-process state.
    """
    from .snapshot import (
        SnapshotError,
        load_checkpoint,
        resume_checkpoint,
        save_checkpoint,
        take_checkpoint,
    )

    root = Path(checkpoint_dir)
    outcomes: List[SweepOutcome] = []
    for config in configs:
        key = config_key(config, max_ps)
        path = root / f"{key}.ckpt.json"
        if path.is_file():
            try:
                resumed = resume_checkpoint(load_checkpoint(path))
            except SnapshotError as exc:
                raise SweepError(
                    f"warm-start checkpoint {path.name} failed: {exc}") \
                    from exc
            if not resumed.ok:
                raise SweepError(
                    f"warm-start checkpoint {path.name} diverged:\n  "
                    + "\n  ".join(resumed.mismatches))
            outcomes.append(SweepOutcome(
                config=config, key=key, result=resumed.result,
                events=resumed.final_events,
                sim_time_ps=resumed.final_time_ps, cached=True))
            continue
        taken = take_checkpoint(config, fraction=fraction, max_ps=max_ps)
        save_checkpoint(taken.checkpoint, path)
        outcomes.append(SweepOutcome(
            config=config, key=key, result=taken.result,
            events=taken.final_events, sim_time_ps=taken.final_time_ps,
            cached=False))
    return outcomes


def parallel_map(fn: Callable[[Any], Any], items: Iterable[Any],
                 jobs: Optional[int] = None,
                 timeout_s: Optional[float] = None) -> List[Any]:
    """Ordered map over ``items``, fanned out when it is safe to do so.

    Runs serially in-process when ``jobs <= 1``, when an observability
    capture is active, or when ``fn``/``items`` cannot cross a process
    boundary (pickling failure) — so callers never need a fallback path.
    """
    items = list(items)
    jobs = default_jobs() if jobs is None else max(1, int(jobs))
    if jobs <= 1 or len(items) <= 1 or _capture_active():
        return [fn(item) for item in items]
    # Probe picklability *before* creating a pool: submitting an
    # unpicklable callable poisons the executor's call queue (the worker
    # blocks forever on a work item that never arrives), which can
    # deadlock interpreter shutdown.  An eager check keeps the fallback
    # decision entirely in this process.
    try:
        pickle.dumps(fn)
        pickle.dumps(items)
    except Exception:
        return [fn(item) for item in items]
    mapped = _pool_map(fn, items, jobs, timeout_s)
    if mapped is None:
        return [fn(item) for item in items]
    return mapped


# ----------------------------------------------------------------------
# sweep specification files (the `repro sweep` subcommand)
# ----------------------------------------------------------------------
_SPEC_KEYS = frozenset({"base", "points", "grid", "jobs", "max_us"})


@dataclass
class SweepSpec:
    """A parsed sweep file: labelled configurations plus run options."""

    labels: List[str]
    configs: List[PlatformConfig]
    jobs: Optional[int]
    max_ps: int


def deep_merge(base: Dict[str, Any],
               override: Dict[str, Any]) -> Dict[str, Any]:
    """Recursively merge ``override`` into a copy of ``base``.

    Shared by sweep ``points`` expansion and the DSE search-space
    translator (:mod:`repro.dse.space`), so both layers override platform
    documents with identical semantics.
    """
    merged = dict(base)
    for key, value in override.items():
        if isinstance(value, dict) and isinstance(merged.get(key), dict):
            merged[key] = deep_merge(merged[key], value)
        else:
            merged[key] = value
    return merged


def set_dotted(document: Dict[str, Any], dotted: str, value: Any) -> None:
    """Set a dotted-path key (``"memory.wait_states"``) in ``document``."""
    parts = dotted.split(".")
    node = document
    for part in parts[:-1]:
        child = node.get(part)
        if not isinstance(child, dict):
            child = {}
            node[part] = child
        node = child
    node[parts[-1]] = value


# Historical aliases (pre-DSE internal names).
_deep_merge = deep_merge
_set_dotted = set_dotted


def parse_sweep(document: Dict[str, Any]) -> SweepSpec:
    """Expand a sweep document into labelled platform configurations.

    Schema::

        {
          "jobs": 4,                    # optional worker count
          "max_us": 20000.0,            # optional per-run bound
          "base": { ...platform document... },
          "points": [{"label": "a", ...overrides...}, ...],
          "grid": {"traffic_scale": [0.5, 1.0],
                   "memory.wait_states": [1, 4]}
        }

    ``points`` are deep-merged over ``base``; the cartesian product of
    ``grid`` (dotted paths into the document) is then applied to every
    point.  With neither, the sweep is the single ``base`` platform.
    """
    unknown = set(document) - _SPEC_KEYS
    if unknown:
        raise ConfigError(f"sweep: unknown keys {sorted(unknown)}; "
                          f"allowed: {sorted(_SPEC_KEYS)}")
    base = document.get("base", {})
    if not isinstance(base, dict):
        raise ConfigError("sweep.base: must be a platform object")
    points = document.get("points", [{}])
    if not isinstance(points, list) or not points:
        raise ConfigError("sweep.points: must be a non-empty list")
    grid = document.get("grid", {})
    if not isinstance(grid, dict) or not all(
            isinstance(values, list) and values for values in grid.values()):
        raise ConfigError("sweep.grid: must map dotted paths to non-empty "
                          "value lists")

    labels: List[str] = []
    configs: List[PlatformConfig] = []
    axes = list(grid.items())
    for number, point in enumerate(points):
        if not isinstance(point, dict):
            raise ConfigError(f"sweep.points[{number}]: must be an object")
        point = dict(point)
        point_label = str(point.pop("label", f"point{number}"))
        merged = deep_merge(base, point)
        for combo in itertools.product(*(values for _, values in axes)):
            expanded = json.loads(json.dumps(merged))  # deep copy
            tags = []
            for (path, _values), value in zip(axes, combo):
                set_dotted(expanded, path, value)
                tags.append(f"{path}={value}")
            label = ",".join([point_label] + tags) if tags else point_label
            try:
                configs.append(config_from_dict(expanded))
            except ValueError as exc:
                raise ConfigError(f"sweep point {label!r}: {exc}") from exc
            labels.append(label)

    jobs = document.get("jobs")
    if jobs is not None and (not isinstance(jobs, int) or jobs < 1):
        raise ConfigError("sweep.jobs: must be a positive integer")
    max_us = document.get("max_us", DEFAULT_MAX_PS / 1_000_000)
    if not isinstance(max_us, (int, float)) or max_us <= 0:
        raise ConfigError("sweep.max_us: must be a positive number")
    return SweepSpec(labels=labels, configs=configs, jobs=jobs,
                     max_ps=int(max_us * 1_000_000))


def load_sweep(path: Union[str, Path]) -> SweepSpec:
    """Read and expand a sweep specification file."""
    try:
        document = json.loads(Path(path).read_text())
    except OSError as exc:
        raise ConfigError(
            f"{path}: {exc.strerror or 'cannot read sweep file'}") from exc
    except json.JSONDecodeError as exc:
        raise ConfigError(f"{path}: invalid JSON ({exc})") from exc
    if not isinstance(document, dict):
        raise ConfigError(f"{path}: top level must be an object")
    return parse_sweep(document)
