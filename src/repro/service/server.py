"""Asyncio front ends: HTTP endpoints and the local-socket queue.

The server is a thin, dependency-free layer: HTTP/1.1 is parsed by hand
on top of :func:`asyncio.start_server` (requests are small JSON bodies;
responses close the connection), and the optional Unix-socket front end
speaks the same newline-delimited JSON as
:mod:`repro.service.protocol`.  Both feed the one
:class:`~repro.service.jobqueue.JobQueue`; all routing errors map to the
typed error taxonomy, so clients can branch on ``error.kind`` instead of
scraping messages.

Endpoints (full wire protocol in ``docs/SERVICE.md``)::

    GET  /healthz                     liveness + protocol version
    GET  /workers                     fleet states
    POST /workers/<name>/drain        checkpoint + stop taking units
    POST /workers/<name>/undrain      rejoin the fleet
    GET  /jobs[?tenant=t]             job list
    POST /jobs                        submit (submission document body)
    GET  /jobs/<id>                   one job's view
    GET  /jobs/<id>/result[?wait=1]   ordered per-unit results
    GET  /jobs/<id>/events[?since=N&follow=1]   progress event stream
    GET  /jobs/<id>/trace             merged Perfetto trace (chunked)
"""

from __future__ import annotations

import asyncio
import json
import threading
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple, Union
from urllib.parse import parse_qs, urlsplit

from ..sweep import SweepCache
from .jobqueue import DEFAULT_QUOTA_UNITS, JobQueue
from .protocol import (
    PROTOCOL_VERSION,
    NotReady,
    ProtocolError,
    ServiceError,
    decode_line,
    encode_line,
    parse_submission,
)
from .scheduler import DEFAULT_SLICE_PS, Scheduler

#: Submission bodies above this are refused before parsing.
MAX_BODY_BYTES = 64 * 1024 * 1024

#: Long-poll ceiling for ``?wait=1`` result requests (seconds).
DEFAULT_WAIT_S = 300.0


@dataclass
class ServiceConfig:
    """Everything ``repro serve`` can tune."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral, reported after start
    socket_path: Optional[str] = None
    fleet: int = 2
    quota_units: int = DEFAULT_QUOTA_UNITS
    slice_ps: int = DEFAULT_SLICE_PS
    use_processes: bool = False
    #: Shared result store: a SweepCache, a directory path, or False to
    #: disable dedupe entirely (None = the default on-disk cache).
    cache: Union[SweepCache, str, None, bool] = None


def _resolve_cache(cache: Union[SweepCache, str, None, bool]
                   ) -> Optional[SweepCache]:
    if cache is False:
        return None
    if cache is None or cache is True:
        return SweepCache()
    if isinstance(cache, SweepCache):
        return cache
    return SweepCache(cache)


class ServiceServer:
    """One service instance: queue + scheduler + both front ends."""

    def __init__(self, config: Optional[ServiceConfig] = None,
                 **overrides: Any) -> None:
        if config is None:
            config = ServiceConfig(**overrides)
        elif overrides:
            raise TypeError("pass either a ServiceConfig or overrides")
        self.config = config
        self.queue = JobQueue(quota_units=config.quota_units)
        self.scheduler = Scheduler(
            self.queue, fleet=config.fleet,
            cache=_resolve_cache(config.cache),
            slice_ps=config.slice_ps,
            use_processes=config.use_processes)
        self._http_server: Optional[asyncio.AbstractServer] = None
        self._socket_server: Optional[asyncio.AbstractServer] = None
        self.port: Optional[int] = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        await self.scheduler.start()
        self._http_server = await asyncio.start_server(
            self._handle_http, host=self.config.host, port=self.config.port)
        sockets = self._http_server.sockets or []
        self.port = sockets[0].getsockname()[1] if sockets else None
        if self.config.socket_path:
            self._socket_server = await asyncio.start_unix_server(
                self._handle_socket, path=self.config.socket_path)

    async def stop(self) -> None:
        for server in (self._http_server, self._socket_server):
            if server is not None:
                server.close()
                await server.wait_closed()
        self._http_server = None
        self._socket_server = None
        await self.scheduler.stop()

    async def run_forever(self) -> None:
        await self.start()
        try:
            assert self._http_server is not None
            await self._http_server.serve_forever()
        finally:
            await self.stop()

    # ------------------------------------------------------------------
    # HTTP front end
    # ------------------------------------------------------------------
    async def _handle_http(self, reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter) -> None:
        try:
            try:
                method, path, query, body = await self._read_request(reader)
            except ProtocolError as exc:
                await self._respond_json(writer, exc.http_status,
                                         exc.to_document())
                return
            try:
                await self._route(method, path, query, body, writer)
            except ServiceError as exc:
                await self._respond_json(writer, exc.http_status,
                                         exc.to_document())
            except asyncio.CancelledError:
                raise
            except Exception as exc:
                # Unexpected handler failures must still produce a typed
                # response instead of a dropped connection.
                error = ServiceError(f"{type(exc).__name__}: {exc}")
                await self._respond_json(writer, error.http_status,
                                         error.to_document())
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away mid-exchange
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(self, reader: asyncio.StreamReader
                            ) -> Tuple[str, str, Dict[str, List[str]], bytes]:
        try:
            request_line = await reader.readline()
        except (ValueError, OSError) as exc:
            raise ProtocolError(f"unreadable request line: {exc}") from exc
        parts = request_line.decode("latin-1").split()
        if len(parts) != 3:
            raise ProtocolError("malformed HTTP request line")
        method, target, _version = parts
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _sep, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError as exc:
            raise ProtocolError("invalid Content-Length") from exc
        if length < 0 or length > MAX_BODY_BYTES:
            raise ProtocolError(
                f"request body of {length} bytes exceeds the "
                f"{MAX_BODY_BYTES}-byte limit")
        body = await reader.readexactly(length) if length else b""
        split = urlsplit(target)
        return method.upper(), split.path, parse_qs(split.query), body

    async def _respond_json(self, writer: asyncio.StreamWriter, status: int,
                            document: Dict[str, Any]) -> None:
        payload = json.dumps(document, sort_keys=True).encode("utf-8")
        writer.write(self._head(status, "application/json",
                                extra=f"Content-Length: {len(payload)}\r\n"))
        writer.write(payload)
        await writer.drain()

    @staticmethod
    def _head(status: int, content_type: str, extra: str = "") -> bytes:
        reasons = {200: "OK", 201: "Created", 400: "Bad Request",
                   404: "Not Found", 405: "Method Not Allowed",
                   409: "Conflict", 429: "Too Many Requests",
                   500: "Internal Server Error"}
        return (f"HTTP/1.1 {status} {reasons.get(status, 'Status')}\r\n"
                f"Content-Type: {content_type}\r\n"
                f"Connection: close\r\n{extra}\r\n").encode("latin-1")

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    async def _route(self, method: str, path: str,
                     query: Dict[str, List[str]], body: bytes,
                     writer: asyncio.StreamWriter) -> None:
        segments = [segment for segment in path.split("/") if segment]
        if method == "GET" and segments == ["healthz"]:
            await self._respond_json(writer, 200, self.health_view())
            return
        if segments and segments[0] == "workers":
            await self._route_workers(method, segments, writer)
            return
        if method == "POST" and segments == ["jobs"]:
            document = self._parse_body(body)
            job = self.submit(document)
            await self._respond_json(writer, 201, {"job": job.view()})
            return
        if method == "GET" and segments == ["jobs"]:
            tenant = (query.get("tenant") or [None])[0]
            views = [job.view() for job in self.queue.list_jobs(tenant)]
            await self._respond_json(writer, 200, {"jobs": views})
            return
        if method == "GET" and len(segments) >= 2 and segments[0] == "jobs":
            job = self.queue.get(segments[1])
            if len(segments) == 2:
                await self._respond_json(writer, 200, {"job": job.view()})
                return
            if segments[2:] == ["result"]:
                await self._respond_result(job, query, writer)
                return
            if segments[2:] == ["events"]:
                await self._respond_events(job, query, writer)
                return
            if segments[2:] == ["trace"]:
                await self._respond_trace(job, writer)
                return
        raise ProtocolError(f"no route for {method} {path}")

    async def _route_workers(self, method: str, segments: List[str],
                             writer: asyncio.StreamWriter) -> None:
        if method == "GET" and segments == ["workers"]:
            await self._respond_json(writer, 200,
                                     {"workers": self.scheduler.views()})
            return
        if method == "POST" and len(segments) == 3 \
                and segments[2] in ("drain", "undrain"):
            action = getattr(self.scheduler, segments[2])
            worker = action(segments[1])
            await self._respond_json(writer, 200, {"worker": worker.view()})
            return
        raise ProtocolError(f"no route for {method} /{'/'.join(segments)}")

    def _parse_body(self, body: bytes) -> Dict[str, Any]:
        try:
            document = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ProtocolError(f"request body is not JSON: {exc}") from exc
        if not isinstance(document, dict):
            raise ProtocolError("request body must be a JSON object")
        return document

    # ------------------------------------------------------------------
    # handlers shared by both front ends
    # ------------------------------------------------------------------
    def health_view(self) -> Dict[str, Any]:
        return {"ok": True, "protocol": PROTOCOL_VERSION,
                "workers": len(self.scheduler.workers),
                "jobs": len(self.queue.jobs)}

    def submit(self, document: Dict[str, Any]):
        """Validate and enqueue one submission document."""
        submission = parse_submission(document)
        return self.queue.submit(submission)

    def result_view(self, job) -> Dict[str, Any]:
        view: Dict[str, Any] = {"id": job.id, "state": job.state,
                                "results": job.results()}
        if job.error is not None:
            view["error"] = job.error
        return view

    async def _respond_result(self, job, query: Dict[str, List[str]],
                              writer: asyncio.StreamWriter) -> None:
        if (query.get("wait") or ["0"])[0] in ("1", "true"):
            timeout = float((query.get("timeout") or [DEFAULT_WAIT_S])[0])
            done = await self.queue.wait(
                lambda: job.state in ("done", "failed"), timeout=timeout)
            if not done:
                raise NotReady(f"job {job.id} still {job.state} after "
                               f"{timeout}s")
        await self._respond_json(writer, 200, self.result_view(job))

    async def _respond_events(self, job, query: Dict[str, List[str]],
                              writer: asyncio.StreamWriter) -> None:
        since = int((query.get("since") or ["0"])[0])
        follow = (query.get("follow") or ["0"])[0] in ("1", "true")
        if not follow:
            await self._respond_json(
                writer, 200, {"events": self.queue.events_since(job, since)})
            return
        # Chunked JSONL: one event per chunk, streamed as they happen,
        # ending once the job reaches a terminal state.
        writer.write(self._head(200, "application/jsonl",
                                extra="Transfer-Encoding: chunked\r\n"))
        await writer.drain()
        cursor = since
        while True:
            for event in self.queue.events_since(job, cursor):
                cursor = event["seq"]
                await self._write_chunk(writer, encode_line(event))
            if job.state in ("done", "failed"):
                break
            await self.queue.wait(
                lambda: job.events and job.events[-1]["seq"] > cursor,
                timeout=10.0)
        await self._write_chunk(writer, b"")  # terminating chunk
        await writer.drain()

    async def _respond_trace(self, job,
                             writer: asyncio.StreamWriter) -> None:
        if not job.trace_requested:
            raise NotReady(
                f"job {job.id} was not submitted with \"trace\": true")
        if job.state not in ("done", "failed"):
            raise NotReady(f"job {job.id} is still {job.state}; the trace "
                           f"is written when it finishes")
        merged = self.merged_trace(job)
        writer.write(self._head(200, "application/json",
                                extra="Transfer-Encoding: chunked\r\n"))
        # Stream the (potentially large) trace in bounded chunks.
        payload = json.dumps(merged).encode("utf-8")
        for offset in range(0, len(payload), 64 * 1024):
            await self._write_chunk(writer, payload[offset:offset + 64 * 1024])
        await self._write_chunk(writer, b"")
        await writer.drain()

    def merged_trace(self, job) -> Dict[str, Any]:
        """One Perfetto document for the whole job, units concatenated.

        Every unit ran on its own simulator, so their span/counter pids
        never collide (the exporter keys tracks by recorder); the merged
        stream is loadable in ui.perfetto.dev as-is.
        """
        merged: Dict[str, Any] = {"displayTimeUnit": "ns",
                                  "traceEvents": []}
        for unit in job.units:
            if unit.trace:
                merged["traceEvents"].extend(
                    unit.trace.get("traceEvents", []))
        return merged

    @staticmethod
    async def _write_chunk(writer: asyncio.StreamWriter,
                           chunk: bytes) -> None:
        writer.write(f"{len(chunk):x}\r\n".encode("latin-1") + chunk
                     + b"\r\n")
        await writer.drain()

    # ------------------------------------------------------------------
    # local-socket queue (newline-delimited JSON ops)
    # ------------------------------------------------------------------
    async def _handle_socket(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                try:
                    response = await self._socket_op(decode_line(line))
                except ServiceError as exc:
                    response = exc.to_document()
                except asyncio.CancelledError:
                    raise
                except Exception as exc:
                    response = ServiceError(
                        f"{type(exc).__name__}: {exc}").to_document()
                writer.write(encode_line(response))
                await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _socket_op(self, message: Dict[str, Any]) -> Dict[str, Any]:
        op = message.get("op")
        if op == "health":
            return self.health_view()
        if op == "submit":
            job = self.submit(message.get("submission"))
            return {"job": job.view()}
        if op == "status":
            return {"job": self.queue.get(str(message.get("job"))).view()}
        if op == "list":
            tenant = message.get("tenant")
            return {"jobs": [job.view()
                             for job in self.queue.list_jobs(tenant)]}
        if op == "result":
            job = self.queue.get(str(message.get("job")))
            if message.get("wait"):
                timeout = float(message.get("timeout", DEFAULT_WAIT_S))
                done = await self.queue.wait(
                    lambda: job.state in ("done", "failed"), timeout=timeout)
                if not done:
                    raise NotReady(f"job {job.id} still {job.state} "
                                   f"after {timeout}s")
            return self.result_view(job)
        raise ProtocolError(f"unknown socket op {op!r}")


# ----------------------------------------------------------------------
# background harness (tests, notebooks): loop in a daemon thread
# ----------------------------------------------------------------------
class BackgroundService:
    """A running service on its own event-loop thread.

    The test suite and interactive sessions drive the service through
    the blocking :class:`~repro.service.client.ServiceClient`; this
    harness hides the asyncio plumbing behind ``start()``/``stop()``.
    """

    def __init__(self, config: Optional[ServiceConfig] = None,
                 **overrides: Any) -> None:
        self.server = ServiceServer(config, **overrides)
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._started = threading.Event()
        self._stop: Optional[asyncio.Event] = None
        self._startup_error: Optional[BaseException] = None

    @property
    def port(self) -> int:
        assert self.server.port is not None, "service not started"
        return self.server.port

    def start(self) -> "BackgroundService":
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="repro-service-loop")
        self._thread.start()
        self._started.wait(timeout=30.0)
        if self._startup_error is not None:
            raise RuntimeError("service failed to start") \
                from self._startup_error
        if not self._started.is_set():
            raise RuntimeError("service did not start within 30s")
        return self

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        try:
            await self.server.start()
        except BaseException as exc:  # surfaced on the starting thread
            self._startup_error = exc
            self._started.set()
            return
        self._started.set()
        await self._stop.wait()
        await self.server.stop()

    def stop(self) -> None:
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        if self._thread is not None:
            self._thread.join(timeout=30.0)
            self._thread = None

    def __enter__(self) -> "BackgroundService":
        return self.start()

    def __exit__(self, *_exc: Any) -> None:
        self.stop()
