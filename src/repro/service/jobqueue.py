"""Job and work-unit bookkeeping for the service (``docs/SERVICE.md``).

A submitted job shards into one :class:`Unit` per platform configuration
(a single-config job has one unit; a sweep job has one per expanded
point).  The queue owns:

* **multi-tenant quotas** — each tenant may have at most
  ``quota_units`` units queued or running; a submission that would
  exceed the quota is refused with the typed
  :class:`~repro.service.protocol.QuotaExceeded` *before* anything is
  enqueued (never a hang);
* **priority lanes** — ``interactive`` > ``normal`` > ``batch``; the
  scheduler always takes the lowest ``(lane rank, job seq, unit index)``
  unit, so ordering under a saturated fleet is a pure function of the
  submission sequence;
* **the event log** — every state transition appends a monotonically
  sequenced event to the owning job, and any number of async waiters
  (HTTP event streams, the scheduler's dispatch loop) are woken.

The queue itself is loop-agnostic plain state: every mutation happens on
the server's event-loop thread (or directly in tests), so no locks are
needed; only :meth:`JobQueue.wait` touches asyncio.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..platforms.config import PlatformConfig
from ..sweep import config_key
from .protocol import QuotaExceeded, Submission, UnknownJob, lane_rank

#: Default per-tenant cap on units queued or running at once.
DEFAULT_QUOTA_UNITS = 64


@dataclass
class Unit:
    """One schedulable configuration of a job."""

    job: "Job"
    index: int
    label: str
    config: PlatformConfig
    key: str
    max_ps: int
    state: str = "queued"
    #: ``None`` for a fresh simulation, else the dedupe source
    #: ("cache" = shared on-disk store, "inflight" = coalesced with a
    #: unit already executing in this service).
    cached: Optional[str] = None
    worker: Optional[str] = None
    last_worker: Optional[str] = None
    result: Optional[Dict[str, Any]] = None
    events: int = 0
    sim_time_ps: int = 0
    trace: Optional[Dict[str, Any]] = None
    #: A pending resume point: set when the unit was preempted, consumed
    #: by the worker that picks it up next.
    checkpoint: Optional[Dict[str, Any]] = None
    preemptions: int = 0
    error: Optional[str] = None

    @property
    def sort_key(self) -> Tuple[int, int, int]:
        return (lane_rank(self.job.lane), self.job.seq, self.index)

    def view(self) -> Dict[str, Any]:
        view: Dict[str, Any] = {
            "index": self.index,
            "label": self.label,
            "state": self.state,
            "cached": self.cached,
            "worker": self.worker,
            "preemptions": self.preemptions,
        }
        if self.error is not None:
            view["error"] = self.error
        return view


@dataclass
class Job:
    """One submission: metadata, its units, and its event log."""

    id: str
    seq: int
    tenant: str
    lane: str
    kind: str
    units: List[Unit] = field(default_factory=list)
    state: str = "queued"
    error: Optional[str] = None
    events: List[Dict[str, Any]] = field(default_factory=list)
    trace_requested: bool = False
    preemptible: bool = False
    #: Forced one-shot preemption instant (simulated ps), or ``None``.
    checkpoint_at_ps: Optional[int] = None

    def progress(self) -> Dict[str, int]:
        done = sum(1 for unit in self.units if unit.state == "done")
        return {"units": len(self.units), "done": done}

    def view(self) -> Dict[str, Any]:
        view: Dict[str, Any] = {
            "id": self.id,
            "tenant": self.tenant,
            "priority": self.lane,
            "kind": self.kind,
            "state": self.state,
            "progress": self.progress(),
            "units": [unit.view() for unit in self.units],
        }
        if self.error is not None:
            view["error"] = self.error
        return view

    def results(self) -> List[Dict[str, Any]]:
        """Per-unit outcomes in submission (point) order."""
        rows = []
        for unit in self.units:
            rows.append({
                "label": unit.label,
                "state": unit.state,
                "cached": unit.cached,
                "preemptions": unit.preemptions,
                "result": unit.result,
            })
        return rows


class JobQueue:
    """Submission intake, quota enforcement, and deterministic ordering."""

    def __init__(self, quota_units: int = DEFAULT_QUOTA_UNITS) -> None:
        self.quota_units = int(quota_units)
        self.jobs: Dict[str, Job] = {}
        self._order: List[Job] = []
        self._seq = 0
        self._event_seq = 0
        self._waiters: List["asyncio.Future[None]"] = []
        #: Called after every recorded event (tests hook this).
        self.on_event: Optional[Callable[[Dict[str, Any]], None]] = None

    # ------------------------------------------------------------------
    # intake
    # ------------------------------------------------------------------
    def active_units(self, tenant: str) -> int:
        return sum(1 for job in self._order if job.tenant == tenant
                   for unit in job.units
                   if unit.state in ("queued", "running", "preempted"))

    def submit(self, submission: Submission) -> Job:
        """Enqueue a validated submission; raises :class:`QuotaExceeded`.

        The quota check covers the *whole* submission up front — a sweep
        that would only partially fit is refused entirely, so a tenant
        never ends up with a half-enqueued job.
        """
        active = self.active_units(submission.tenant)
        incoming = len(submission.configs)
        if active + incoming > self.quota_units:
            raise QuotaExceeded(submission.tenant, active, self.quota_units,
                                incoming=incoming)
        self._seq += 1
        job = Job(id=f"job-{self._seq}", seq=self._seq,
                  tenant=submission.tenant, lane=submission.lane,
                  kind=submission.kind,
                  trace_requested=submission.trace,
                  preemptible=submission.preemptible,
                  checkpoint_at_ps=submission.checkpoint_at_ps)
        for index, (label, config) in enumerate(
                zip(submission.labels, submission.configs)):
            job.units.append(Unit(
                job=job, index=index, label=label, config=config,
                key=config_key(config, submission.max_ps),
                max_ps=submission.max_ps))
        self.jobs[job.id] = job
        self._order.append(job)
        self.record_event(job, "job_submitted", tenant=job.tenant,
                          priority=job.lane, units=len(job.units))
        return job

    def get(self, job_id: str) -> Job:
        job = self.jobs.get(job_id)
        if job is None:
            raise UnknownJob(job_id)
        return job

    def list_jobs(self, tenant: Optional[str] = None) -> List[Job]:
        return [job for job in self._order
                if tenant is None or job.tenant == tenant]

    # ------------------------------------------------------------------
    # scheduling order
    # ------------------------------------------------------------------
    def pending_units(self) -> List[Unit]:
        """Every queued unit, in deterministic dispatch order."""
        pending = [unit for job in self._order for unit in job.units
                   if unit.state == "queued"]
        pending.sort(key=lambda unit: unit.sort_key)
        return pending

    def take_next(self) -> Optional[Unit]:
        """Pop the most urgent queued unit (lane, then submission order)."""
        pending = self.pending_units()
        return pending[0] if pending else None

    def requeue(self, unit: Unit, checkpoint: Dict[str, Any]) -> None:
        """Return a preempted unit to the queue with its resume point.

        The sort key is unchanged, so a preempted unit keeps its place in
        line and migrates to the next free worker.
        """
        unit.checkpoint = checkpoint
        unit.preemptions += 1
        unit.last_worker = unit.worker
        unit.worker = None
        unit.state = "queued"

    # ------------------------------------------------------------------
    # events
    # ------------------------------------------------------------------
    def record_event(self, job: Job, event: str, **fields: Any) -> None:
        self._event_seq += 1
        record: Dict[str, Any] = {"seq": self._event_seq, "event": event,
                                  "job": job.id}
        record.update(fields)
        job.events.append(record)
        if self.on_event is not None:
            self.on_event(record)
        self.notify()

    def events_since(self, job: Job, since: int = 0) -> List[Dict[str, Any]]:
        return [event for event in job.events if event["seq"] > since]

    def finish_unit_bookkeeping(self, job: Job) -> None:
        """Roll unit completion up into the job state."""
        states = {unit.state for unit in job.units}
        if "failed" in states:
            if job.state != "failed":
                job.state = "failed"
                job.error = "; ".join(
                    f"{unit.label}: {unit.error}" for unit in job.units
                    if unit.state == "failed" and unit.error)
                self.record_event(job, "job_failed", error=job.error)
        elif states == {"done"}:
            if job.state != "done":
                job.state = "done"
                self.record_event(job, "job_done",
                                  units=len(job.units))
        elif job.state == "queued" and "running" in states:
            job.state = "running"
            self.record_event(job, "job_started")

    # ------------------------------------------------------------------
    # async wakeups (the only asyncio-aware corner)
    # ------------------------------------------------------------------
    def notify(self) -> None:
        for waiter in self._waiters:
            if not waiter.done():
                waiter.set_result(None)
        self._waiters.clear()

    async def wait(self, predicate: Callable[[], bool],
                   timeout: Optional[float] = None) -> bool:
        """Wait until ``predicate()`` holds or ``timeout`` elapses.

        Re-evaluated after every recorded event; returns the predicate's
        final value (so a timeout returns ``False``).
        """
        while True:
            if predicate():
                return True
            waiter: "asyncio.Future[None]" = \
                asyncio.get_running_loop().create_future()
            self._waiters.append(waiter)
            try:
                await asyncio.wait_for(waiter, timeout)
            except asyncio.TimeoutError:
                if waiter in self._waiters:
                    self._waiters.remove(waiter)
                return predicate()
