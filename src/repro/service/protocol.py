"""Wire protocol for the simulation job service (``docs/SERVICE.md``).

Everything that crosses the service boundary is defined here: the
submission document schema, the typed error taxonomy (each error kind
maps to one HTTP status), the public JSON views of jobs and events, and
the newline-delimited JSON framing shared by the local-socket queue and
the event stream.

Validation routes through the *existing* platform loader — a submission
is either a single platform document (validated by
:func:`repro.platforms.loader.config_from_dict`) or a sweep document
(expanded by :func:`repro.sweep.parse_sweep`) — so a malformed
submission surfaces the exact :class:`~repro.platforms.loader.ConfigError`
message a local ``repro platform``/``repro sweep`` run would print.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..platforms.config import PlatformConfig
from ..platforms.loader import ConfigError, config_from_dict
from ..sweep import DEFAULT_MAX_PS, parse_sweep

#: Bumped when the submission schema or the public job view changes
#: incompatibly; reported by ``GET /healthz`` and checked by the client.
PROTOCOL_VERSION = 1

#: Priority lanes, highest first.  The scheduler always drains lower
#: ranks first; within a lane, submission order is preserved.
LANES: Tuple[str, ...] = ("interactive", "normal", "batch")

#: Job lifecycle states (terminal: done, failed).
JOB_STATES = ("queued", "running", "done", "failed")

#: Unit lifecycle states (terminal: done, failed).
UNIT_STATES = ("queued", "running", "preempted", "done", "failed")


def lane_rank(lane: str) -> int:
    """Numeric rank of a lane, 0 = most urgent."""
    return LANES.index(lane)


# ----------------------------------------------------------------------
# typed errors — each kind maps to one HTTP status
# ----------------------------------------------------------------------
class ServiceError(RuntimeError):
    """Base class for every error the service reports to a client."""

    kind = "service_error"
    http_status = 500

    def to_document(self) -> Dict[str, Any]:
        return {"error": {"kind": self.kind, "message": str(self)}}


class ProtocolError(ServiceError):
    """The request itself is malformed (framing, routing, non-JSON)."""

    kind = "protocol_error"
    http_status = 400


class SubmissionError(ServiceError):
    """The submission document failed validation.

    Wraps the loader's :class:`ConfigError` (or the schema check here)
    with the message preserved verbatim — the client sees exactly what a
    local run would print.
    """

    kind = "bad_submission"
    http_status = 400


class QuotaExceeded(ServiceError):
    """The tenant's in-flight unit quota is exhausted.

    A typed rejection, not a hang: the submission is refused immediately
    and the client can retry once earlier jobs finish.
    """

    kind = "quota_exceeded"
    http_status = 429

    def __init__(self, tenant: str, active: int, limit: int,
                 incoming: int = 0) -> None:
        super().__init__(
            f"tenant {tenant!r}: {incoming} submitted unit(s) plus "
            f"{active} already queued or running exceed the quota of "
            f"{limit} — retry after existing jobs finish")
        self.tenant = tenant
        self.active = active
        self.limit = limit
        self.incoming = incoming


class UnknownJob(ServiceError):
    """The referenced job id does not exist."""

    kind = "unknown_job"
    http_status = 404

    def __init__(self, job_id: str) -> None:
        super().__init__(f"no such job: {job_id!r}")
        self.job_id = job_id


class UnknownWorker(ServiceError):
    """The referenced worker name does not exist."""

    kind = "unknown_worker"
    http_status = 404

    def __init__(self, name: str) -> None:
        super().__init__(f"no such worker: {name!r}")
        self.name = name


class NotReady(ServiceError):
    """The requested artifact is not available (yet)."""

    kind = "not_ready"
    http_status = 409


def error_from_document(document: Dict[str, Any]) -> ServiceError:
    """Rebuild the typed error a response document carries."""
    payload = document.get("error") or {}
    kind = payload.get("kind", "service_error")
    message = payload.get("message", "unknown service error")
    for cls in (ProtocolError, SubmissionError, QuotaExceeded, UnknownJob,
                UnknownWorker, NotReady):
        if cls.kind == kind:
            error = cls.__new__(cls)
            RuntimeError.__init__(error, message)
            return error
    error = ServiceError.__new__(ServiceError)
    RuntimeError.__init__(error, message)
    return error


# ----------------------------------------------------------------------
# submissions
# ----------------------------------------------------------------------
_SUBMISSION_KEYS = frozenset({
    "tenant", "priority", "config", "sweep", "max_us", "trace",
    "preemptible", "checkpoint_at_us",
})


@dataclass
class Submission:
    """A validated job submission, ready for the queue.

    ``labels``/``configs`` are index-aligned: one entry per work unit
    (a single-config submission has exactly one).  ``checkpoint_at_us``
    arms a forced one-shot preemption at that simulated instant — the
    deterministic form of a drain, used to exercise migration.
    """

    tenant: str
    lane: str
    kind: str  # "config" | "sweep"
    labels: List[str]
    configs: List[PlatformConfig]
    max_ps: int
    trace: bool = False
    preemptible: bool = False
    checkpoint_at_ps: Optional[int] = None
    document: Dict[str, Any] = field(default_factory=dict)


def parse_submission(document: Any) -> Submission:
    """Validate a submission document into a :class:`Submission`.

    Schema::

        {
          "tenant": "alice",            # required, non-empty string
          "priority": "normal",         # optional, one of LANES
          "config": {...platform...},   # exactly one of config / sweep
          "sweep": {base/points/grid},  #
          "max_us": 20000.0,            # optional run bound (config jobs)
          "trace": false,               # capture a Perfetto trace
          "preemptible": false,         # allow drain-time checkpointing
          "checkpoint_at_us": null      # force one preemption at this
        }                               #   simulated instant (implies
                                        #   preemptible)

    Loader errors pass through verbatim as :class:`SubmissionError`.
    """
    if not isinstance(document, dict):
        raise SubmissionError("submission: top level must be an object")
    unknown = set(document) - _SUBMISSION_KEYS
    if unknown:
        raise SubmissionError(
            f"submission: unknown keys {sorted(unknown)}; "
            f"allowed: {sorted(_SUBMISSION_KEYS)}")

    tenant = document.get("tenant")
    if not isinstance(tenant, str) or not tenant:
        raise SubmissionError("submission.tenant: must be a non-empty string")
    lane = document.get("priority", "normal")
    if lane not in LANES:
        raise SubmissionError(
            f"submission.priority: {lane!r} is not one of {list(LANES)}")

    has_config = "config" in document
    has_sweep = "sweep" in document
    if has_config == has_sweep:
        raise SubmissionError(
            "submission: exactly one of 'config' or 'sweep' is required")

    trace = document.get("trace", False)
    if not isinstance(trace, bool):
        raise SubmissionError("submission.trace: must be a boolean")
    preemptible = document.get("preemptible", False)
    if not isinstance(preemptible, bool):
        raise SubmissionError("submission.preemptible: must be a boolean")
    if trace and (preemptible or document.get("checkpoint_at_us")):
        # A resumed segment rebuilds its simulator inside the snapshot
        # layer, where a span recorder cannot be attached — the trace
        # would silently lose the pre-preemption prefix.
        raise SubmissionError(
            "submission: 'trace' and 'preemptible'/'checkpoint_at_us' "
            "are mutually exclusive")
    checkpoint_at_us = document.get("checkpoint_at_us")
    checkpoint_at_ps: Optional[int] = None
    if checkpoint_at_us is not None:
        if not isinstance(checkpoint_at_us, (int, float)) \
                or checkpoint_at_us <= 0:
            raise SubmissionError(
                "submission.checkpoint_at_us: must be a positive number")
        checkpoint_at_ps = int(checkpoint_at_us * 1_000_000)
        preemptible = True

    max_us = document.get("max_us", DEFAULT_MAX_PS / 1_000_000)
    if not isinstance(max_us, (int, float)) or max_us <= 0:
        raise SubmissionError("submission.max_us: must be a positive number")
    max_ps = int(max_us * 1_000_000)

    try:
        if has_config:
            if not isinstance(document["config"], dict):
                raise SubmissionError(
                    "submission.config: must be a platform object")
            config = config_from_dict(document["config"])
            labels = [config.label()]
            configs = [config]
            kind = "config"
        else:
            if not isinstance(document["sweep"], dict):
                raise SubmissionError(
                    "submission.sweep: must be a sweep object")
            spec = parse_sweep(document["sweep"])
            labels = spec.labels
            configs = spec.configs
            max_ps = spec.max_ps if "max_us" not in document else max_ps
            kind = "sweep"
    except ValueError as exc:
        # ConfigError subclasses ValueError, and config validation also
        # raises bare ValueError from dataclass __post_init__ checks.
        # Either way the message crosses the wire verbatim: the remote
        # client reads exactly what a local `repro platform`/`repro
        # sweep` would have printed.
        raise SubmissionError(str(exc)) from exc

    return Submission(tenant=tenant, lane=lane, kind=kind, labels=labels,
                      configs=configs, max_ps=max_ps, trace=trace,
                      preemptible=preemptible,
                      checkpoint_at_ps=checkpoint_at_ps,
                      document=dict(document))


# ----------------------------------------------------------------------
# newline-delimited JSON framing (socket queue + event streams)
# ----------------------------------------------------------------------
def encode_line(document: Dict[str, Any]) -> bytes:
    """One protocol message as a newline-terminated JSON line."""
    return (json.dumps(document, sort_keys=True,
                       separators=(",", ":")) + "\n").encode("utf-8")


def decode_line(line: bytes) -> Dict[str, Any]:
    """Parse one protocol line; raises :class:`ProtocolError`."""
    try:
        document = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"invalid JSON line: {exc}") from exc
    if not isinstance(document, dict):
        raise ProtocolError("protocol messages must be JSON objects")
    return document
