"""``repro.service`` — simulation-as-a-service job scheduler.

The long-running form of the sweep engine (``docs/SERVICE.md``): an
asyncio job service whose front ends (HTTP and a local-socket queue)
accept config/sweep submissions from many concurrent tenants, shard them
across a worker fleet, dedupe identical configurations through the
shared SHA-256 :class:`~repro.sweep.SweepCache`, stream progress events
and Perfetto traces back live, and preempt/migrate long runs through
verified :mod:`repro.snapshot` checkpoints.

Nothing in the simulator imports this package — ``import repro`` and
every experiment path stay service-free, so the service costs nothing
when unused (the CLI only imports it inside the ``serve``/``submit``/
``jobs`` handlers).

Quick start::

    repro serve --port 8458 --workers 4          # terminal 1
    repro submit examples/configs/quick_sweep.json \\
        --url http://127.0.0.1:8458 --tenant alice --wait   # terminal 2
"""

from .client import ServiceClient, SocketClient
from .jobqueue import DEFAULT_QUOTA_UNITS, Job, JobQueue, Unit
from .protocol import (
    LANES,
    PROTOCOL_VERSION,
    NotReady,
    ProtocolError,
    QuotaExceeded,
    ServiceError,
    Submission,
    SubmissionError,
    UnknownJob,
    UnknownWorker,
    parse_submission,
)
from .scheduler import DEFAULT_SLICE_PS, Scheduler, Worker
from .server import (
    BackgroundService,
    ServiceConfig,
    ServiceServer,
)

__all__ = [
    "BackgroundService",
    "DEFAULT_QUOTA_UNITS",
    "DEFAULT_SLICE_PS",
    "Job",
    "JobQueue",
    "LANES",
    "NotReady",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "QuotaExceeded",
    "Scheduler",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "ServiceServer",
    "SocketClient",
    "Submission",
    "SubmissionError",
    "Unit",
    "UnknownJob",
    "UnknownWorker",
    "Worker",
    "parse_submission",
]
