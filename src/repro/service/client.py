"""Blocking client for the job service (CLI, tests, scripts).

One HTTP connection per call (the server closes connections after each
response), so a :class:`ServiceClient` is cheap, stateless and safe to
share across threads.  Error responses are re-raised as the same typed
:class:`~repro.service.protocol.ServiceError` subclasses the server
threw — a quota rejection surfaces as :class:`QuotaExceeded` on the
client too, never as a bare status code.
"""

from __future__ import annotations

import http.client
import json
import socket
from typing import Any, Dict, Iterator, List, Optional

from .protocol import (
    ProtocolError,
    decode_line,
    encode_line,
    error_from_document,
)


class ServiceClient:
    """Talk to a running service over HTTP."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8458,
                 timeout: float = 600.0) -> None:
        self.host = host
        self.port = int(port)
        self.timeout = timeout

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    def _request(self, method: str, path: str,
                 body: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout)
        try:
            payload = None if body is None else \
                json.dumps(body).encode("utf-8")
            headers = {"Content-Type": "application/json"} if payload else {}
            connection.request(method, path, body=payload, headers=headers)
            response = connection.getresponse()
            raw = response.read()
            return self._decode(response.status, raw)
        finally:
            connection.close()

    @staticmethod
    def _decode(status: int, raw: bytes) -> Dict[str, Any]:
        try:
            document = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ProtocolError(
                f"service returned non-JSON (HTTP {status}): {exc}") from exc
        if status >= 400 or "error" in document:
            raise error_from_document(document)
        return document

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------
    def health(self) -> Dict[str, Any]:
        return self._request("GET", "/healthz")

    def submit(self, submission: Dict[str, Any]) -> Dict[str, Any]:
        """Submit a job; returns its public view (``view["id"]``)."""
        return self._request("POST", "/jobs", body=submission)["job"]

    def job(self, job_id: str) -> Dict[str, Any]:
        return self._request("GET", f"/jobs/{job_id}")["job"]

    def jobs(self, tenant: Optional[str] = None) -> List[Dict[str, Any]]:
        path = "/jobs" if tenant is None else f"/jobs?tenant={tenant}"
        return self._request("GET", path)["jobs"]

    def result(self, job_id: str, wait: bool = True,
               timeout: Optional[float] = None) -> Dict[str, Any]:
        """Ordered per-unit results; blocks until terminal by default."""
        path = f"/jobs/{job_id}/result"
        if wait:
            path += "?wait=1"
            if timeout is not None:
                path += f"&timeout={timeout}"
        return self._request("GET", path)

    def events(self, job_id: str,
               since: int = 0) -> List[Dict[str, Any]]:
        """Snapshot of the job's event log after ``since``."""
        return self._request(
            "GET", f"/jobs/{job_id}/events?since={since}")["events"]

    def stream_events(self, job_id: str,
                      since: int = 0) -> Iterator[Dict[str, Any]]:
        """Live event stream; yields until the job reaches a terminal
        state (the server ends the chunked response there)."""
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout)
        try:
            connection.request(
                "GET", f"/jobs/{job_id}/events?since={since}&follow=1")
            response = connection.getresponse()
            if response.status >= 400:
                self._decode(response.status, response.read())
            while True:
                line = response.readline()
                if not line:
                    break
                line = line.strip()
                if line:
                    yield decode_line(line)
        finally:
            connection.close()

    def trace(self, job_id: str) -> Dict[str, Any]:
        """The job's merged Perfetto trace document."""
        return self._request("GET", f"/jobs/{job_id}/trace")

    def workers(self) -> List[Dict[str, Any]]:
        return self._request("GET", "/workers")["workers"]

    def drain(self, worker: str) -> Dict[str, Any]:
        return self._request("POST", f"/workers/{worker}/drain")["worker"]

    def undrain(self, worker: str) -> Dict[str, Any]:
        return self._request("POST", f"/workers/{worker}/undrain")["worker"]


class SocketClient:
    """Talk to the local-socket queue front end (one op per call)."""

    def __init__(self, path: str, timeout: float = 600.0) -> None:
        self.path = path
        self.timeout = timeout

    def request(self, message: Dict[str, Any]) -> Dict[str, Any]:
        with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as sock:
            sock.settimeout(self.timeout)
            sock.connect(self.path)
            sock.sendall(encode_line(message))
            handle = sock.makefile("rb")
            line = handle.readline()
        if not line:
            raise ProtocolError("service closed the socket without replying")
        document = decode_line(line)
        if "error" in document:
            raise error_from_document(document)
        return document

    def health(self) -> Dict[str, Any]:
        return self.request({"op": "health"})

    def submit(self, submission: Dict[str, Any]) -> Dict[str, Any]:
        return self.request({"op": "submit",
                             "submission": submission})["job"]

    def result(self, job_id: str, wait: bool = True,
               timeout: Optional[float] = None) -> Dict[str, Any]:
        message: Dict[str, Any] = {"op": "result", "job": job_id,
                                   "wait": wait}
        if timeout is not None:
            message["timeout"] = timeout
        return self.request(message)
