"""Worker-fleet scheduler: sharding, dedupe, preemption, migration.

The scheduler turns queued :class:`~repro.service.jobqueue.Unit` s into
finished results using three layers the repo already trusts:

* **execution** wraps :mod:`repro.sweep` — the same worker body
  (:func:`repro.sweep._simulate` semantics, one fresh
  :class:`~repro.core.kernel.Simulator` per configuration) runs either
  sliced on the fleet's thread executor (preemptible) or offloaded to a
  :mod:`concurrent.futures` process pool via :func:`repro.sweep._worker`
  (``use_processes=True``, the sweep engine's own entry point);
* **dedupe** uses the :class:`~repro.sweep.SweepCache` as a *shared
  store*: a unit whose SHA-256 config key is already on disk is served
  without simulating (``cached="cache"``), and identical units in
  flight at the same moment coalesce onto one execution
  (``cached="inflight"``) — both safe because every simulation is
  deterministic and cache writes are atomic per writer;
* **preemption** uses :mod:`repro.snapshot`: a draining worker runs its
  unit only to the next slice boundary, captures a checkpoint there and
  requeues the unit; whichever worker picks it up resumes through
  :func:`repro.snapshot.resume_checkpoint`, which re-verifies the whole
  state tree bit for bit before continuing — so a migrated run is
  bit-identical to its straight-through counterpart by construction.

Scheduling order is deterministic: the dispatch loop always takes the
lowest ``(lane rank, job seq, unit index)`` unit and assigns workers in
name order, preferring a *different* worker than the one a preempted
unit left (migration).  All state mutation happens on the event-loop
thread; only the simulation bodies run on executors.
"""

from __future__ import annotations

import asyncio
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, List, Optional

from ..platforms.loader import config_to_dict
from ..sweep import (
    CachedRun,
    SweepCache,
    _make_executor,
    _worker,
    result_from_dict,
    result_to_dict,
)
from .jobqueue import JobQueue, Unit
from .protocol import UnknownWorker

#: Default preemption granularity: a draining worker gives up its unit
#: at the next multiple of this simulated interval.
DEFAULT_SLICE_PS = 1_000_000  # 1 simulated microsecond


class Worker:
    """One fleet member.  States: idle -> busy -> idle, or -> drained."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.state = "idle"
        self.unit: Optional[Unit] = None
        #: Checked by the sliced execution body between slices.
        self.drain_flag = threading.Event()
        self.completed = 0
        self.preempted = 0

    def view(self) -> Dict[str, Any]:
        return {"name": self.name, "state": self.state,
                "unit": None if self.unit is None
                else {"job": self.unit.job.id, "index": self.unit.index},
                "completed": self.completed, "preempted": self.preempted}


# ----------------------------------------------------------------------
# execution bodies (run on executors, never touch queue state)
# ----------------------------------------------------------------------
def _execute_fresh(document: Dict[str, Any], max_ps: int, slice_ps: int,
                   trace: bool, forced_at_ps: Optional[int],
                   drain: Optional[threading.Event]) -> Dict[str, Any]:
    """Run one configuration from scratch, preemptibly.

    Returns either ``{"kind": "done", ...}`` with the result document or
    ``{"kind": "preempted", "checkpoint": ..., "at_ps": ...}`` when a
    drain request (or the forced ``checkpoint_at_ps`` instant) carved
    the run into a resumable checkpoint.
    """
    from ..core import Simulator
    from ..platforms import build_platform
    from ..platforms.loader import config_from_dict
    from ..snapshot.checkpoint import _snapshot_here

    config = config_from_dict(document)
    sim = Simulator()
    cap = None
    if trace:
        from ..obs import Capture

        # Attached directly (not ambiently): only *this* simulator is
        # recorded, so concurrent units never leak into the trace.
        cap = Capture()
        cap.attach(sim)
    platform = build_platform(sim, config)
    platform.prepare()

    if forced_at_ps is not None:
        sim.run(until=min(forced_at_ps, max_ps))
        if platform._finish_ps is None and sim.now < max_ps:
            checkpoint = _snapshot_here(platform, config, max_ps)
            return {"kind": "preempted",
                    "checkpoint": checkpoint.to_document(),
                    "at_ps": sim.now}
        # The run finished before the requested instant: fall through.
    elif drain is not None and slice_ps > 0:
        next_at = slice_ps
        while next_at < max_ps:
            sim.run(until=next_at)
            if platform._finish_ps is not None:
                break
            if drain.is_set():
                checkpoint = _snapshot_here(platform, config, max_ps)
                return {"kind": "preempted",
                        "checkpoint": checkpoint.to_document(),
                        "at_ps": sim.now}
            next_at += slice_ps

    result = platform.run(max_ps=max_ps)
    out: Dict[str, Any] = {"kind": "done",
                           "result": result_to_dict(result),
                           "events": sim.processed_events,
                           "sim_time_ps": sim.now}
    if cap is not None:
        out["trace"] = cap.to_trace_json()
    return out


def _execute_resume(checkpoint_doc: Dict[str, Any]) -> Dict[str, Any]:
    """Resume a preempted unit from its checkpoint document.

    ``resume_checkpoint`` re-elaborates the configuration, deterministically
    fast-forwards to the checkpoint instant and verifies every component
    against the stored state tree before continuing, so the continuation
    is bit-identical to an uninterrupted run (``docs/SERVICE.md``).
    """
    from ..snapshot import Checkpoint, resume_checkpoint

    checkpoint = Checkpoint.from_document(checkpoint_doc)
    outcome = resume_checkpoint(checkpoint)
    return {"kind": "done",
            "result": result_to_dict(outcome.result),
            "events": outcome.final_events,
            "sim_time_ps": outcome.final_time_ps,
            "resumed": True}


class Scheduler:
    """Owns the fleet, the dispatch loop, and the shared result store."""

    def __init__(self, queue: JobQueue,
                 fleet: int = 2,
                 cache: Optional[SweepCache] = None,
                 slice_ps: int = DEFAULT_SLICE_PS,
                 use_processes: bool = False) -> None:
        self.queue = queue
        self.cache = cache
        self.slice_ps = int(slice_ps)
        self.use_processes = use_processes
        self.workers: List[Worker] = [Worker(f"worker-{n}")
                                      for n in range(max(1, int(fleet)))]
        self._threads: Optional[ThreadPoolExecutor] = None
        self._processes = None
        self._inflight: Dict[str, "asyncio.Future[Dict[str, Any]]"] = {}
        self._dispatch_task: Optional["asyncio.Task[None]"] = None
        self._unit_tasks: "set[asyncio.Task[None]]" = set()
        self._stopping = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        self._stopping = False
        self._threads = ThreadPoolExecutor(
            max_workers=len(self.workers),
            thread_name_prefix="repro-service")
        if self.use_processes:
            # The sweep engine's own pool factory: returns None when
            # multiprocessing is unavailable, in which case units simply
            # stay on the thread executor.
            self._processes = _make_executor(len(self.workers))
        self._dispatch_task = asyncio.get_running_loop().create_task(
            self._dispatch_loop())

    async def stop(self) -> None:
        self._stopping = True
        self.queue.notify()
        if self._dispatch_task is not None:
            self._dispatch_task.cancel()
            try:
                await self._dispatch_task
            except asyncio.CancelledError:
                pass
            self._dispatch_task = None
        for task in list(self._unit_tasks):
            task.cancel()
        if self._unit_tasks:
            await asyncio.gather(*self._unit_tasks, return_exceptions=True)
        if self._threads is not None:
            self._threads.shutdown(wait=False)
            self._threads = None
        if self._processes is not None:
            self._processes.shutdown(wait=False)
            self._processes = None

    # ------------------------------------------------------------------
    # worker fleet control
    # ------------------------------------------------------------------
    def worker(self, name: str) -> Worker:
        for worker in self.workers:
            if worker.name == name:
                return worker
        raise UnknownWorker(name)

    def drain(self, name: str) -> Worker:
        """Stop a worker accepting units; preempt its current one.

        An idle worker drains immediately.  A busy worker's preemptible
        unit is checkpointed at the next slice boundary and requeued for
        another worker (migration); a non-preemptible unit runs to
        completion first.  Either way the worker takes no further units
        until :meth:`undrain`.
        """
        worker = self.worker(name)
        if worker.state == "idle":
            worker.state = "drained"
        elif worker.state == "busy":
            worker.state = "draining"
            worker.drain_flag.set()
        return worker

    def undrain(self, name: str) -> Worker:
        worker = self.worker(name)
        worker.drain_flag.clear()
        if worker.state in ("drained", "draining"):
            worker.state = "idle" if worker.unit is None else "busy"
        self.queue.notify()
        return worker

    def _idle_workers(self) -> List[Worker]:
        return [worker for worker in self.workers if worker.state == "idle"]

    def _pick_worker(self, unit: Unit) -> Optional[Worker]:
        """Deterministic worker choice: name order, but prefer migrating
        a preempted unit away from the worker that dropped it."""
        idle = self._idle_workers()
        if not idle:
            return None
        if unit.last_worker is not None and len(idle) > 1:
            moved = [worker for worker in idle
                     if worker.name != unit.last_worker]
            if moved:
                return moved[0]
        return idle[0]

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def _dispatchable(self) -> bool:
        return bool(self.queue.pending_units() and self._idle_workers())

    async def _dispatch_loop(self) -> None:
        while not self._stopping:
            dispatched = self._dispatch_once()
            if not dispatched:
                await self.queue.wait(
                    lambda: self._stopping or self._dispatchable(),
                    timeout=0.5)

    def _dispatch_once(self) -> bool:
        """Serve cache/in-flight hits and assign one unit; True if any."""
        unit = self.queue.take_next()
        if unit is None:
            return False
        queue = self.queue
        job = unit.job
        # Shared-store dedupe first: both paths retire the unit without
        # occupying a worker.  Trace units must actually simulate here
        # (a hit carries no spans), a resume must continue from its
        # checkpoint, and a forced-checkpoint job exists to exercise the
        # preemption path — all three skip dedupe.
        dedupe_ok = (not job.trace_requested and unit.checkpoint is None
                     and job.checkpoint_at_ps is None)
        if dedupe_ok and self.cache is not None:
            hit = self.cache.get(unit.key)
            if hit is not None:
                unit.state = "running"
                queue.record_event(job, "unit_started", unit=unit.index,
                                   label=unit.label, worker=None)
                self._finish_unit(unit, {
                    "kind": "done", "result": result_to_dict(hit.result),
                    "events": hit.events, "sim_time_ps": hit.sim_time_ps,
                }, cached="cache")
                return True
        if dedupe_ok and unit.key in self._inflight:
            unit.state = "running"
            queue.record_event(job, "unit_started", unit=unit.index,
                               label=unit.label, worker=None)
            queue.record_event(job, "unit_coalesced", unit=unit.index,
                               key=unit.key[:16])
            task = asyncio.get_running_loop().create_task(
                self._follow_inflight(unit, self._inflight[unit.key]))
            self._unit_tasks.add(task)
            task.add_done_callback(self._unit_tasks.discard)
            return True
        worker = self._pick_worker(unit)
        if worker is None:
            return False
        worker.state = "busy"
        worker.unit = unit
        unit.worker = worker.name
        unit.state = "running"
        queue.record_event(job, "unit_resumed" if unit.checkpoint is not None
                           else "unit_started", unit=unit.index,
                           label=unit.label, worker=worker.name)
        queue.finish_unit_bookkeeping(job)
        if dedupe_ok:
            self._inflight[unit.key] = \
                asyncio.get_running_loop().create_future()
        task = asyncio.get_running_loop().create_task(
            self._run_unit(worker, unit))
        self._unit_tasks.add(task)
        task.add_done_callback(self._unit_tasks.discard)
        return True

    # ------------------------------------------------------------------
    # unit execution
    # ------------------------------------------------------------------
    async def _run_unit(self, worker: Worker, unit: Unit) -> None:
        loop = asyncio.get_running_loop()
        job = unit.job
        try:
            if unit.checkpoint is not None:
                checkpoint_doc, unit.checkpoint = unit.checkpoint, None
                out = await loop.run_in_executor(
                    self._threads, _execute_resume, checkpoint_doc)
            elif self._processes is not None and not job.trace_requested \
                    and not job.preemptible:
                # Offload through the sweep engine's process worker.
                raw = await loop.run_in_executor(
                    self._processes, _worker,
                    (config_to_dict(unit.config), unit.max_ps))
                out = {"kind": "done", "result": raw["result"],
                       "events": int(raw["events"]),
                       "sim_time_ps": int(raw["sim_time_ps"])}
            else:
                forced = None
                if job.preemptible and unit.preemptions == 0:
                    forced = self._forced_checkpoint_ps(unit)
                drain = worker.drain_flag if job.preemptible else None
                out = await loop.run_in_executor(
                    self._threads, _execute_fresh,
                    config_to_dict(unit.config), unit.max_ps,
                    self.slice_ps, job.trace_requested, forced, drain)
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # simulation / snapshot failures
            self._fail_unit(unit, f"{type(exc).__name__}: {exc}")
            self._release_worker(worker)
            return

        if out["kind"] == "preempted":
            worker.preempted += 1
            self.queue.record_event(job, "unit_preempted", unit=unit.index,
                                    worker=worker.name,
                                    at_ps=out["at_ps"])
            self.queue.requeue(unit, out["checkpoint"])
            self._release_worker(worker)
            self.queue.notify()
            return

        self._finish_unit(unit, out, cached=None)
        worker.completed += 1
        self._release_worker(worker)

    def _forced_checkpoint_ps(self, unit: Unit) -> Optional[int]:
        return unit.job.checkpoint_at_ps

    async def _follow_inflight(
            self, unit: Unit,
            future: "asyncio.Future[Dict[str, Any]]") -> None:
        try:
            out = await asyncio.shield(future)
        except asyncio.CancelledError:
            raise
        except Exception as exc:
            self._fail_unit(unit, f"{type(exc).__name__}: {exc}")
            return
        self._finish_unit(unit, dict(out), cached="inflight",
                          publish=False)

    def _finish_unit(self, unit: Unit, out: Dict[str, Any],
                     cached: Optional[str], publish: bool = True) -> None:
        job = unit.job
        unit.result = out["result"]
        unit.events = int(out["events"])
        unit.sim_time_ps = int(out["sim_time_ps"])
        unit.trace = out.get("trace")
        unit.cached = cached
        unit.state = "done"
        unit.worker = None
        if publish:
            if cached is None and self.cache is not None:
                self.cache.put(unit.key, CachedRun(
                    result=result_from_dict(dict(unit.result)),
                    events=unit.events, sim_time_ps=unit.sim_time_ps))
            future = self._inflight.pop(unit.key, None)
            if future is not None and not future.done():
                future.set_result(out)
        self.queue.record_event(
            job, "unit_done", unit=unit.index, label=unit.label,
            cached=cached, resumed=bool(out.get("resumed")),
            events=unit.events, sim_time_ps=unit.sim_time_ps)
        self.queue.finish_unit_bookkeeping(job)

    def _fail_unit(self, unit: Unit, message: str) -> None:
        unit.state = "failed"
        unit.error = message
        unit.worker = None
        future = self._inflight.pop(unit.key, None)
        if future is not None and not future.done():
            future.set_exception(RuntimeError(message))
        self.queue.record_event(unit.job, "unit_failed", unit=unit.index,
                                label=unit.label, error=message)
        self.queue.finish_unit_bookkeeping(unit.job)

    def _release_worker(self, worker: Worker) -> None:
        worker.unit = None
        if worker.state in ("draining", "drained"):
            worker.state = "drained"
        else:
            worker.state = "idle"
        self.queue.notify()

    def views(self) -> List[Dict[str, Any]]:
        return [worker.view() for worker in self.workers]
