"""Per-transaction, per-component energy accounting.

The paper's platform is judged on how communication, memory and I/O
*interact* — and in a memory-centric MPSoC those interactions dominate
energy as much as latency: every bus beat toggles a data path, every
row miss costs an ACTIVATE/PRECHARGE pair, every refresh burns charge
whether or not the platform is busy.  This module adds that dimension
to the observability stack without touching its cost model:

* :class:`EnergyConfig` — the coefficient block (per-beat bus energy per
  fabric protocol, SDRAM command energies + standby power from
  :mod:`repro.memory.timing`, on-chip memory and cache access energies).
  It is a field of ``PlatformConfig``, so coefficients travel with the
  configuration document through sweeps, checkpoints and cache keys.
* :class:`EnergyAccountant` — the per-simulator sink.  It lives in the
  ``Simulator._energy`` slot next to ``_spans`` and ``_checks`` and
  follows the same select-once discipline: components capture the slot
  once at construction and guard every charge with a single
  ``is not None`` test per transaction hop.  With the slot at ``None``
  (the default) a run executes exactly the uninstrumented fast path.

Accounting is **integer femtojoules**.  Coefficients are configured in
picojoules (datasheet units) and converted once, at tap resolution, so
hot-path charges are plain integer adds — deterministic, exactly
associative, and conserving by construction: the per-component totals
sum to the reported total with no floating-point residue.  The handy
identity ``1 mW x 1 ps = 1 fJ`` makes power integration exact too, and
is what the Perfetto counter export uses in reverse (``fJ / ps = mW``).

The loosely-timed mode charges through the *same* taps: LT batches
event scheduling, never beats (``docs/FAST_SIM.md``), so per-beat
charge counts are identical between resolutions and only the
time-integrated standby terms drift with execution time — which is what
keeps the LT energy-drift clause of the accuracy contract at <=1%.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..memory.timing import DDR_ENERGY, SdramEnergy

#: Accounting grain: coefficients are configured in pJ, accumulated in fJ.
FJ_PER_PJ = 1000


def fj_from_pj(pj: float) -> int:
    """One-time conversion of a configured coefficient to the fJ grain."""
    return int(round(pj * FJ_PER_PJ))


def fj_from_power(mw: float, duration_ps: int) -> int:
    """Energy of ``mw`` milliwatts over ``duration_ps``: 1 mW x 1 ps = 1 fJ."""
    return int(round(mw * duration_ps))


@dataclass(frozen=True)
class EnergyConfig:
    """The energy model's coefficient block.

    Bus coefficients are picojoules per (width-adjusted) bus cell — one
    request cell or one response beat on the fabric data path.  They are
    representative 130 nm-class numbers ordered by protocol capability
    (a T3 shaped-packet node switches more control logic per cell than a
    T1 node; AXI's five channels cost more than AHB's two); like the
    SDRAM timing tables they are *tunable model parameters*, not
    measurements — calibrate them per technology before drawing absolute
    conclusions.  Relative comparisons (topology A vs topology B under
    one coefficient set) are the intended use, exactly as for the
    latency results.
    """

    #: Master switch: when ``False`` (the default) no accountant is
    #: attached and every tap stays a dormant ``None`` check.
    enabled: bool = False

    # -- interconnect (pJ per request cell / response beat) ------------
    stbus_t1_pj_per_beat: float = 4.2
    stbus_t2_pj_per_beat: float = 5.6
    stbus_t3_pj_per_beat: float = 6.8
    ahb_pj_per_beat: float = 5.0
    axi_pj_per_beat: float = 7.5
    tlm_pj_per_beat: float = 5.6
    #: Registry-served generic fabrics (docs/PROTOCOLS.md): simpler
    #: handshakes switch less control logic per cell than the
    #: full-featured buses above.
    wishbone_pj_per_beat: float = 3.8
    apb_pj_per_beat: float = 2.4
    axi4lite_pj_per_beat: float = 4.6
    avalon_pj_per_beat: float = 4.0
    tilelink_pj_per_beat: float = 4.4
    #: Per far-side beat of a bridge-converted child transaction
    #: (re-timing FIFOs + width conversion datapath).
    bridge_pj_per_beat: float = 3.4

    # -- memories (pJ per beat / access) -------------------------------
    onchip_pj_per_beat: float = 9.0
    cache_hit_pj: float = 6.0
    cache_miss_pj: float = 14.0
    #: Off-chip SDRAM command/standby model (paired with the timing
    #: preset via ``ENERGY_PRESETS`` in :mod:`repro.memory.timing`).
    sdram: SdramEnergy = DDR_ENERGY

    def __post_init__(self) -> None:
        for name in ("stbus_t1_pj_per_beat", "stbus_t2_pj_per_beat",
                     "stbus_t3_pj_per_beat", "ahb_pj_per_beat",
                     "axi_pj_per_beat", "tlm_pj_per_beat",
                     "wishbone_pj_per_beat", "apb_pj_per_beat",
                     "axi4lite_pj_per_beat", "avalon_pj_per_beat",
                     "tilelink_pj_per_beat",
                     "bridge_pj_per_beat", "onchip_pj_per_beat",
                     "cache_hit_pj", "cache_miss_pj"):
            if getattr(self, name) < 0:
                raise ValueError(f"energy coefficient {name} cannot be "
                                 f"negative")

    def scaled(self, **overrides: Any) -> "EnergyConfig":
        """A copy with selected coefficients replaced (for sweeps)."""
        return replace(self, **overrides)

    # ------------------------------------------------------------------
    def fabric_pj_per_beat(self, fabric) -> float:
        """Coefficient for one bus cell on ``fabric``.

        STBus nodes (shared-bus and crossbar) carry a ``bus_type``;
        registry-served generic fabrics resolve through their spec's
        ``energy_coefficient`` field; the remaining legacy fabrics are
        identified by their ``protocol`` label.
        """
        bus_type = getattr(fabric, "bus_type", None)
        if bus_type is not None:
            return {1: self.stbus_t1_pj_per_beat,
                    2: self.stbus_t2_pj_per_beat,
                    3: self.stbus_t3_pj_per_beat}[int(bus_type)]
        spec = getattr(fabric, "spec", None)
        if spec is not None:
            return float(getattr(self, spec.energy_coefficient))
        protocol = getattr(fabric, "protocol", "")
        if protocol == "ahb":
            return self.ahb_pj_per_beat
        if protocol == "axi":
            return self.axi_pj_per_beat
        if protocol == "tlm":
            return self.tlm_pj_per_beat
        return self.stbus_t2_pj_per_beat


class EnergyAccountant:
    """Integer-fJ energy sink for one simulator.

    Hot-path contract: :meth:`bus_request` / :meth:`bus_beat` /
    :meth:`charge` are only ever called behind an ``is not None`` guard
    on a captured ``Simulator._energy`` slot, so the disabled path costs
    one attribute test per transaction hop and nothing per event.

    ``timeline=True`` additionally records every charge as a
    ``(time_ps, fj)`` delta per component — the raw material for the
    Perfetto power counter tracks.  ``per_transaction=True`` keeps a
    per-transaction-id total for span-level attribution.  Both are
    capture-time options (like FIFO probes): plain platform runs
    accumulate totals only.
    """

    def __init__(self, config: Optional[EnergyConfig] = None, *,
                 timeline: bool = False,
                 per_transaction: bool = False) -> None:
        self.config = config if config is not None \
            else EnergyConfig(enabled=True)
        #: fJ per component path — the conservation ledger.
        self._totals: Dict[str, int] = {}
        self._by_initiator: Dict[str, int] = {}
        self._txn_fj: Optional[Dict[int, int]] = \
            {} if per_transaction else None
        self._timeline: Optional[Dict[str, List[Tuple[int, int]]]] = \
            {} if timeline else None
        #: Lazily resolved ``id(fabric) -> (component path, fJ/cell)``.
        #: Lazy because ``StbusNode`` assigns its ``bus_type`` *after*
        #: the base ``Fabric.__init__`` captured this accountant.
        self._fabric_cache: Dict[int, Tuple[str, int]] = {}
        #: End-of-run integrators (SDRAM background power, open rows).
        self._finalizers: List[Callable[[int], None]] = []
        self._finalized_at: Optional[int] = None

    # ------------------------------------------------------------------
    def configure(self, config: EnergyConfig) -> None:
        """Adopt a platform's coefficient block (pre-elaboration only)."""
        self.config = config
        self._fabric_cache.clear()

    # ------------------------------------------------------------------
    # hot-path charging
    # ------------------------------------------------------------------
    def charge(self, component: str, fj: int, t_ps: int = 0,
               initiator: Optional[str] = None,
               tid: Optional[int] = None) -> None:
        """Attribute ``fj`` femtojoules to ``component`` at ``t_ps``."""
        if fj <= 0:
            return
        totals = self._totals
        totals[component] = totals.get(component, 0) + fj
        if initiator is not None:
            by_init = self._by_initiator
            by_init[initiator] = by_init.get(initiator, 0) + fj
        if tid is not None and self._txn_fj is not None:
            self._txn_fj[tid] = self._txn_fj.get(tid, 0) + fj
        if self._timeline is not None:
            self._timeline.setdefault(component, []).append((t_ps, fj))

    def bus_request(self, fabric, txn) -> None:
        """Request-channel charge: one cell per occupied request cycle."""
        entry = self._fabric_cache.get(id(fabric))
        if entry is None:
            entry = self._resolve_fabric(fabric)
        path, fj = entry
        self.charge(path, fj * fabric.request_cycles(txn), fabric.sim.now,
                    txn.initiator, txn.tid)

    def bus_beat(self, fabric, txn) -> None:
        """Response-channel charge: one beat (or write ack) delivered."""
        entry = self._fabric_cache.get(id(fabric))
        if entry is None:
            entry = self._resolve_fabric(fabric)
        path, fj = entry
        self.charge(path, fj, fabric.sim.now, txn.initiator, txn.tid)

    def bus_beats(self, fabric, txn, count: int) -> None:
        """Batched response charge (the TLM node's analytic completion)."""
        entry = self._fabric_cache.get(id(fabric))
        if entry is None:
            entry = self._resolve_fabric(fabric)
        path, fj = entry
        self.charge(path, fj * count, fabric.sim.now,
                    txn.initiator, txn.tid)

    def _resolve_fabric(self, fabric) -> Tuple[str, int]:
        entry = (fabric.name,
                 fj_from_pj(self.config.fabric_pj_per_beat(fabric)))
        self._fabric_cache[id(fabric)] = entry
        return entry

    # ------------------------------------------------------------------
    # end-of-run integration
    # ------------------------------------------------------------------
    def add_finalizer(self, fn: Callable[[int], None]) -> None:
        """Register an end-of-run integrator (called once, at finalize)."""
        self._finalizers.append(fn)

    def finalize(self, now_ps: int) -> None:
        """Integrate the time-based terms up to ``now_ps`` (idempotent)."""
        if self._finalized_at is not None:
            return
        self._finalized_at = now_ps
        for fn in self._finalizers:
            fn(now_ps)

    @property
    def finalized(self) -> bool:
        return self._finalized_at is not None

    # ------------------------------------------------------------------
    # queries (reporting grain: pJ floats)
    # ------------------------------------------------------------------
    @property
    def total_fj(self) -> int:
        return sum(self._totals.values())

    @property
    def total_pj(self) -> float:
        return self.total_fj / FJ_PER_PJ

    def component_fj(self) -> Dict[str, int]:
        """The exact ledger — values sum to :attr:`total_fj` precisely."""
        return dict(sorted(self._totals.items()))

    def component_pj(self) -> Dict[str, float]:
        return {name: fj / FJ_PER_PJ
                for name, fj in sorted(self._totals.items())}

    def initiator_pj(self) -> Dict[str, float]:
        """Initiator-attributable energy (bus, cache and on-chip beats).

        Shared memory-system work (SDRAM commands, standby power) has no
        single requester and is deliberately absent here; the component
        breakdown is the conserving one.
        """
        return {name: fj / FJ_PER_PJ
                for name, fj in sorted(self._by_initiator.items())}

    def txn_pj(self, tid: int) -> Optional[float]:
        """Per-transaction energy (``per_transaction`` captures only)."""
        if self._txn_fj is None:
            return None
        fj = self._txn_fj.get(tid)
        return None if fj is None else fj / FJ_PER_PJ

    def timeline_deltas(self) -> Dict[str, List[Tuple[int, int]]]:
        """Per-component ``(time_ps, fj)`` charge deltas (timeline mode)."""
        return self._timeline or {}

    def rows(self) -> Dict[str, float]:
        """Flat ``path -> pJ`` rows for the metric exporters."""
        out: Dict[str, float] = {}
        for name, fj in sorted(self._totals.items()):
            out[f"energy.{name}.pj"] = fj / FJ_PER_PJ
        for name, fj in sorted(self._by_initiator.items()):
            out[f"energy.initiator.{name}.pj"] = fj / FJ_PER_PJ
        out["energy.total.pj"] = self.total_fj / FJ_PER_PJ
        return out


def attach_energy(sim, config: Optional[EnergyConfig] = None, *,
                  timeline: bool = False,
                  per_transaction: bool = False) -> EnergyAccountant:
    """Install an accountant on ``sim`` (pre-elaboration).

    Components capture ``sim._energy`` at construction, so this must run
    before the platform is built — ``PlatformInstance`` does it from the
    configuration, ``repro.obs.capture(energy=True)`` from the ambient
    construction hook.  If an accountant is already installed it is
    returned unchanged (the capture hook wins; a platform configuration
    then merely re-points the coefficients via :meth:`configure`).
    """
    accountant = sim._energy
    if accountant is None:
        accountant = EnergyAccountant(config, timeline=timeline,
                                      per_transaction=per_transaction)
        sim._energy = accountant
        registry = sim.metrics
        if "energy" not in registry:
            registry.register("energy", accountant)
    elif config is not None:
        accountant.configure(config)
    return accountant


__all__ = [
    "EnergyAccountant",
    "EnergyConfig",
    "FJ_PER_PJ",
    "attach_energy",
    "fj_from_pj",
    "fj_from_power",
]
