"""Transaction-lifecycle span recording.

Every :class:`~repro.interconnect.types.Transaction` already carries the
timestamps the fabrics stamp on it (created, granted, accepted, first data,
done).  A :class:`SpanRecorder` — installed on a simulator by
``repro.obs.capture()`` — adds the hops those timestamps cannot see:

* ``bridge.convert`` — the moment a bridge re-issued the request on the far
  side (datawidth/protocol conversion, Fig. 2),
* ``lmi.engine`` — the moment the LMI optimisation engine *dequeued* the
  request from the input FIFO (the reordering decision point),
* ``sdram.cmd`` — the moment the corresponding SDRAM command sequence was
  issued.

:func:`build_spans` then tiles the closed interval
``[t_created, t_done]`` with one span per hop.  The tiling is exact by
construction — spans are the gaps between consecutive monotonic lifecycle
points, the last of which is always ``t_done`` — so **per-hop durations sum
to the end-to-end latency** for every completed transaction.  Marks landing
after ``t_done`` (the tail of a posted write, which completes at acceptance
while the memory system is still working) are reported as *instants*
instead of spans, keeping the invariant intact.

Recording is off by default: ``Simulator._spans`` is ``None``, components
skip every mark behind a single ``is not None`` check per transaction hop,
and the kernel event loop is not involved at all (see
``docs/OBSERVABILITY.md``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..core.statistics import LatencySummary
from ..interconnect.types import Transaction

#: Span label for the segment *ending* at each lifecycle point.  The
#: segment between two points is named for the work that filled it.
_SEGMENT_ENDING_AT = {
    "granted": "arbitration",
    "accepted": "request_transfer",
    "bridge.convert": "bridge_crossing",
    "lmi.engine": "target_fifo",
    "sdram.cmd": "lmi_engine",
    "first_data": "memory_access",
    "done": "response_transfer",
}

#: Label of the final segment when the transaction produced no data beats
#: (write acknowledgement / posted completion).
_COMPLETION = "completion"


@dataclass(frozen=True)
class Span:
    """One hop of a transaction's journey: ``[start, start + duration)``."""

    name: str
    start_ps: int
    duration_ps: int

    @property
    def end_ps(self) -> int:
        return self.start_ps + self.duration_ps


@dataclass(frozen=True)
class Instant:
    """A point event outside the lifecycle tiling (e.g. post-completion
    service of a posted write)."""

    name: str
    time_ps: int


class SpanRecorder:
    """Collects transactions and extra per-hop marks for one simulator."""

    def __init__(self, sim) -> None:
        self.sim = sim
        #: Every transaction that entered the system, in bind order
        #: (bridge children included — they carry ``meta['parent']``).
        self.transactions: List[Transaction] = []
        self._marks: Dict[int, List[Tuple[str, int]]] = {}

    # ------------------------------------------------------------------
    # recording side (called by model code, guarded by `is not None`)
    # ------------------------------------------------------------------
    def register(self, txn: Transaction) -> None:
        """Adopt a transaction entering the system (hooked into ``bind``)."""
        self.transactions.append(txn)

    def mark(self, txn: Transaction, stage: str) -> None:
        """Record that ``txn`` reached ``stage`` at the current time."""
        self._marks.setdefault(txn.tid, []).append((stage, self.sim.now))

    # ------------------------------------------------------------------
    # query side
    # ------------------------------------------------------------------
    def marks(self, txn: Transaction) -> List[Tuple[str, int]]:
        return self._marks.get(txn.tid, [])

    def completed(self) -> List[Transaction]:
        """Transactions that finished (only these can be tiled into spans)."""
        return [txn for txn in self.transactions if txn.t_done is not None]


def build_spans(txn: Transaction,
                marks: List[Tuple[str, int]]) -> Tuple[List[Span], List[Instant]]:
    """Tile ``[t_created, t_done]`` with per-hop spans.

    Returns ``(spans, instants)``.  The spans' durations sum exactly to
    ``txn.latency_ps``; anything that cannot join the tiling without
    breaking monotonicity (marks after completion, re-ordered stamps)
    becomes an instant.
    """
    if txn.t_done is None or txn.t_created is None:
        return [], [Instant(stage, t) for stage, t in marks]
    points: List[Tuple[int, str]] = []
    if txn.t_granted is not None:
        points.append((txn.t_granted, "granted"))
    if txn.t_accepted is not None:
        points.append((txn.t_accepted, "accepted"))
    for stage, t in marks:
        points.append((t, stage))
    if txn.t_first_data is not None:
        points.append((txn.t_first_data, "first_data"))
    points.sort(key=lambda point: point[0])

    spans: List[Span] = []
    instants: List[Instant] = []
    prev = txn.t_created
    for t, kind in points:
        if t < prev or t > txn.t_done:
            instants.append(Instant(kind, t))
            continue
        label = _SEGMENT_ENDING_AT.get(kind, kind)
        if t > prev:
            spans.append(Span(label, prev, t - prev))
        prev = t
    if txn.t_done > prev or not spans:
        label = _COMPLETION if txn.t_first_data is None else \
            _SEGMENT_ENDING_AT["done"]
        spans.append(Span(label, prev, txn.t_done - prev))
    return spans, instants


def span_tiling_errors(txn: Transaction, spans: List[Span]) -> List[str]:
    """Defects in a span tiling of ``txn`` (empty list = invariant holds).

    The tiling invariant: spans cover the closed interval
    ``[t_created, t_done]`` exactly — no gaps, no overlaps, no negative
    durations — so per-hop durations sum to the end-to-end latency.
    :func:`build_spans` produces this by construction from healthy
    timestamps; the ``repro.check`` monitor runs this audit over *real*
    platform runs so re-ordered or corrupted lifecycle stamps surface as
    ``obs.span_tiling`` violations instead of silently skewed hop tables.
    """
    if txn.t_done is None or txn.t_created is None:
        return []
    errors: List[str] = []
    if not spans:
        errors.append("no spans for a completed transaction")
        return errors
    if spans[0].start_ps != txn.t_created:
        errors.append(f"first span starts at {spans[0].start_ps}ps, not at "
                      f"t_created={txn.t_created}ps")
    prev_end = spans[0].start_ps
    for span in spans:
        if span.duration_ps < 0:
            errors.append(f"span {span.name!r} has negative duration "
                          f"{span.duration_ps}ps")
        if span.start_ps != prev_end:
            kind = "gap" if span.start_ps > prev_end else "overlap"
            errors.append(f"{kind} of {abs(span.start_ps - prev_end)}ps "
                          f"before span {span.name!r} at {span.start_ps}ps")
        prev_end = span.end_ps
    if prev_end != txn.t_done:
        errors.append(f"last span ends at {prev_end}ps, not at "
                      f"t_done={txn.t_done}ps")
    total = sum(span.duration_ps for span in spans)
    if txn.latency_ps is not None and total != txn.latency_ps:
        errors.append(f"span durations sum to {total}ps but end-to-end "
                      f"latency is {txn.latency_ps}ps")
    return errors


def hop_summary(recorders) -> Dict[str, LatencySummary]:
    """Aggregate span durations per hop name across recorders.

    Includes an ``end_to_end`` population so the terminal summary shows the
    total latency next to its decomposition.
    """
    table: Dict[str, LatencySummary] = {}

    def bucket(name: str) -> LatencySummary:
        if name not in table:
            table[name] = LatencySummary(name)
        return table[name]

    for recorder in recorders:
        for txn in recorder.completed():
            spans, _instants = build_spans(txn, recorder.marks(txn))
            for span in spans:
                bucket(span.name).add(span.duration_ps)
            if txn.latency_ps is not None:
                bucket("end_to_end").add(txn.latency_ps)
    return table


def format_hop_summary(table: Dict[str, LatencySummary]) -> str:
    """Plain-text rendering of :func:`hop_summary` (ps-denominated)."""
    from ..analysis.report import format_table  # deferred: keep obs light

    order = sorted(table, key=lambda name: (name == "end_to_end", name))
    rows = []
    for name in order:
        summary = table[name]
        rows.append([
            name,
            f"{summary.count}",
            f"{summary.mean:,.0f}" if summary.count else "-",
            f"{summary.percentile(95):,.0f}" if summary.count else "-",
            f"{summary.maximum:,}" if summary.count else "-",
        ])
    return format_table(["hop", "count", "mean_ps", "p95_ps", "max_ps"], rows)
