"""Flat metric export: JSON, CSV, and terminal rendering.

Everything here consumes the ``path -> value`` rows produced by
:meth:`~repro.obs.registry.MetricRegistry.snapshot`, so any metric a
component registers shows up in every export format with no per-format
plumbing.  Rows are emitted in sorted path order, which makes two runs'
dumps directly diffable.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Any, Dict, Optional


def metrics_json(rows: Dict[str, float], *, sim_time_ps: Optional[int] = None,
                 experiment: Optional[str] = None,
                 extra: Optional[Dict[str, Any]] = None) -> str:
    """JSON document with a small header plus the sorted metric rows.

    ``extra`` adds caller-defined header fields (the DSE front export
    records its search provenance there); it cannot shadow the three
    standard keys.
    """
    document: Dict[str, Any] = {
        "experiment": experiment,
        "sim_time_ps": sim_time_ps,
    }
    for key, value in (extra or {}).items():
        if key in ("experiment", "sim_time_ps", "metrics"):
            raise ValueError(f"extra header field {key!r} would shadow a "
                             f"standard one")
        document[key] = value
    document["metrics"] = {path: rows[path] for path in sorted(rows)}
    return json.dumps(document, indent=2) + "\n"


def metrics_csv(rows: Dict[str, float]) -> str:
    """Two-column ``metric,value`` CSV in sorted path order."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(["metric", "value"])
    for path in sorted(rows):
        value = rows[path]
        writer.writerow([path, f"{value:.6g}" if isinstance(value, float)
                         else value])
    return buffer.getvalue()


def metrics_text(rows: Dict[str, float], prefix: str = "") -> str:
    """Aligned terminal listing, optionally restricted to a path prefix."""
    if prefix:
        dotted = prefix + "."
        rows = {path: value for path, value in rows.items()
                if path == prefix or path.startswith(dotted)}
    if not rows:
        return "(no metrics)"
    width = max(len(path) for path in rows)
    lines = []
    for path in sorted(rows):
        value = rows[path]
        if isinstance(value, float) and not value.is_integer():
            rendered = f"{value:.4f}"
        else:
            rendered = f"{int(value):,}"
        lines.append(f"{path:<{width}}  {rendered}")
    return "\n".join(lines)
