"""``repro.obs`` — the unified instrumentation layer.

Three pieces, composable but independent:

:mod:`repro.obs.registry`
    A per-simulator :class:`MetricRegistry` (reached as ``sim.metrics``)
    through which components create their counters, gauges, histograms and
    state trackers, making every statistic addressable by dotted path.

:mod:`repro.obs.trace`
    Transaction-lifecycle :class:`SpanRecorder` — per-hop timestamps from
    initiator issue through arbitration, bridge conversion, LMI reordering
    and SDRAM command issue, tiled into spans whose durations sum exactly
    to the end-to-end latency.

:mod:`repro.obs.perfetto` / :mod:`repro.obs.export`
    Exporters: Chrome/Perfetto ``trace_event`` JSON for the spans, and
    JSON/CSV/terminal dumps for the metric snapshot.

Usage::

    from repro.obs import capture

    with capture() as cap:
        result = run_config(config)      # builds its own Simulator(s)
    cap.write_trace("out.json")          # Perfetto-loadable
    print(cap.format_summary())          # per-hop latency table

:func:`capture` works *ambiently*: while the context is active, every
:class:`~repro.core.kernel.Simulator` constructed anywhere in the process
gets a recorder attached.  That matters because experiment runners build
their simulators internally.  Outside a capture nothing is attached, the
kernel's ``_new_sim_hooks`` list is empty, and the per-transaction guards
(``sim._spans is not None``) all fail — tracing costs nothing when off
(the claim ``tests/test_obs_overhead.py`` enforces against the kernel
benchmark baseline).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional

from ..core import kernel as _kernel
from .energy import EnergyAccountant, EnergyConfig, attach_energy
from .export import metrics_csv, metrics_json, metrics_text
from .perfetto import to_trace_json, trace_events, write_trace
from .registry import FifoProbe, MetricRegistry
from .trace import (
    Instant,
    Span,
    SpanRecorder,
    build_spans,
    format_hop_summary,
    hop_summary,
)

__all__ = [
    "Capture",
    "EnergyAccountant",
    "EnergyConfig",
    "FifoProbe",
    "Instant",
    "MetricRegistry",
    "Span",
    "SpanRecorder",
    "attach_energy",
    "build_spans",
    "capture",
    "format_hop_summary",
    "hop_summary",
    "metrics_csv",
    "metrics_json",
    "metrics_text",
    "to_trace_json",
    "trace_events",
    "write_trace",
]


class Capture:
    """One observability session: recorders for every simulator it saw.

    With ``energy=True`` every simulator additionally gets an
    :class:`~repro.obs.energy.EnergyAccountant` (timeline and
    per-transaction tracking on), so traces grow power counter tracks
    and spans carry per-transaction energy.  Platform runs whose
    configuration enables its own energy block re-point the capture
    accountant's coefficients; either side alone is sufficient.
    """

    def __init__(self, energy: bool = False) -> None:
        self.recorders: List[SpanRecorder] = []
        #: Index-aligned with :attr:`recorders` (``None`` when energy
        #: accounting was not requested for this session).
        self.accountants: List[Optional[EnergyAccountant]] = []
        self._energy = energy

    # ------------------------------------------------------------------
    # attachment
    # ------------------------------------------------------------------
    def attach(self, sim) -> SpanRecorder:
        """Attach span recording to an already-built simulator."""
        if sim._spans is not None:
            raise RuntimeError("simulator already has a span recorder")
        recorder = SpanRecorder(sim)
        sim._spans = recorder
        self.recorders.append(recorder)
        if self._energy:
            self.accountants.append(attach_energy(
                sim, timeline=True, per_transaction=True))
        else:
            self.accountants.append(None)
        return recorder

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------
    @property
    def simulators(self) -> List:
        return [recorder.sim for recorder in self.recorders]

    def transactions(self) -> List:
        """All captured transactions across simulators, in bind order."""
        return [txn for recorder in self.recorders
                for txn in recorder.transactions]

    def completed(self) -> List:
        return [txn for recorder in self.recorders
                for txn in recorder.completed()]

    def hop_summary(self):
        """Per-hop latency populations (see :func:`repro.obs.trace.hop_summary`)."""
        return hop_summary(self.recorders)

    def format_summary(self) -> str:
        return format_hop_summary(self.hop_summary())

    def metrics_snapshot(self) -> Dict[str, float]:
        """Merged metric rows from every captured simulator.

        Multi-simulator captures prefix rows with ``sim<N>.`` to keep them
        apart; the common single-simulator case stays unprefixed.
        """
        # Close the time-integrated energy terms (SDRAM background power,
        # open rows) at each simulator's current instant.  finalize() is
        # idempotent, so a platform that already produced its RunResult
        # is unaffected.
        self._finalize_energy()
        if len(self.recorders) == 1:
            return self.recorders[0].sim.metrics.snapshot()
        rows: Dict[str, float] = {}
        for index, recorder in enumerate(self.recorders, start=1):
            for path, value in recorder.sim.metrics.snapshot().items():
                rows[f"sim{index}.{path}"] = value
        return rows

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def to_trace_json(self):
        self._finalize_energy()
        return to_trace_json(self.recorders, self.accountants)

    def write_trace(self, path: str) -> int:
        """Write a Perfetto trace file; returns the span-event count."""
        self._finalize_energy()
        return write_trace(path, self.recorders, self.accountants)

    def _finalize_energy(self) -> None:
        for recorder, accountant in zip(self.recorders, self.accountants):
            if accountant is not None:
                accountant.finalize(recorder.sim.now)


@contextmanager
def capture(energy: bool = False) -> Iterator[Capture]:
    """Ambiently record every simulator built while the context is active."""
    session = Capture(energy=energy)
    _kernel._new_sim_hooks.append(session.attach)
    try:
        yield session
    finally:
        _kernel._new_sim_hooks.remove(session.attach)
