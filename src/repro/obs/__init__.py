"""``repro.obs`` — the unified instrumentation layer.

Three pieces, composable but independent:

:mod:`repro.obs.registry`
    A per-simulator :class:`MetricRegistry` (reached as ``sim.metrics``)
    through which components create their counters, gauges, histograms and
    state trackers, making every statistic addressable by dotted path.

:mod:`repro.obs.trace`
    Transaction-lifecycle :class:`SpanRecorder` — per-hop timestamps from
    initiator issue through arbitration, bridge conversion, LMI reordering
    and SDRAM command issue, tiled into spans whose durations sum exactly
    to the end-to-end latency.

:mod:`repro.obs.perfetto` / :mod:`repro.obs.export`
    Exporters: Chrome/Perfetto ``trace_event`` JSON for the spans, and
    JSON/CSV/terminal dumps for the metric snapshot.

Usage::

    from repro.obs import capture

    with capture() as cap:
        result = run_config(config)      # builds its own Simulator(s)
    cap.write_trace("out.json")          # Perfetto-loadable
    print(cap.format_summary())          # per-hop latency table

:func:`capture` works *ambiently*: while the context is active, every
:class:`~repro.core.kernel.Simulator` constructed anywhere in the process
gets a recorder attached.  That matters because experiment runners build
their simulators internally.  Outside a capture nothing is attached, the
kernel's ``_new_sim_hooks`` list is empty, and the per-transaction guards
(``sim._spans is not None``) all fail — tracing costs nothing when off
(the claim ``tests/test_obs_overhead.py`` enforces against the kernel
benchmark baseline).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator, List

from ..core import kernel as _kernel
from .export import metrics_csv, metrics_json, metrics_text
from .perfetto import to_trace_json, trace_events, write_trace
from .registry import FifoProbe, MetricRegistry
from .trace import (
    Instant,
    Span,
    SpanRecorder,
    build_spans,
    format_hop_summary,
    hop_summary,
)

__all__ = [
    "Capture",
    "FifoProbe",
    "Instant",
    "MetricRegistry",
    "Span",
    "SpanRecorder",
    "build_spans",
    "capture",
    "format_hop_summary",
    "hop_summary",
    "metrics_csv",
    "metrics_json",
    "metrics_text",
    "to_trace_json",
    "trace_events",
    "write_trace",
]


class Capture:
    """One observability session: recorders for every simulator it saw."""

    def __init__(self) -> None:
        self.recorders: List[SpanRecorder] = []

    # ------------------------------------------------------------------
    # attachment
    # ------------------------------------------------------------------
    def attach(self, sim) -> SpanRecorder:
        """Attach span recording to an already-built simulator."""
        if sim._spans is not None:
            raise RuntimeError("simulator already has a span recorder")
        recorder = SpanRecorder(sim)
        sim._spans = recorder
        self.recorders.append(recorder)
        return recorder

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------
    @property
    def simulators(self) -> List:
        return [recorder.sim for recorder in self.recorders]

    def transactions(self) -> List:
        """All captured transactions across simulators, in bind order."""
        return [txn for recorder in self.recorders
                for txn in recorder.transactions]

    def completed(self) -> List:
        return [txn for recorder in self.recorders
                for txn in recorder.completed()]

    def hop_summary(self):
        """Per-hop latency populations (see :func:`repro.obs.trace.hop_summary`)."""
        return hop_summary(self.recorders)

    def format_summary(self) -> str:
        return format_hop_summary(self.hop_summary())

    def metrics_snapshot(self) -> Dict[str, float]:
        """Merged metric rows from every captured simulator.

        Multi-simulator captures prefix rows with ``sim<N>.`` to keep them
        apart; the common single-simulator case stays unprefixed.
        """
        if len(self.recorders) == 1:
            return self.recorders[0].sim.metrics.snapshot()
        rows: Dict[str, float] = {}
        for index, recorder in enumerate(self.recorders, start=1):
            for path, value in recorder.sim.metrics.snapshot().items():
                rows[f"sim{index}.{path}"] = value
        return rows

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def to_trace_json(self):
        return to_trace_json(self.recorders)

    def write_trace(self, path: str) -> int:
        """Write a Perfetto trace file; returns the span-event count."""
        return write_trace(path, self.recorders)


@contextmanager
def capture() -> Iterator[Capture]:
    """Ambiently record every simulator built while the context is active."""
    session = Capture()
    _kernel._new_sim_hooks.append(session.attach)
    try:
        yield session
    finally:
        _kernel._new_sim_hooks.remove(session.attach)
