"""Chrome / Perfetto ``trace_event`` export.

Serialises the spans captured by :class:`~repro.obs.trace.SpanRecorder`
into the JSON object format understood by ``ui.perfetto.dev`` and
``chrome://tracing``:

* one *process* per simulator (pid 1, 2, ... in capture order),
* one *track* (tid) per initiator, so each IP traffic generator's
  transactions stack on their own timeline,
* ``"ph": "X"`` complete events for every lifecycle span — arbitration,
  request transfer, bridge crossing, LMI engine, memory access, response
  transfer — with the transaction id and burst shape in ``args``,
* ``"ph": "i"`` instant events for marks outside the lifecycle tiling
  (the memory-side tail of posted writes),
* ``"ph": "M"`` metadata records naming processes and threads.

Timestamps: the trace_event format counts microseconds.  The kernel counts
integer picoseconds.  We export ``ts``/``dur`` in fractional microseconds
(``ps / 1e6``) so sub-nanosecond hops keep their width in the viewer.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from .trace import build_spans

#: trace_event timestamps are microseconds; the kernel counts picoseconds.
_PS_PER_US = 1e6


def _us(time_ps: int) -> float:
    return time_ps / _PS_PER_US


def trace_events(recorders) -> List[Dict[str, Any]]:
    """The ``traceEvents`` list for one or more span recorders."""
    events: List[Dict[str, Any]] = []
    for pid, recorder in enumerate(recorders, start=1):
        events.append({
            "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
            "args": {"name": f"simulator{pid}"},
        })
        named_tracks = set()
        for txn in recorder.transactions:
            track = txn.initiator or f"txn{txn.tid}"
            if track not in named_tracks:
                named_tracks.add(track)
                events.append({
                    "name": "thread_name", "ph": "M", "pid": pid,
                    "tid": track, "args": {"name": track},
                })
            spans, instants = build_spans(txn, recorder.marks(txn))
            args = {
                "tid": txn.tid,
                "opcode": txn.opcode.value,
                "address": f"{txn.address:#x}",
                "beats": txn.beats,
                "beat_bytes": txn.beat_bytes,
            }
            parent = txn.meta.get("parent")
            if parent is not None:
                args["parent"] = getattr(parent, "tid", parent)
            if txn.posted:
                args["posted"] = True
            for span in spans:
                events.append({
                    "name": span.name, "cat": "txn", "ph": "X",
                    "pid": pid, "tid": track,
                    "ts": _us(span.start_ps), "dur": _us(span.duration_ps),
                    "args": args,
                })
            for instant in instants:
                events.append({
                    "name": instant.name, "cat": "txn", "ph": "i",
                    "pid": pid, "tid": track, "ts": _us(instant.time_ps),
                    "s": "t", "args": {"tid": txn.tid},
                })
    return events


def to_trace_json(recorders) -> Dict[str, Any]:
    """The full JSON-object-format trace document."""
    return {
        "traceEvents": trace_events(recorders),
        "displayTimeUnit": "ns",
        "otherData": {"source": "repro.obs", "time_unit": "us"},
    }


def write_trace(path: str, recorders) -> int:
    """Write a Perfetto-loadable trace file; returns the span-event count."""
    document = to_trace_json(recorders)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=1)
        handle.write("\n")
    return sum(1 for event in document["traceEvents"] if event["ph"] == "X")
