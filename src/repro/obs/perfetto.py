"""Chrome / Perfetto ``trace_event`` export.

Serialises the spans captured by :class:`~repro.obs.trace.SpanRecorder`
into the JSON object format understood by ``ui.perfetto.dev`` and
``chrome://tracing``:

* one *process* per simulator (pid 1, 2, ... in capture order),
* one *track* (tid) per initiator, so each IP traffic generator's
  transactions stack on their own timeline,
* ``"ph": "X"`` complete events for every lifecycle span — arbitration,
  request transfer, bridge crossing, LMI engine, memory access, response
  transfer — with the transaction id and burst shape in ``args``,
* ``"ph": "i"`` instant events for marks outside the lifecycle tiling
  (the memory-side tail of posted writes),
* ``"ph": "M"`` metadata records naming processes and threads,
* ``"ph": "C"`` counter events — per-component power-over-time tracks
  (``power.<component>``, in mW) when an energy accountant with a
  timeline is supplied.  The charge deltas are integer ``(ps, fJ)``
  pairs, and ``fJ / ps = mW``, so binning is exact integer arithmetic
  until the final division.

Timestamps: the trace_event format counts microseconds.  The kernel counts
integer picoseconds.  We export ``ts``/``dur`` in fractional microseconds
(``ps / 1e6``) so sub-nanosecond hops keep their width in the viewer.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from .trace import build_spans

#: trace_event timestamps are microseconds; the kernel counts picoseconds.
_PS_PER_US = 1e6


def _us(time_ps: int) -> float:
    return time_ps / _PS_PER_US


#: Power counter resolution: charge deltas are folded into at most this
#: many bins per run, so counter tracks stay viewer-friendly regardless
#: of how many individual charges a run produced.
_POWER_BINS = 200


def _power_counter_events(pid: int, accountant) -> List[Dict[str, Any]]:
    """``"C"`` events for one accountant's per-component power timeline."""
    events: List[Dict[str, Any]] = []
    deltas = accountant.timeline_deltas()
    horizon = max((t for samples in deltas.values() for t, _ in samples),
                  default=0)
    if horizon <= 0:
        return events
    bin_ps = max(1, -(-horizon // _POWER_BINS))
    bins = -(-horizon // bin_ps)
    for component in sorted(deltas):
        fj_per_bin = [0] * bins
        for t_ps, fj in deltas[component]:
            fj_per_bin[min(t_ps // bin_ps, bins - 1)] += fj
        for index, fj in enumerate(fj_per_bin):
            events.append({
                "name": f"power.{component}", "cat": "power", "ph": "C",
                "pid": pid, "tid": 0, "ts": _us(index * bin_ps),
                "args": {"mW": fj / bin_ps},
            })
    return events


def trace_events(recorders, accountants=None) -> List[Dict[str, Any]]:
    """The ``traceEvents`` list for one or more span recorders.

    ``accountants`` (optional) is a parallel list of
    :class:`~repro.obs.energy.EnergyAccountant` objects (or ``None``
    placeholders), index-aligned with ``recorders``: each contributes
    power counter tracks to its simulator's process, and per-transaction
    energy to the span ``args`` when it tracked transactions.
    """
    events: List[Dict[str, Any]] = []
    for pid, recorder in enumerate(recorders, start=1):
        accountant = None
        if accountants is not None and pid - 1 < len(accountants):
            accountant = accountants[pid - 1]
        events.append({
            "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
            "args": {"name": f"simulator{pid}"},
        })
        named_tracks = set()
        for txn in recorder.transactions:
            track = txn.initiator or f"txn{txn.tid}"
            if track not in named_tracks:
                named_tracks.add(track)
                events.append({
                    "name": "thread_name", "ph": "M", "pid": pid,
                    "tid": track, "args": {"name": track},
                })
            spans, instants = build_spans(txn, recorder.marks(txn))
            args = {
                "tid": txn.tid,
                "opcode": txn.opcode.value,
                "address": f"{txn.address:#x}",
                "beats": txn.beats,
                "beat_bytes": txn.beat_bytes,
            }
            parent = txn.meta.get("parent")
            if parent is not None:
                args["parent"] = getattr(parent, "tid", parent)
            if txn.posted:
                args["posted"] = True
            if accountant is not None:
                energy_pj = accountant.txn_pj(txn.tid)
                if energy_pj is not None:
                    args["energy_pj"] = energy_pj
            for span in spans:
                events.append({
                    "name": span.name, "cat": "txn", "ph": "X",
                    "pid": pid, "tid": track,
                    "ts": _us(span.start_ps), "dur": _us(span.duration_ps),
                    "args": args,
                })
            for instant in instants:
                events.append({
                    "name": instant.name, "cat": "txn", "ph": "i",
                    "pid": pid, "tid": track, "ts": _us(instant.time_ps),
                    "s": "t", "args": {"tid": txn.tid},
                })
        if accountant is not None:
            events.extend(_power_counter_events(pid, accountant))
    return events


def to_trace_json(recorders, accountants=None) -> Dict[str, Any]:
    """The full JSON-object-format trace document."""
    return {
        "traceEvents": trace_events(recorders, accountants),
        "displayTimeUnit": "ns",
        "otherData": {"source": "repro.obs", "time_unit": "us"},
    }


def write_trace(path: str, recorders, accountants=None) -> int:
    """Write a Perfetto-loadable trace file; returns the span-event count."""
    document = to_trace_json(recorders, accountants)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=1)
        handle.write("\n")
    return sum(1 for event in document["traceEvents"] if event["ph"] == "X")
