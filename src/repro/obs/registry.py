"""Hierarchical metric registry.

One :class:`MetricRegistry` lives on every :class:`~repro.core.kernel.Simulator`
(lazily, via ``sim.metrics``).  Components create their statistics *through*
the registry instead of instantiating bare
:mod:`repro.core.statistics` objects, so every metric in a run is reachable
by dotted path — ``central.request.utilization``, ``lmi.served``,
``cluster0.ip0.latency.p95`` — without knowing which components were built.

The registry stores the *same* primitive objects the models always used
(:class:`~repro.core.statistics.Counter`,
:class:`~repro.core.statistics.Gauge`,
:class:`~repro.core.statistics.LatencySummary`,
:class:`~repro.core.statistics.TimeWeightedStates`, ...), so registering a
metric changes nothing about its update cost: the hot paths still bump a
plain attribute on a plain object.  Observability is a *view*, not a tax.

Naming scheme (see ``docs/OBSERVABILITY.md``):

* ``<fabric>.<channel>.*`` — channel busy-time accounting
* ``<fabric>.<port>.*`` — per-port counters and latency populations
* ``<component>.<stat>`` — component-private counters (``lmi.merges``, ...)

Paths are unique per simulator.  When two components would claim the same
path (e.g. two ad-hoc test fabrics both called ``node``), later claims get a
deterministic ``~2``, ``~3`` ... suffix rather than raising, so exploratory
scripts never have to invent names just to satisfy the registry.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Iterator, Optional

from ..core.fifo import Fifo
from ..core.statistics import (
    ChannelUtilization,
    Counter,
    Gauge,
    LatencySummary,
    PhasedStates,
    TimeWeightedStates,
)


class FifoProbe:
    """Uniform FIFO occupancy *and* waiting-time statistics.

    The paper's Fig. 6 quantities — how full the LMI input FIFO sits and how
    long requests wait in it — used to require bespoke callbacks per
    experiment.  A probe watches any :class:`~repro.core.fifo.Fifo` and
    derives both uniformly: occupancy comes from the FIFO's own
    time-weighted accounting, waiting times from pairing each level increase
    with the next decrease (FIFO discipline; with out-of-order ``remove()``
    extraction, as in the LMI optimisation engine, the reported waits are
    the FIFO-order approximation, which bounds the true in-order wait).
    """

    def __init__(self, fifo: Fifo, path: str) -> None:
        self.fifo = fifo
        self.path = path
        self.wait = LatencySummary(f"{path}.wait")
        self._entries: Deque[int] = deque()
        fifo.watch(self._on_level)

    def _on_level(self, time_ps: int, old: int, new: int) -> None:
        if new > old:
            for _ in range(new - old):
                self._entries.append(time_ps)
        else:
            for _ in range(old - new):
                if self._entries:
                    self.wait.add(time_ps - self._entries.popleft())


class MetricRegistry:
    """Path-addressed store of every metric a simulation collects."""

    def __init__(self, sim) -> None:
        self.sim = sim
        self._metrics: Dict[str, object] = {}

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def register(self, path: str, metric):
        """Index an existing metric object under ``path`` (returned as-is).

        A taken path gets a ``~2``/``~3``... suffix; see the module
        docstring for why collisions are disambiguated rather than fatal.
        """
        if not path:
            raise ValueError("metric path must be non-empty")
        final = path
        bump = 2
        while final in self._metrics:
            final = f"{path}~{bump}"
            bump += 1
        self._metrics[final] = metric
        return metric

    def counter(self, path: str) -> Counter:
        """Create and register a monotonically increasing counter."""
        return self.register(path, Counter(path))

    def gauge(self, path: str, initial: int = 0) -> Gauge:
        """Create and register an instantaneous value with watermarks."""
        return self.register(path, Gauge(path, initial=initial))

    def histogram(self, path: str) -> LatencySummary:
        """Create and register a latency/duration population."""
        return self.register(path, LatencySummary(path))

    def states(self, path: str, initial: str = "idle") -> TimeWeightedStates:
        """Create and register a time-weighted state tracker."""
        return self.register(path, TimeWeightedStates(self.sim, initial=initial))

    def phased_states(self, path: str, initial: str = "idle",
                      first_phase: str = "phase0") -> PhasedStates:
        """Create and register a per-phase state tracker (Fig. 6 shape)."""
        return self.register(
            path, PhasedStates(self.sim, initial=initial,
                               first_phase=first_phase))

    def channel(self, path: str) -> ChannelUtilization:
        """Create and register a bus-channel busy-time monitor."""
        return self.register(path, ChannelUtilization(self.sim, name=path))

    def fifo(self, path: str, fifo: Fifo) -> FifoProbe:
        """Attach a :class:`FifoProbe` to ``fifo`` and register it.

        Note this installs a level watcher on the FIFO — unlike the other
        factories it is *not* free, so callers gate it on an active
        observability capture (``sim._spans is not None``).
        """
        return self.register(path, FifoProbe(fifo, path))

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def get(self, path: str):
        """The metric registered at ``path`` (KeyError when absent)."""
        return self._metrics[path]

    def __contains__(self, path: str) -> bool:
        return path in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    def paths(self) -> Iterator[str]:
        """All registered paths, in registration order."""
        return iter(self._metrics)

    def subtree(self, prefix: str) -> Dict[str, object]:
        """Every metric whose path equals ``prefix`` or starts ``prefix.``."""
        dotted = prefix + "."
        return {path: metric for path, metric in self._metrics.items()
                if path == prefix or path.startswith(dotted)}

    # ------------------------------------------------------------------
    # flattening
    # ------------------------------------------------------------------
    def snapshot(self, until_ps: Optional[int] = None) -> Dict[str, float]:
        """Flatten every metric into ``path -> number`` rows.

        Composite metrics expand into dotted sub-rows
        (``....latency.mean``, ``....states.frac.fifo_full``), so the result
        is directly dumpable as CSV/JSON and diffable between runs.
        """
        rows: Dict[str, float] = {}
        for path, metric in self._metrics.items():
            self._flatten(rows, path, metric, until_ps)
        return rows

    def _flatten(self, rows: Dict[str, float], path: str, metric,
                 until_ps: Optional[int]) -> None:
        if isinstance(metric, Counter):
            rows[path] = float(metric.value)
        elif isinstance(metric, Gauge):
            rows[path] = float(metric.value)
            rows[f"{path}.high_water"] = float(metric.high_water)
            rows[f"{path}.low_water"] = float(metric.low_water)
        elif isinstance(metric, LatencySummary):
            rows[f"{path}.count"] = float(metric.count)
            if metric.count:
                rows[f"{path}.mean"] = float(metric.mean)
                rows[f"{path}.min"] = float(metric.minimum)
                rows[f"{path}.max"] = float(metric.maximum)
                rows[f"{path}.p95"] = float(metric.percentile(95))
        elif isinstance(metric, ChannelUtilization):
            rows[f"{path}.utilization"] = metric.utilization(until_ps)
            rows[f"{path}.busy_ps"] = float(metric.busy_ps)
            rows[f"{path}.transfers"] = float(metric.transfers)
        elif isinstance(metric, PhasedStates):
            for phase, fractions in metric.breakdowns().items():
                for state, fraction in sorted(fractions.items()):
                    rows[f"{path}.{phase}.frac.{state}"] = fraction
        elif isinstance(metric, TimeWeightedStates):
            for state, fraction in sorted(metric.breakdown(until_ps).items()):
                rows[f"{path}.frac.{state}"] = fraction
        elif isinstance(metric, FifoProbe):
            fifo = metric.fifo
            rows[f"{path}.level"] = float(fifo.level)
            rows[f"{path}.capacity"] = float(fifo.capacity)
            rows[f"{path}.high_water"] = float(fifo.high_water)
            rows[f"{path}.mean_occupancy"] = fifo.mean_occupancy(until_ps)
            self._flatten(rows, f"{path}.wait", metric.wait, until_ps)
        elif hasattr(metric, "rows") and callable(metric.rows):
            # Self-flattening composites (the energy accountant): the
            # metric decides its own row names, already fully qualified.
            rows.update(metric.rows())
        else:
            value = getattr(metric, "value", None)
            if isinstance(value, (int, float)):
                rows[path] = float(value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<MetricRegistry {len(self._metrics)} metrics>"
