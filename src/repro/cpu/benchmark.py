"""Synthetic benchmark generator for the ST220 model.

"The DSP core was then modelled at the level of its instruction set, and
runs a synthetic benchmark tuned to generate a significant amount of cache
misses interfering with the traffic patterns of the other cores."
(Section 3)

A benchmark is a reproducible stream of *instruction blocks*; each block is
``compute_cycles`` of core-private work followed by an optional memory
operation.  The working-set size relative to the cache size is the miss-rate
tuning knob.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, Optional


@dataclass(frozen=True)
class InstructionBlock:
    """A straight-line run of instructions ending in (at most) one memory op."""

    compute_cycles: int
    is_memory_op: bool
    is_load: bool
    data_address: int
    #: Instruction-fetch address of the block (drives the I-cache).
    fetch_address: int


@dataclass(frozen=True)
class BenchmarkConfig:
    """Tuning knobs of the synthetic workload."""

    blocks: int = 2000
    #: Mean non-memory cycles per block (VLIW issue keeps this small).
    compute_cycles: int = 4
    #: Fraction of blocks performing a memory operation.
    memory_fraction: float = 0.6
    #: Of the memory operations, fraction that are loads.
    load_fraction: float = 0.7
    #: Data working set in bytes; >> cache size forces capacity misses.
    working_set: int = 1 << 16
    #: Code footprint in bytes (drives I-cache behaviour).
    code_size: int = 1 << 14
    #: Probability a block jumps to a random code address (kills I-locality).
    jump_probability: float = 0.1
    #: Probability a data access is a re-reference of a recent address.
    data_locality: float = 0.5
    data_base: int = 0x4000_0000
    code_base: int = 0x0800_0000
    seed: int = 42

    def __post_init__(self) -> None:
        if self.blocks < 1:
            raise ValueError("blocks must be >= 1")
        for name in ("memory_fraction", "load_fraction", "jump_probability",
                     "data_locality"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} out of [0, 1]: {value}")
        if self.working_set < 64 or self.code_size < 64:
            raise ValueError("working_set and code_size must be >= 64 bytes")


class SyntheticBenchmark:
    """Deterministic instruction-block stream for the ST220 model."""

    def __init__(self, config: Optional[BenchmarkConfig] = None) -> None:
        self.config = config or BenchmarkConfig()

    def __iter__(self) -> Iterator[InstructionBlock]:
        cfg = self.config
        rng = random.Random(cfg.seed)
        fetch = cfg.code_base
        recent = [cfg.data_base]
        for _block in range(cfg.blocks):
            if rng.random() < cfg.jump_probability:
                fetch = cfg.code_base + rng.randrange(cfg.code_size // 64) * 64
            else:
                fetch = cfg.code_base + (fetch - cfg.code_base + 64) % cfg.code_size
            is_mem = rng.random() < cfg.memory_fraction
            is_load = rng.random() < cfg.load_fraction
            if rng.random() < cfg.data_locality and recent:
                address = rng.choice(recent)
            else:
                address = cfg.data_base + rng.randrange(cfg.working_set // 4) * 4
                recent.append(address)
                if len(recent) > 16:
                    recent.pop(0)
            compute = max(1, round(rng.gauss(cfg.compute_cycles,
                                             cfg.compute_cycles / 3)))
            yield InstructionBlock(
                compute_cycles=compute,
                is_memory_op=is_mem,
                is_load=is_load,
                data_address=address,
                fetch_address=fetch,
            )

    def __len__(self) -> int:
        return self.config.blocks
