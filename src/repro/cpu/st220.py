"""ST220 VLIW DSP core model.

"The ST220 VLIW DSP core (400 MHz, 32 bit, data and instruction caches) acts
as the general purpose processor" (Section 3).  The core is modelled at
instruction-set granularity: a :class:`~repro.cpu.benchmark.SyntheticBenchmark`
stream drives the I- and D-caches, and every miss becomes a bus transaction
(line refill read, plus a posted write-back when a dirty victim is evicted).
The core stalls for the full refill latency — it is the in-order,
blocking-cache client whose misses "interfere with the traffic patterns of
the other cores".

In the reference platform the core sits behind a 32->64-bit, 400->250 MHz
upsize GenConv; the platform builder wires that up — the core itself only
knows its own 32-bit, 400 MHz interface.
"""

from __future__ import annotations

from typing import Optional

from ..core.component import Component
from ..core.events import Event
from ..core.kernel import Simulator
from ..core.statistics import Counter, LatencySummary
from ..interconnect.base import InitiatorPort
from ..interconnect.types import Opcode, Transaction
from .benchmark import SyntheticBenchmark
from .cache import Cache


class St220Core(Component):
    """In-order VLIW core with split I/D caches and a blocking miss path."""

    def __init__(self, sim: Simulator, name: str, port: InitiatorPort,
                 benchmark: SyntheticBenchmark,
                 icache: Optional[Cache] = None,
                 dcache: Optional[Cache] = None,
                 parent: Optional[Component] = None) -> None:
        super().__init__(sim, name, clock=port.fabric.clock, parent=parent)
        self.port = port
        self.benchmark = benchmark
        self.icache = icache or Cache(f"{name}.icache", size_bytes=8192,
                                      line_bytes=64, ways=2)
        self.dcache = dcache or Cache(f"{name}.dcache", size_bytes=8192,
                                      line_bytes=32, ways=4)
        self.blocks_retired = Counter(f"{name}.blocks")
        self.stall_cycles = Counter(f"{name}.stalls")
        self.miss_latency = LatencySummary(f"{name}.miss_latency")
        self.done: Event = sim.event(name=f"{name}.done")
        #: Energy accounting: the caches themselves are sim-less lookup
        #: structures, so the access charges live here at the call sites.
        self._energy = sim._energy
        if self._energy is not None:
            from ..obs.energy import fj_from_pj
            self._e_hit = fj_from_pj(self._energy.config.cache_hit_pj)
            self._e_miss = fj_from_pj(self._energy.config.cache_miss_pj)
        self.process(self._run(), name="core")

    # ------------------------------------------------------------------
    def snapshot_state(self, encoder):
        """Retirement progress + full cache contents (tag arrays digested:
        comparing them bit for bit matters, inlining them does not)."""
        return {
            "blocks_retired": self.blocks_retired.value,
            "stall_cycles": self.stall_cycles.value,
            "icache": self._cache_state(self.icache, encoder),
            "dcache": self._cache_state(self.dcache, encoder),
            "done": self.done.triggered,
        }

    @staticmethod
    def _cache_state(cache: Cache, encoder):
        return {
            "hits": cache.hits.value,
            "misses": cache.misses.value,
            "writebacks": cache.writebacks.value,
            "lines": encoder.digest({
                set_index: [[tag, dirty] for tag, dirty in lines.items()]
                for set_index, lines in cache._lines.items()}),
        }

    # ------------------------------------------------------------------
    def _run(self):
        clk = self.clock
        for block in self.benchmark:
            # Instruction fetch.
            fetch = self.icache.access(block.fetch_address, is_write=False)
            if self._energy is not None:
                self._energy.charge(self.icache.name,
                                    self._e_hit if fetch.hit else self._e_miss,
                                    self.sim.now, self.name)
            if not fetch.hit:
                yield from self._refill(fetch.refill_address,
                                        self.icache.line_bytes, None)
            # Core-private computation.
            yield clk.edges(block.compute_cycles)
            # Data access.
            if block.is_memory_op:
                result = self.dcache.access(block.data_address,
                                            is_write=not block.is_load)
                if self._energy is not None:
                    self._energy.charge(
                        self.dcache.name,
                        self._e_hit if result.hit else self._e_miss,
                        self.sim.now, self.name)
                if not result.hit:
                    yield from self._refill(result.refill_address,
                                            self.dcache.line_bytes,
                                            result.writeback_address)
            self.blocks_retired.add()
        self.done.succeed(self.blocks_retired.value)

    def _refill(self, refill_address: int, line_bytes: int,
                writeback_address: Optional[int]):
        """Service a miss: optional posted write-back, then a blocking
        line-refill read."""
        clk = self.clock
        if writeback_address is not None:
            victim = Transaction(initiator=self.name, opcode=Opcode.WRITE,
                                 address=writeback_address,
                                 beats=line_bytes // 4, beat_bytes=4,
                                 posted=True)
            yield self.port.issue(victim)
        refill = Transaction(initiator=self.name, opcode=Opcode.READ,
                             address=refill_address,
                             beats=line_bytes // 4, beat_bytes=4)
        start = self.sim.now
        yield self.port.issue(refill)
        if not refill.ev_done.triggered:
            yield refill.ev_done
        stalled = self.sim.now - start
        self.stall_cycles.add(int(clk.to_cycles(stalled)))
        self.miss_latency.add(stalled)

    # ------------------------------------------------------------------
    @property
    def cpi_estimate(self) -> float:
        """Rough cycles-per-block including stalls (for reports)."""
        if self.blocks_retired.value == 0:
            return 0.0
        elapsed_cycles = self.clock.to_cycles(self.sim.now)
        return elapsed_cycles / self.blocks_retired.value
