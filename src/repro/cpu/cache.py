"""Set-associative cache model (the ST220's I/D caches).

Purely functional timing-wise: :meth:`Cache.access` classifies an access as
hit or miss and reports the victim line on a dirty eviction; the *core*
model turns misses into bus refill transactions and stall cycles.  LRU
replacement, write-back + write-allocate policy (the interesting case for
bus traffic, since it produces both read refills and posted write-backs).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional

from ..core.statistics import Counter


@dataclass(frozen=True)
class CacheAccess:
    """Outcome of one cache access."""

    hit: bool
    #: Byte address of the line to write back first (dirty victim), if any.
    writeback_address: Optional[int] = None
    #: Byte address of the line to fetch (miss), if any.
    refill_address: Optional[int] = None


class Cache:
    """One level of cache (direct mapped when ``ways == 1``)."""

    def __init__(self, name: str, size_bytes: int, line_bytes: int = 32,
                 ways: int = 4) -> None:
        if line_bytes & (line_bytes - 1) or line_bytes < 4:
            raise ValueError(f"line size must be a power of two >= 4: {line_bytes}")
        if ways < 1:
            raise ValueError("ways must be >= 1")
        if size_bytes % (line_bytes * ways):
            raise ValueError(
                f"size {size_bytes} not divisible by line*ways "
                f"({line_bytes}x{ways})")
        self.name = name
        self.size_bytes = size_bytes
        self.line_bytes = line_bytes
        self.ways = ways
        self.sets = size_bytes // (line_bytes * ways)
        #: Per-set LRU-ordered mapping: tag -> dirty flag.  Most recently
        #: used entries at the end.
        self._lines: Dict[int, OrderedDict] = {s: OrderedDict()
                                               for s in range(self.sets)}
        self.hits = Counter(f"{name}.hits")
        self.misses = Counter(f"{name}.misses")
        self.writebacks = Counter(f"{name}.writebacks")

    # ------------------------------------------------------------------
    def _decompose(self, address: int):
        line = address // self.line_bytes
        return line % self.sets, line // self.sets

    def line_address(self, address: int) -> int:
        """Start address of the line containing ``address``."""
        return (address // self.line_bytes) * self.line_bytes

    def access(self, address: int, is_write: bool = False) -> CacheAccess:
        """Look up ``address``; update LRU/dirty state; report what the
        core must do on the bus (write-back and/or refill)."""
        set_index, tag = self._decompose(address)
        lines = self._lines[set_index]
        if tag in lines:
            self.hits.add()
            lines.move_to_end(tag)
            if is_write:
                lines[tag] = True
            return CacheAccess(hit=True)
        self.misses.add()
        writeback = None
        if len(lines) >= self.ways:
            victim_tag, dirty = next(iter(lines.items()))
            del lines[victim_tag]
            if dirty:
                self.writebacks.add()
                victim_line = victim_tag * self.sets + set_index
                writeback = victim_line * self.line_bytes
        lines[tag] = is_write
        return CacheAccess(hit=False, writeback_address=writeback,
                           refill_address=self.line_address(address))

    def flush(self) -> list:
        """Invalidate everything; return addresses of dirty lines."""
        dirty_addresses = []
        for set_index, lines in self._lines.items():
            for tag, dirty in lines.items():
                if dirty:
                    line = tag * self.sets + set_index
                    dirty_addresses.append(line * self.line_bytes)
            lines.clear()
        return dirty_addresses

    @property
    def miss_rate(self) -> float:
        total = self.hits.value + self.misses.value
        return self.misses.value / total if total else 0.0
