"""CPU models: the ST220 VLIW DSP, its caches and synthetic benchmarks."""

from .benchmark import BenchmarkConfig, InstructionBlock, SyntheticBenchmark
from .cache import Cache, CacheAccess
from .st220 import St220Core

__all__ = [
    "BenchmarkConfig",
    "Cache",
    "CacheAccess",
    "InstructionBlock",
    "St220Core",
    "SyntheticBenchmark",
]
