"""Front rendering and export, routed through the repro.obs exporters.

A Pareto front is just another metric set: each member's objective
values flatten into ``front.<rank>.<objective>`` rows, so the JSON and
CSV shapes (and their sorted-row diffability) are exactly the ones every
other ``--json``/``--csv`` surface in the CLI emits.  The JSON header's
``dse`` block carries the search provenance — mode, space size,
simulation spend, per-member assignments and the verifier's verdict —
so an exported front is a self-contained experiment record.
"""

from __future__ import annotations

from typing import Any, Dict, List

from ..obs.export import metrics_csv, metrics_json
from .optimizer import DseOutcome


def front_rows(outcome: DseOutcome) -> List[Dict[str, Any]]:
    """One plain dict per front member, in the front's stable order."""
    rows = []
    for rank, member in enumerate(outcome.front):
        rows.append({
            "rank": rank,
            "label": member.label,
            "assignment": dict(member.assignment),
            "objectives": dict(member.objectives),
            "cached": member.cached,
        })
    return rows


def _flat(outcome: DseOutcome) -> Dict[str, float]:
    rows: Dict[str, float] = {}
    for rank, member in enumerate(outcome.front):
        for name, value in member.objectives.items():
            rows[f"front.{rank}.{name}"] = value
    return rows


def _provenance(outcome: DseOutcome) -> Dict[str, Any]:
    return {
        "mode": outcome.mode,
        "objectives": list(outcome.objectives),
        "space_size": outcome.space_size,
        "generations": outcome.generations,
        "evaluated": len(outcome.evaluated),
        "pruned": len(outcome.pruned),
        "simulations": outcome.simulations,
        "verified": not outcome.violations,
        "violations": list(outcome.violations),
        "front": front_rows(outcome),
    }


def front_json(outcome: DseOutcome) -> str:
    """The full exploration record as a JSON document."""
    return metrics_json(_flat(outcome), experiment="dse",
                        extra={"dse": _provenance(outcome)})


def front_csv(outcome: DseOutcome) -> str:
    """``metric,value`` CSV of the front's objective values."""
    return metrics_csv(_flat(outcome))


def front_table(outcome: DseOutcome) -> str:
    """Aligned terminal table: one line per front member."""
    if not outcome.front:
        return "(empty front)"
    headers = ["#", "configuration"] + list(outcome.objectives)
    rows = [headers]
    for rank, member in enumerate(outcome.front):
        rows.append([str(rank), member.label]
                    + [f"{member.objectives[name]:.6g}"
                       for name in outcome.objectives])
    widths = [max(len(row[col]) for row in rows)
              for col in range(len(headers))]
    lines = []
    for index, row in enumerate(rows):
        lines.append("  ".join(cell.ljust(width)
                               for cell, width in zip(row, widths)).rstrip())
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


__all__ = ["front_csv", "front_json", "front_rows", "front_table"]
