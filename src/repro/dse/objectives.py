"""The objective registry: run results -> canonical minimisation vectors.

Every optimisation axis the explorer can trade off lives here, with three
facts per objective: how to extract it from an evaluated design point,
its unit (for reports), and the loosely-timed screening drift bound the
pruning rule may assume (the docs/FAST_SIM.md contract, re-exported from
:mod:`repro.check.lt_accuracy` so the two can never diverge).

Vectors are canonicalised to *non-negative minimisation*: utilisation —
which the designer wants high — enters as ``1 - mean utilisation`` (the
idle fraction), so every component is minimised and stays ``>= 0``,
which the relative error bars of :func:`repro.dse.pareto.prune_screened`
require.  The wire-cost objective is computed from the protocol
registry's signal tables without simulating, so its drift bound is zero:
LT and CA evaluations agree on it exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

from ..analysis.metrics import RunResult
from ..check.lt_accuracy import (
    ENERGY_DRIFT,
    EXECUTION_TIME_DRIFT,
    LATENCY_DRIFT,
    UTILIZATION_ABS_DRIFT,
)
from ..platforms.config import PlatformConfig
from .cost import platform_cost


def _idle_fraction(result: RunResult) -> float:
    """1 - mean utilisation, clamped into [0, 1]."""
    if not result.utilization:
        return 1.0
    mean = sum(result.utilization.values()) / len(result.utilization)
    return min(1.0, max(0.0, 1.0 - mean))


@dataclass(frozen=True)
class Objective:
    """One optimisation axis: extraction, unit, screening error bar."""

    name: str
    unit: str
    description: str
    #: ("rel", b): |true - screened| <= b * screened.
    #: ("abs", b): |true - screened| <= b.
    drift: Tuple[str, float]
    extract: Callable[[RunResult, PlatformConfig], float]


#: EDP multiplies energy by execution time, so its relative screening
#: error compounds: (1 + e)(1 + t) - 1.
_EDP_DRIFT = (1 + ENERGY_DRIFT) * (1 + EXECUTION_TIME_DRIFT) - 1

OBJECTIVES: Dict[str, Objective] = {obj.name: obj for obj in (
    Objective(
        name="latency",
        unit="ps",
        description="mean end-to-end transaction latency",
        drift=("rel", LATENCY_DRIFT),
        extract=lambda result, config: result.mean_latency_ps,
    ),
    Objective(
        name="execution_time",
        unit="ps",
        description="workload makespan",
        drift=("rel", EXECUTION_TIME_DRIFT),
        extract=lambda result, config: float(result.execution_time_ps),
    ),
    Objective(
        name="utilization",
        unit="idle fraction",
        description="1 - mean fabric utilisation (minimised, so high "
                    "utilisation wins)",
        drift=("abs", UTILIZATION_ABS_DRIFT),
        extract=lambda result, config: _idle_fraction(result),
    ),
    Objective(
        name="energy",
        unit="pJ",
        description="total transaction energy (needs energy.enabled)",
        drift=("rel", ENERGY_DRIFT),
        extract=lambda result, config: result.energy_total_pj,
    ),
    Objective(
        name="edp",
        unit="pJ*ns",
        description="energy-delay product (needs energy.enabled)",
        drift=("rel", _EDP_DRIFT),
        extract=lambda result, config: result.energy_delay_product,
    ),
    Objective(
        name="cost",
        unit="wire bits",
        description="interconnect wire count + FIFO storage, from the "
                    "protocol registry signal tables (simulation-free)",
        drift=("rel", 0.0),
        extract=lambda result, config: float(platform_cost(config)),
    ),
)}

#: What `repro dse` optimises when the spec does not say: the paper's
#: latency/throughput story plus the crossbar cost it buys.
DEFAULT_OBJECTIVES: Tuple[str, ...] = ("latency", "utilization", "cost")


def resolve_objectives(names: Sequence[str]) -> List[Objective]:
    """Map objective names to registry entries, rejecting unknowns."""
    if not names:
        raise ValueError("at least one objective is required")
    out = []
    seen = set()
    for name in names:
        objective = OBJECTIVES.get(str(name))
        if objective is None:
            raise ValueError(f"unknown objective {name!r}; registered: "
                             f"{sorted(OBJECTIVES)}")
        if objective.name in seen:
            raise ValueError(f"objective {name!r} listed twice")
        seen.add(objective.name)
        out.append(objective)
    return out


def drift_bounds(objectives: Sequence[Objective],
                 margin: float = 1.0) -> List[Tuple[str, float]]:
    """Per-objective ``(kind, bound)`` error bars, scaled by a safety
    margin, in the shape :func:`repro.dse.pareto.prune_screened` takes."""
    if margin < 1.0:
        raise ValueError("safety margin must be >= 1 (shrinking the "
                         "documented drift bound is unsound)")
    return [(obj.drift[0], obj.drift[1] * margin) for obj in objectives]


__all__ = [
    "DEFAULT_OBJECTIVES",
    "OBJECTIVES",
    "Objective",
    "drift_bounds",
    "resolve_objectives",
]
