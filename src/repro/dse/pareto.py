"""The search core: dominance, Pareto fronts, archives, sound pruning.

Search code is notoriously easy to get subtly wrong — dominated points
surviving on the "front", tie-breaking that differs run to run, pruning
that silently discards optima.  This module therefore keeps the core
*pure*: every function operates on plain objective vectors (tuples of
non-negative floats, canonicalised so that smaller is always better) and
is deterministic by construction.  ``tests/test_dse_properties.py``
checks the invariants with hypothesis-generated inputs, independently of
any particular optimizer run:

* no front member is dominated by any evaluated point;
* every evaluated point off the front is strictly dominated by a member;
* fronts are insertion-order independent and idempotent;
* the incremental :class:`ParetoArchive` agrees with the batch
  :func:`pareto_front` for every insertion order;
* :func:`prune_screened` never prunes a true-front member while the
  screening error respects its per-objective drift bound.

The pruning rule is the branch-and-bound half of the optimizer.  A cheap
screening evaluation (loosely-timed simulation, docs/FAST_SIM.md) gives
an approximate vector ``s`` for each candidate whose true cycle-accurate
vector ``t`` satisfies, per component, either ``|t - s| <= d * s``
(relative drift ``d``) or ``|t - s| <= d`` (absolute drift).  Candidate
``c`` may then be discarded without ever simulating it accurately when
some other candidate ``o`` screens *strictly* better component-wise even
after widening both error bars::

    inflate(s_o)[i] < deflate(s_c)[i]   for every objective i

because then ``t_o <= inflate(s_o) < deflate(s_c) <= t_c`` holds in
every component, i.e. ``o`` truly dominates ``c`` and ``c`` cannot sit
on the cycle-accurate front.  With zero drift the rule degrades to
"strictly worse in every objective", which is still sound and still
prunes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

#: A canonical objective vector: finite, non-negative, minimised.
Vector = Tuple[float, ...]


def check_vector(vector: Sequence[float]) -> Vector:
    """Canonicalise and validate one objective vector."""
    out = tuple(float(v) for v in vector)
    for value in out:
        if not math.isfinite(value) or value < 0:
            raise ValueError(
                f"objective vectors must be finite and non-negative "
                f"(got {out})")
    return out


def dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """Pareto dominance: ``a`` is no worse everywhere and better somewhere.

    Vectors are minimised component-wise; equal vectors do not dominate
    each other.
    """
    if len(a) != len(b):
        raise ValueError(f"dimension mismatch: {len(a)} vs {len(b)}")
    better = False
    for x, y in zip(a, b):
        if x > y:
            return False
        if x < y:
            better = True
    return better


@dataclass(frozen=True)
class Point:
    """One evaluated design point: an identity plus its vector.

    ``key`` must be unique within a population (the candidate label);
    ``payload`` carries whatever the caller wants to get back out of the
    front (configuration documents, provenance) and takes no part in
    comparisons.
    """

    key: str
    vector: Vector
    payload: Any = field(default=None, compare=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "vector", check_vector(self.vector))


def _ordered(points: Iterable[Point]) -> List[Point]:
    """Deterministic processing order: by vector, then key.

    Sorting first makes the front insertion-order independent and gives
    ties (equal vectors under different keys) a stable output order.
    """
    return sorted(points, key=lambda p: (p.vector, p.key))


def pareto_front(points: Iterable[Point]) -> List[Point]:
    """The non-dominated subset, in deterministic ``(vector, key)`` order.

    Equal-vector points are mutually non-dominating: all of them stay on
    the front.  Duplicate keys are rejected — a population is a set of
    distinct designs.
    """
    pts = _ordered(points)
    seen_keys = set()
    for point in pts:
        if point.key in seen_keys:
            raise ValueError(f"duplicate point key {point.key!r}")
        seen_keys.add(point.key)
    front: List[Point] = []
    for candidate in pts:
        if not any(dominates(other.vector, candidate.vector)
                   for other in pts):
            front.append(candidate)
    return front


class ParetoArchive:
    """Incremental non-dominated archive.

    Equivalent to running :func:`pareto_front` over everything ever
    added (a property test asserts exactly that, across insertion
    orders), but maintained point by point so the optimizer can steer
    each generation from the current front.  The archive is *exact* —
    it is never truncated, so no front member can fall out of it.
    """

    def __init__(self, dimensions: Optional[int] = None) -> None:
        self._dimensions = dimensions
        self._members: Dict[str, Point] = {}
        #: Points rejected (or evicted) as dominated, by key.
        self.dominated: Dict[str, Point] = {}

    def __len__(self) -> int:
        return len(self._members)

    def add(self, point: Point) -> bool:
        """Offer a point; returns True when it joins the front.

        A newcomer dominated by a member is recorded in ``dominated``;
        a newcomer that dominates members evicts them.  Re-adding a key
        is rejected: design identities are unique.
        """
        if self._dimensions is None:
            self._dimensions = len(point.vector)
        elif len(point.vector) != self._dimensions:
            raise ValueError(
                f"archive holds {self._dimensions}-dimensional vectors; "
                f"got {len(point.vector)}")
        if point.key in self._members or point.key in self.dominated:
            raise ValueError(f"point {point.key!r} already archived")
        if any(dominates(member.vector, point.vector)
               for member in self._members.values()):
            self.dominated[point.key] = point
            return False
        for key in [k for k, member in self._members.items()
                    if dominates(point.vector, member.vector)]:
            self.dominated[key] = self._members.pop(key)
        self._members[point.key] = point
        return True

    def front(self) -> List[Point]:
        """Current front in deterministic ``(vector, key)`` order."""
        return _ordered(self._members.values())

    def points(self) -> List[Point]:
        """Everything ever archived (front + dominated), ordered."""
        return _ordered(list(self._members.values())
                        + list(self.dominated.values()))


def verify_front(front: Sequence[Point],
                 population: Sequence[Point]) -> List[str]:
    """Independently check a claimed front against its population.

    Deliberately naive (O(n^2), no shared code with the archive): this
    is the checker the CLI and CI trust, so it must not inherit a bug
    from the machinery it audits.  Returns human-readable violations;
    an empty list means the claimed front *is* the non-dominated subset.
    """
    violations: List[str] = []
    by_key = {}
    for point in population:
        if point.key in by_key:
            violations.append(f"population has duplicate key {point.key!r}")
        by_key[point.key] = point
    front_keys = set()
    for member in front:
        if member.key in front_keys:
            violations.append(f"front lists {member.key!r} twice")
        front_keys.add(member.key)
        known = by_key.get(member.key)
        if known is None:
            violations.append(
                f"front member {member.key!r} is not in the population")
            continue
        if known.vector != member.vector:
            violations.append(
                f"front member {member.key!r} vector {member.vector} "
                f"disagrees with the population's {known.vector}")
        for other in population:
            if dominates(other.vector, member.vector):
                violations.append(
                    f"front member {member.key!r} {member.vector} is "
                    f"dominated by {other.key!r} {other.vector}")
    for point in population:
        if point.key in front_keys:
            continue
        if not any(dominates(member.vector, point.vector)
                   for member in front):
            violations.append(
                f"{point.key!r} {point.vector} is non-dominated but "
                f"missing from the front")
    return violations


def _widen(vector: Vector, drifts: Sequence[Tuple[str, float]],
           up: bool) -> Vector:
    """Inflate (``up``) or deflate a screened vector by its error bars."""
    out = []
    for value, (kind, bound) in zip(vector, drifts):
        if kind == "rel":
            out.append(value * (1 + bound) if up
                       else value / (1 + bound))
        elif kind == "abs":
            out.append(value + bound if up else max(0.0, value - bound))
        else:
            raise ValueError(f"unknown drift kind {kind!r}")
    return tuple(out)


def prune_screened(points: Sequence[Point],
                   drifts: Sequence[Tuple[str, float]]) -> \
        Tuple[List[Point], List[Point]]:
    """Split screened points into (survivors, pruned) soundly.

    ``drifts`` gives one ``("rel"|"abs", bound)`` error bar per
    objective — the screening evaluation's worst-case deviation from the
    accurate one (scaled by the optimizer's safety margin).  A point is
    pruned only when some other point's *inflated* screen vector is
    strictly below its own *deflated* one in every component, which by
    the bound argument in the module docstring means the other point
    accurately dominates it.  Survivors keep their deterministic order.
    """
    pts = _ordered(points)
    for point in pts:
        if len(point.vector) != len(drifts):
            raise ValueError(
                f"point {point.key!r} has {len(point.vector)} objectives; "
                f"{len(drifts)} drift bounds given")
    inflated = {p.key: _widen(p.vector, drifts, up=True) for p in pts}
    deflated = {p.key: _widen(p.vector, drifts, up=False) for p in pts}
    survivors: List[Point] = []
    pruned: List[Point] = []
    for candidate in pts:
        ceiling = deflated[candidate.key]
        doomed = any(
            other.key != candidate.key
            and all(lo < hi for lo, hi in zip(inflated[other.key], ceiling))
            for other in pts)
        (pruned if doomed else survivors).append(candidate)
    return survivors, pruned


__all__ = [
    "ParetoArchive",
    "Point",
    "Vector",
    "check_vector",
    "dominates",
    "pareto_front",
    "prune_screened",
    "verify_front",
]
