"""Automated design-space exploration over crossbar topologies.

The platform model exists to answer design questions: which interconnect
topology, protocol, arbitration style and buffering meet an application's
traffic demands at the lowest cost.  Following the application-specific
STBus crossbar-generation flow of Murali & De Micheli (DATE 2005, see
PAPERS.md), this package closes that loop: it takes an IPTG traffic
specification plus a declarative search-space description and *searches*
the configuration space instead of sweeping it exhaustively.

Layout:

:mod:`repro.dse.pareto`
    The property-tested search core — dominance, deterministic Pareto
    fronts, an incremental archive, the bounded-drift pruning rule and an
    independent front verifier (``tests/test_dse_properties.py``).
:mod:`repro.dse.space`
    Declarative search spaces: named axes (topology, protocol,
    arbitration, FIFO depth, LMI lookahead) plus generic dotted-path
    axes over the platform document; candidates are index tuples.
:mod:`repro.dse.objectives`
    The objective registry mapping run results / configurations onto
    canonical minimisation vectors, each with its LT screening drift
    bound from the docs/FAST_SIM.md contract.
:mod:`repro.dse.cost`
    The wire-count/area cost model derived from the protocol registry's
    signal tables — no simulation required.
:mod:`repro.dse.optimizer`
    The seeded evolutionary / branch-and-bound hybrid that drives
    :func:`repro.sweep.sweep`, with loosely-timed candidate screening
    and cycle-accurate re-validation of front members.
:mod:`repro.dse.report`
    Front rendering and JSON/CSV export through the
    :mod:`repro.obs` exporters.

Entry points: ``repro dse <spec.json>`` on the CLI,
:func:`repro.dse.explore` from Python.  The schema, the optimizer's
guarantees and a worked example live in docs/DSE.md.
"""

from .cost import platform_cost, wire_cost
from .objectives import OBJECTIVES, Objective, resolve_objectives
from .optimizer import (
    DseOutcome,
    EvaluatedPoint,
    OptimizerOptions,
    explore,
    optimize,
)
from .pareto import (
    ParetoArchive,
    Point,
    dominates,
    pareto_front,
    prune_screened,
    verify_front,
)
from .report import front_csv, front_json, front_rows, front_table
from .space import Axis, DseSpec, SearchSpace, load_dse, parse_dse

__all__ = [
    "OBJECTIVES",
    "Axis",
    "DseOutcome",
    "DseSpec",
    "EvaluatedPoint",
    "Objective",
    "OptimizerOptions",
    "ParetoArchive",
    "Point",
    "SearchSpace",
    "dominates",
    "explore",
    "front_csv",
    "front_json",
    "front_rows",
    "front_table",
    "load_dse",
    "optimize",
    "parse_dse",
    "pareto_front",
    "platform_cost",
    "prune_screened",
    "resolve_objectives",
    "verify_front",
    "wire_cost",
]
