"""The seeded evolutionary / branch-and-bound hybrid search driver.

Two regimes, one contract:

Exhaustive
    Spaces of at most ``exhaustive_limit`` raw assignments are simply
    enumerated and every valid candidate evaluated cycle-accurately.
    The returned front is then *exact* by construction — this is the
    regime the differential test pins against an independent grid
    search.

Evolutionary
    Larger spaces run a (mu + lambda)-style loop seeded from
    ``random.Random(options.seed)``: an initial random population, then
    per generation a brood bred from the current Pareto archive
    (crossover between front members, mutation, plus random immigrants),
    with every candidate evaluated at most once.  When screening is on,
    each brood is first evaluated in loosely-timed mode and
    :func:`repro.dse.pareto.prune_screened` discards candidates whose
    screened vectors prove them dominated under the docs/FAST_SIM.md
    drift bounds (scaled by ``options.margin``) — those never get a
    cycle-accurate run.  Survivors are re-validated cycle-accurately and
    only those vectors enter the archive, so LT inaccuracy can cost
    simulations, never corrupt the front.

Determinism: all randomness flows from the seed, candidates are handed
to :func:`repro.sweep.sweep` in sorted order and its outcomes come back
in input order regardless of ``jobs``, so the front is a pure function
of (spec, options) — byte-identical across reruns, worker counts and
cache states.  Every outcome is re-checked by the independent
:func:`repro.dse.pareto.verify_front` before being returned; a non-empty
violation list is a bug in the optimizer, and :func:`explore` refuses to
return one silently.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from pathlib import Path
from random import Random
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..analysis.metrics import RunResult
from ..platforms.config import PlatformConfig
from ..platforms.loader import ConfigError
from ..sweep import sweep
from .objectives import Objective, drift_bounds, resolve_objectives
from .pareto import (
    ParetoArchive,
    Point,
    Vector,
    check_vector,
    prune_screened,
    verify_front,
)
from .space import Candidate, DseSpec, SearchSpace, load_dse


@dataclass(frozen=True)
class OptimizerOptions:
    """Search knobs, all with spec-file spellings (docs/DSE.md)."""

    seed: int = 1
    population: int = 8
    generations: int = 6
    #: Raw-space sizes up to this are enumerated exhaustively (exact
    #: front); above it the evolutionary loop runs.
    exhaustive_limit: int = 64
    #: "auto" screens only in the evolutionary regime; "lt" always
    #: screens; "off" never does.
    screen: str = "auto"
    #: Safety factor applied to the documented LT drift bounds before
    #: pruning; must be >= 1.
    margin: float = 2.0
    jobs: Optional[int] = None
    cache: Union[bool, str, None] = None

    def __post_init__(self) -> None:
        if self.population < 2:
            raise ConfigError("optimizer.population must be >= 2")
        if self.generations < 1:
            raise ConfigError("optimizer.generations must be >= 1")
        if self.exhaustive_limit < 1:
            raise ConfigError("optimizer.exhaustive_limit must be >= 1")
        if self.screen not in ("auto", "lt", "off"):
            raise ConfigError(f"optimizer.screen: unknown mode "
                              f"{self.screen!r} (auto | lt | off)")
        if self.margin < 1.0:
            raise ConfigError("optimizer.margin must be >= 1.0 (shrinking "
                              "the drift bounds is unsound)")

    @classmethod
    def from_mapping(cls, mapping: Mapping[str, Any],
                     **overrides: Any) -> "OptimizerOptions":
        """Build options from a spec's ``optimizer`` object."""
        merged = dict(mapping)
        merged.update({k: v for k, v in overrides.items() if v is not None})
        unknown = set(merged) - {f for f in cls.__dataclass_fields__}
        if unknown:
            raise ConfigError(
                f"dse.optimizer: unknown keys {sorted(unknown)}; allowed: "
                f"{sorted(cls.__dataclass_fields__)}")
        return cls(**merged)


@dataclass(frozen=True)
class EvaluatedPoint:
    """One explored design: identity, assignment, objectives, provenance."""

    label: str
    candidate: Candidate
    assignment: Dict[str, Any] = field(hash=False, compare=False)
    vector: Vector
    #: Objective name -> value, same numbers as ``vector``.
    objectives: Dict[str, float] = field(hash=False, compare=False)
    #: "ca" for cycle-accurate vectors, "lt" for screened-only points.
    fidelity: str = "ca"
    cached: bool = False
    sim_time_ps: int = 0

    def as_point(self) -> Point:
        return Point(key=self.label, vector=self.vector, payload=self)


@dataclass(frozen=True)
class DseOutcome:
    """Everything an exploration produced.

    ``front`` and ``evaluated`` hold cycle-accurate points only;
    ``pruned`` holds the loosely-timed screened points the bound proved
    dominated (never CA-simulated).  ``violations`` is the independent
    verifier's report over (front, evaluated) — empty on every healthy
    run.
    """

    mode: str  # "exhaustive" | "evolutionary"
    objectives: Tuple[str, ...]
    front: Tuple[EvaluatedPoint, ...]
    evaluated: Tuple[EvaluatedPoint, ...]
    pruned: Tuple[EvaluatedPoint, ...]
    generations: int
    space_size: int
    violations: Tuple[str, ...]

    @property
    def simulations(self) -> int:
        """Simulator runs spent (CA evaluations + LT screens)."""
        return len(self.evaluated) + len(self.pruned)


def _evaluate(space: SearchSpace, candidates: Sequence[Candidate],
              objectives: Sequence[Objective], options: OptimizerOptions,
              fidelity: str) -> List[EvaluatedPoint]:
    """Run a batch through the sweep engine at one fidelity.

    Candidates are simulated in sorted order (determinism does not then
    depend on how the caller assembled the batch) and the sweep engine
    guarantees input-order outcomes for any ``jobs``.
    """
    ordered = sorted(candidates)
    configs = []
    for candidate in ordered:
        config = space.config(candidate)
        if fidelity == "lt":
            config = replace(config, resolution="lt")
        configs.append(config)
    outcomes = sweep(configs, max_ps=space.max_ps, jobs=options.jobs,
                     cache=options.cache)
    points = []
    for candidate, outcome in zip(ordered, outcomes):
        values = _vector(outcome.result, outcome.config, objectives)
        points.append(EvaluatedPoint(
            label=space.label(candidate),
            candidate=candidate,
            assignment=space.assignment(candidate),
            vector=check_vector(values),
            objectives={obj.name: value
                        for obj, value in zip(objectives, values)},
            fidelity=fidelity,
            cached=outcome.cached,
            sim_time_ps=outcome.sim_time_ps,
        ))
    return points


def _vector(result: RunResult, config: PlatformConfig,
            objectives: Sequence[Objective]) -> Tuple[float, ...]:
    return tuple(obj.extract(result, config) for obj in objectives)


def _initial_population(space: SearchSpace, rng: Random,
                        count: int) -> List[Candidate]:
    chosen: List[Candidate] = []
    seen = set()
    for _ in range(count * 8):
        if len(chosen) >= count:
            break
        candidate = space.random_candidate(rng)
        if candidate not in seen:
            seen.add(candidate)
            chosen.append(candidate)
    return chosen


def _breed(space: SearchSpace, rng: Random, front: Sequence[EvaluatedPoint],
           seen: set, count: int) -> List[Candidate]:
    """Propose ``count`` unseen candidates from the current front."""
    parents = [p.candidate for p in front]
    brood: List[Candidate] = []
    produced = set()
    for _ in range(count * 10):
        if len(brood) >= count:
            break
        roll = rng.random()
        if len(parents) >= 2 and roll < 0.4:
            left, right = rng.sample(parents, 2)
            child = space.crossover(left, right, rng)
        elif parents and roll < 0.8:
            child = space.mutate(rng.choice(parents), rng)
        else:
            child = space.random_candidate(rng)
        if child not in seen and child not in produced:
            produced.add(child)
            brood.append(child)
    return brood


def optimize(spec: DseSpec,
             options: Optional[OptimizerOptions] = None) -> DseOutcome:
    """Search a spec's space and return its verified Pareto front."""
    if options is None:
        options = OptimizerOptions.from_mapping(spec.optimizer)
    space = spec.space
    objectives = resolve_objectives(spec.objectives)
    size = space.size()
    exhaustive = size <= options.exhaustive_limit
    screening = (options.screen == "lt"
                 or (options.screen == "auto" and not exhaustive))
    bounds = drift_bounds(objectives, options.margin)
    rng = Random(options.seed)
    archive = ParetoArchive(dimensions=len(objectives))
    evaluated: Dict[Candidate, EvaluatedPoint] = {}
    pruned_points: List[EvaluatedPoint] = []
    seen: set = set()

    def run_round(batch: Sequence[Candidate]) -> None:
        batch = [c for c in batch if c not in seen]
        seen.update(batch)
        if not batch:
            return
        if screening:
            screened = _evaluate(space, batch, objectives, options, "lt")
            survivors, pruned = prune_screened(
                [p.as_point() for p in screened], bounds)
            pruned_points.extend(p.payload for p in pruned)
            batch = sorted(p.payload.candidate for p in survivors)
            if not batch:
                return
        for point in _evaluate(space, batch, objectives, options, "ca"):
            evaluated[point.candidate] = point
            archive.add(point.as_point())

    generations = 0
    if exhaustive:
        run_round(list(space.candidates()))
        mode = "exhaustive"
    else:
        run_round(_initial_population(space, rng, options.population))
        for generations in range(1, options.generations + 1):
            front_points = [p.payload for p in archive.front()]
            brood = _breed(space, rng, front_points, seen,
                           options.population)
            if not brood:
                break
            run_round(brood)
        mode = "evolutionary"

    front = tuple(p.payload for p in archive.front())
    population = [p.as_point() for p in evaluated.values()]
    violations = tuple(verify_front([p.as_point() for p in front],
                                    population))
    return DseOutcome(
        mode=mode,
        objectives=tuple(obj.name for obj in objectives),
        front=front,
        evaluated=tuple(sorted(evaluated.values(),
                               key=lambda p: (p.vector, p.label))),
        pruned=tuple(sorted(pruned_points,
                            key=lambda p: (p.vector, p.label))),
        generations=generations,
        space_size=size,
        violations=violations,
    )


def explore(spec: Union[DseSpec, str, Path],
            **overrides: Any) -> DseOutcome:
    """Load (if needed), search, verify; the Python entry point.

    Keyword overrides are :class:`OptimizerOptions` fields and win over
    the spec file's ``optimizer`` object (``None`` values are ignored,
    so CLI plumbing can pass absent flags straight through).  Raises
    ``RuntimeError`` if the independent verifier rejects the front —
    a front that fails its own audit must never look like success.
    """
    if not isinstance(spec, DseSpec):
        spec = load_dse(spec)
    options = OptimizerOptions.from_mapping(spec.optimizer, **overrides)
    outcome = optimize(spec, options)
    if outcome.violations:
        raise RuntimeError(
            "dse: front failed independent verification:\n  "
            + "\n  ".join(outcome.violations))
    return outcome


__all__ = [
    "DseOutcome",
    "EvaluatedPoint",
    "OptimizerOptions",
    "explore",
    "optimize",
]
