"""Declarative search spaces over platform configurations.

A search space is a base platform document plus named *axes*.  Each axis
is a list of values; a candidate is one index per axis (a plain tuple —
hashable, mutable by the optimizer's operators, and stable across
processes).  Axes come in two flavours:

Named axes
    ``topology`` (``shared`` | ``partial`` | ``crossbar`` — the
    application-specific crossbar question of Murali & De Micheli),
    ``protocol`` (any registered platform protocol),
    ``arbitration`` (``message`` | ``packet`` granularity),
    ``fifo_depth`` (the memory-side FIFO depths: LMI input/output FIFOs
    on LMI platforms, target request/response slots on on-chip ones) and
    ``lookahead`` (the LMI optimisation-engine window).  Each expands to
    the right set of platform-document overrides.

Dotted-path axes
    Any other axis name is a dotted path into the platform document
    (``"memory.wait_states"``, ``"traffic_scale"``), applied with the
    same semantics as the sweep engine's ``grid``.

Some assignments are contradictory rather than merely bad — a full
crossbar central node exists only for STBus, and the LMI lookahead is
meaningless without an LMI.  :meth:`SearchSpace.conflict` names the
contradiction and the space simply never yields such candidates, so the
optimizer searches the *valid* region instead of wasting simulations on
configurations that silently alias each other.

The JSON schema (see docs/DSE.md)::

    {
      "base": { ...platform document... },
      "max_us": 2000.0,
      "axes": {
        "topology": ["shared", "partial", "crossbar"],
        "protocol": ["stbus", "ahb"],
        "fifo_depth": [2, 4, 8],
        "memory.wait_states": [1, 4]
      },
      "objectives": ["latency", "cost"],
      "optimizer": {"seed": 1, "population": 8, "generations": 6}
    }
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass, field
from pathlib import Path
from random import Random
from typing import Any, Dict, Iterator, List, Optional, Tuple, Union

from ..interconnect.protocols import platform_protocols
from ..platforms.config import PlatformConfig
from ..platforms.loader import ConfigError, config_from_dict
from ..sweep import DEFAULT_MAX_PS, deep_merge, set_dotted
from .objectives import DEFAULT_OBJECTIVES, resolve_objectives

#: One candidate: a value index per axis, in axis order.
Candidate = Tuple[int, ...]

_TOPOLOGIES = ("shared", "partial", "crossbar")
_ARBITRATIONS = ("message", "packet")

#: Named axes whose overrides depend on the memory kind are applied
#: after every other axis has settled the document.
_LATE_AXES = frozenset({"fifo_depth", "lookahead"})


@dataclass(frozen=True)
class Axis:
    """One search dimension: a name and its candidate values."""

    name: str
    values: Tuple[Any, ...]

    def __post_init__(self) -> None:
        if not self.values:
            raise ConfigError(f"axis {self.name!r}: needs at least one value")
        if len(set(map(repr, self.values))) != len(self.values):
            raise ConfigError(f"axis {self.name!r}: duplicate values")
        checker = _AXIS_CHECKERS.get(self.name)
        if checker is not None:
            for value in self.values:
                problem = checker(value)
                if problem:
                    raise ConfigError(f"axis {self.name!r}: {problem}")


def _check_topology(value: Any) -> Optional[str]:
    if value not in _TOPOLOGIES:
        return f"unknown topology {value!r}; choose from {list(_TOPOLOGIES)}"
    return None


def _check_protocol(value: Any) -> Optional[str]:
    if value not in platform_protocols():
        return (f"unknown protocol {value!r}; registered: "
                f"{sorted(platform_protocols())}")
    return None


def _check_arbitration(value: Any) -> Optional[str]:
    if value not in _ARBITRATIONS:
        return (f"unknown arbitration {value!r}; choose from "
                f"{list(_ARBITRATIONS)}")
    return None


def _check_depth(value: Any) -> Optional[str]:
    if not isinstance(value, int) or isinstance(value, bool) or value < 1:
        return f"depths must be positive integers (got {value!r})"
    return None


_AXIS_CHECKERS = {
    "topology": _check_topology,
    "protocol": _check_protocol,
    "arbitration": _check_arbitration,
    "fifo_depth": _check_depth,
    "lookahead": _check_depth,
}


def _apply_axis(document: Dict[str, Any], name: str, value: Any) -> None:
    """Translate one axis assignment into document overrides."""
    if name == "topology":
        if value == "shared":
            document["topology"] = "collapsed"
            document["central_crossbar"] = False
        elif value == "partial":
            document["topology"] = "distributed"
            document["central_crossbar"] = False
        else:  # crossbar
            document["topology"] = "collapsed"
            document["central_crossbar"] = True
    elif name == "protocol":
        document["protocol"] = value
    elif name == "arbitration":
        document["message_arbitration"] = value == "message"
    elif name == "fifo_depth":
        memory = document.setdefault("memory", {})
        if memory.get("kind", "onchip") == "lmi":
            lmi = memory.setdefault("lmi", {})
            lmi["input_fifo_depth"] = value
            lmi["output_fifo_depth"] = value
        else:
            memory["request_depth"] = value
            memory["response_depth"] = value
    elif name == "lookahead":
        memory = document.setdefault("memory", {})
        memory.setdefault("lmi", {})["lookahead_depth"] = value
    else:
        set_dotted(document, name, value)


@dataclass(frozen=True)
class SearchSpace:
    """A base platform document plus the axes spanning the space."""

    base: Dict[str, Any] = field(hash=False)
    axes: Tuple[Axis, ...]
    max_ps: int = DEFAULT_MAX_PS

    def __post_init__(self) -> None:
        if not self.axes:
            raise ConfigError("search space needs at least one axis")
        names = [axis.name for axis in self.axes]
        if len(set(names)) != len(names):
            raise ConfigError(f"duplicate axis names in {names}")

    # ------------------------------------------------------------------
    # candidate accounting
    # ------------------------------------------------------------------
    def size(self) -> int:
        """Raw cartesian size (including conflicted assignments)."""
        out = 1
        for axis in self.axes:
            out *= len(axis.values)
        return out

    def assignment(self, candidate: Candidate) -> Dict[str, Any]:
        """Axis-name -> value mapping for one candidate."""
        if len(candidate) != len(self.axes):
            raise ValueError(f"candidate {candidate} does not index "
                             f"{len(self.axes)} axes")
        out = {}
        for axis, index in zip(self.axes, candidate):
            if not 0 <= index < len(axis.values):
                raise ValueError(f"axis {axis.name!r}: index {index} out "
                                 f"of range")
            out[axis.name] = axis.values[index]
        return out

    def label(self, candidate: Candidate) -> str:
        """Stable human-readable identity, e.g. ``topology=shared,...``."""
        return ",".join(f"{name}={value}"
                        for name, value in self.assignment(candidate).items())

    def conflict(self, candidate: Candidate) -> Optional[str]:
        """Why this assignment is contradictory (``None`` = valid)."""
        assignment = self.assignment(candidate)
        protocol = assignment.get("protocol",
                                  self.base.get("protocol", "stbus"))
        if assignment.get("topology") == "crossbar" and protocol != "stbus":
            return (f"topology=crossbar needs protocol=stbus (the central "
                    f"crossbar node is STBus-only); got {protocol!r}")
        kind = self._memory_kind(assignment)
        if "lookahead" in assignment and kind != "lmi":
            return ("axis 'lookahead' tunes the LMI optimisation engine; "
                    f"memory.kind is {kind!r}")
        return None

    def _memory_kind(self, assignment: Dict[str, Any]) -> str:
        if "memory.kind" in assignment:
            return str(assignment["memory.kind"])
        return str(self.base.get("memory", {}).get("kind", "onchip"))

    def candidates(self) -> Iterator[Candidate]:
        """Every valid candidate, in lexicographic index order."""
        ranges = [range(len(axis.values)) for axis in self.axes]
        for combo in itertools.product(*ranges):
            if self.conflict(combo) is None:
                yield combo

    # ------------------------------------------------------------------
    # elaboration
    # ------------------------------------------------------------------
    def document(self, candidate: Candidate) -> Dict[str, Any]:
        """The platform document for one candidate (deep copy of base)."""
        conflict = self.conflict(candidate)
        if conflict is not None:
            raise ConfigError(f"candidate {self.label(candidate)!r}: "
                              f"{conflict}")
        document = json.loads(json.dumps(self.base))
        assignment = self.assignment(candidate)
        for name, value in assignment.items():
            if name not in _LATE_AXES:
                _apply_axis(document, name, value)
        for name, value in assignment.items():
            if name in _LATE_AXES:
                _apply_axis(document, name, value)
        return document

    def config(self, candidate: Candidate) -> PlatformConfig:
        """Elaborate one candidate into a :class:`PlatformConfig`."""
        try:
            return config_from_dict(self.document(candidate))
        except ValueError as exc:
            raise ConfigError(
                f"candidate {self.label(candidate)!r}: {exc}") from exc

    # ------------------------------------------------------------------
    # the optimizer's variation operators (all deterministic under `rng`)
    # ------------------------------------------------------------------
    def random_candidate(self, rng: Random) -> Candidate:
        """A uniformly drawn valid candidate (rejection sampling)."""
        for _ in range(64):
            combo = tuple(rng.randrange(len(axis.values))
                          for axis in self.axes)
            if self.conflict(combo) is None:
                return combo
        try:  # heavily constrained space: fall back to enumeration
            return next(self.candidates())
        except StopIteration:
            raise ConfigError("search space has no valid candidate "
                              "(every assignment conflicts)") from None

    def mutate(self, candidate: Candidate, rng: Random) -> Candidate:
        """Change one axis to a different value; repair conflicts."""
        for _ in range(32):
            position = rng.randrange(len(self.axes))
            width = len(self.axes[position].values)
            if width == 1:
                continue
            replacement = rng.randrange(width - 1)
            if replacement >= candidate[position]:
                replacement += 1
            mutated = (candidate[:position] + (replacement,)
                       + candidate[position + 1:])
            if self.conflict(mutated) is None:
                return mutated
        return self.random_candidate(rng)

    def crossover(self, left: Candidate, right: Candidate,
                  rng: Random) -> Candidate:
        """Uniform crossover of two parents; repair conflicts."""
        for _ in range(16):
            child = tuple(left[i] if rng.random() < 0.5 else right[i]
                          for i in range(len(self.axes)))
            if self.conflict(child) is None:
                return child
        return self.mutate(left, rng)


@dataclass(frozen=True)
class DseSpec:
    """A parsed exploration request: space, objectives, optimizer knobs."""

    space: SearchSpace
    objectives: Tuple[str, ...]
    optimizer: Dict[str, Any] = field(hash=False)


_SPEC_KEYS = frozenset({"base", "axes", "max_us", "objectives", "optimizer"})


def parse_dse(document: Dict[str, Any]) -> DseSpec:
    """Validate and expand a DSE specification document."""
    unknown = set(document) - _SPEC_KEYS
    if unknown:
        raise ConfigError(f"dse: unknown keys {sorted(unknown)}; "
                          f"allowed: {sorted(_SPEC_KEYS)}")
    base = document.get("base", {})
    if not isinstance(base, dict):
        raise ConfigError("dse.base: must be a platform object")
    axes_doc = document.get("axes")
    if not isinstance(axes_doc, dict) or not axes_doc:
        raise ConfigError("dse.axes: must be a non-empty object mapping "
                          "axis names to value lists")
    axes = []
    for name, values in axes_doc.items():
        if not isinstance(values, list):
            raise ConfigError(f"dse.axes.{name}: must be a value list")
        axes.append(Axis(name=str(name), values=tuple(values)))
    max_us = document.get("max_us", DEFAULT_MAX_PS / 1_000_000)
    if not isinstance(max_us, (int, float)) or max_us <= 0:
        raise ConfigError("dse.max_us: must be a positive number")
    space = SearchSpace(base=base, axes=tuple(axes),
                        max_ps=int(max_us * 1_000_000))

    objectives = document.get("objectives", list(DEFAULT_OBJECTIVES))
    if not isinstance(objectives, list) or not objectives:
        raise ConfigError("dse.objectives: must be a non-empty list")
    resolve_objectives(objectives)  # validates the names

    optimizer = document.get("optimizer", {})
    if not isinstance(optimizer, dict):
        raise ConfigError("dse.optimizer: must be an object")

    # Fail fast on schema typos: elaborating one candidate exercises the
    # base document, every early axis path and the config validators.
    try:
        first = next(space.candidates())
    except StopIteration:
        raise ConfigError("dse.axes: no valid candidate (every assignment "
                          "conflicts)") from None
    space.config(first)
    return DseSpec(space=space, objectives=tuple(str(o) for o in objectives),
                   optimizer=optimizer)


def load_dse(path: Union[str, Path]) -> DseSpec:
    """Read and validate a DSE specification file."""
    try:
        document = json.loads(Path(path).read_text())
    except OSError as exc:
        raise ConfigError(
            f"{path}: {exc.strerror or 'cannot read dse file'}") from exc
    except json.JSONDecodeError as exc:
        raise ConfigError(f"{path}: invalid JSON ({exc})") from exc
    if not isinstance(document, dict):
        raise ConfigError(f"{path}: top level must be an object")
    return parse_dse(document)


__all__ = [
    "Axis",
    "Candidate",
    "DseSpec",
    "SearchSpace",
    "load_dse",
    "parse_dse",
]
