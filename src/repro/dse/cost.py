"""Wire-count / area cost, derived from the protocol registry.

The crossbar question is a cost question: a full crossbar buys
contention-free paths with O(initiators x targets) wiring, a shared bus
spends O(initiators + targets), and the partial (multi-layer, bridged)
topologies sit between.  This model makes that trade-off a first-class
objective without running a single simulation:

* each protocol's per-port wire count comes from its registry signal
  table (:meth:`ProtocolSpec.wire_bits`), scaled to the fabric's data
  width;
* a shared node wires every port onto one set of shared lines —
  ``bits * (initiators + targets)``;
* a crossbar wires every initiator to every target —
  ``bits * initiators * targets`` — plus the same per-port interface
  wiring as the shared node;
* a bridge contributes a target-side port on its source protocol and an
  initiator-side port on its destination protocol
  (:meth:`BridgePlan.wire_bits`);
* FIFO storage (memory request/response slots, LMI input/output FIFOs,
  the lookahead window's address/opcode entries) is counted in bits so
  buffering axes have a real cost, not a free lunch.

The unit is *wire bits*: a relative figure of merit for ranking
configurations, not square millimetres.  It is exact given the config —
the LT screening drift bound for the ``cost`` objective is zero.
"""

from __future__ import annotations

from ..bridge.matrix import conversion_plan
from ..interconnect.protocols import spec_for_platform
from ..platforms.config import PlatformConfig

#: Bits per lookahead-window entry: a 32-bit address plus opcode/length
#: bookkeeping, matching the LMI controller's queue entries.
_LOOKAHEAD_ENTRY_BITS = 40


def wire_cost(protocol: str, initiators: int, targets: int,
              width_bytes: int = 4, *, crossbar: bool = False,
              stbus_type: int = 3) -> int:
    """Wire bits of one interconnect node.

    ``protocol`` is a ``PlatformConfig.protocol`` value (``stbus_type``
    disambiguates the STBus tiers).  ``crossbar=True`` adds the full
    initiator-by-target switch matrix on top of the per-port interface
    wiring both organisations need.
    """
    if initiators < 1 or targets < 1:
        raise ValueError("a node needs at least one initiator and one "
                         "target")
    bits = spec_for_platform(protocol, stbus_type).wire_bits(width_bytes)
    ports = bits * (initiators + targets)
    if crossbar:
        return ports + bits * initiators * targets
    return ports


def _fifo_bits(config: PlatformConfig) -> int:
    """Storage bits of the memory-side buffering."""
    memory = config.memory
    if memory.kind == "lmi":
        word = config.central_width_bytes * 8
        return (word * (memory.lmi.input_fifo_depth
                        + memory.lmi.output_fifo_depth)
                + _LOOKAHEAD_ENTRY_BITS * memory.lmi.lookahead_depth)
    word = config.central_width_bytes * 8
    return word * (memory.request_depth + memory.response_depth)


def platform_cost(config: PlatformConfig) -> int:
    """Total interconnect wire bits + FIFO storage bits of a platform.

    Collapsed topologies are a single node holding every IP (plus the
    CPU when enabled) against the memory target; distributed ones sum
    the per-cluster nodes, one bridge per cluster into the central node,
    and the central node itself.  ``central_crossbar`` turns the central
    node into the full switch matrix (STBus platforms only — the
    builder ignores the flag elsewhere, and so does the cost model).
    """
    cpu_ports = 1 if config.cpu.enabled else 0
    is_crossbar = config.central_crossbar and config.protocol == "stbus"
    central_type = int(config.central_stbus_type)
    total = 0
    if config.topology == "collapsed":
        initiators = cpu_ports + sum(len(c.ips) for c in config.clusters)
        total += wire_cost(config.protocol, max(1, initiators), 1,
                           config.central_width_bytes,
                           crossbar=is_crossbar, stbus_type=central_type)
    else:
        central_spec = spec_for_platform(config.protocol, central_type)
        for cluster in config.clusters:
            cluster_spec = spec_for_platform(config.protocol,
                                             int(cluster.stbus_type))
            total += wire_cost(config.protocol, max(1, len(cluster.ips)), 1,
                               cluster.data_width_bytes,
                               stbus_type=int(cluster.stbus_type))
            plan = conversion_plan(cluster_spec, central_spec)
            total += plan.wire_bits(cluster.data_width_bytes,
                                    config.central_width_bytes)
        central_initiators = max(1, len(config.clusters) + cpu_ports)
        total += wire_cost(config.protocol, central_initiators, 1,
                           config.central_width_bytes,
                           crossbar=is_crossbar, stbus_type=central_type)
    return total + _fifo_bits(config)


__all__ = ["platform_cost", "wire_cost"]
