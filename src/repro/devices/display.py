"""Real-time display (scan-out) controller.

The I/O side of a memory-centric set-top box: a display controller fetches
frame-buffer lines from the unified memory on a hard periodic schedule.
If a line has not fully arrived by its scan-out deadline, the panel
underruns — the classic symptom of an interconnect/memory architecture
that cannot guarantee I/O QoS (guideline 4: "this calls for optimizations
of the I/O architecture to remove the system bottleneck").

The controller prefetches up to ``line_buffer_lines`` lines ahead; the
scan-out process consumes one line per ``line_period_cycles`` and records
an underrun (and keeps displaying) when data is late.  Deadline *margins*
are recorded for every line, so experiments can report worst-case slack,
not just the failure count.
"""

from __future__ import annotations

from typing import List, Optional

from ..core.component import Component
from ..core.events import Event
from ..core.kernel import Simulator
from ..core.statistics import Counter
from ..core.sync import Semaphore
from ..interconnect.base import InitiatorPort
from ..interconnect.types import Opcode, Transaction


class DisplayController(Component):
    """Periodic line fetcher with deadline tracking."""

    def __init__(self, sim: Simulator, name: str, port: InitiatorPort,
                 framebuffer_base: int, line_bytes: int = 512,
                 lines: int = 32, line_period_cycles: int = 200,
                 burst_bytes: int = 64, beat_bytes: int = 8,
                 line_buffer_lines: int = 2, priority: int = 0,
                 parent: Optional[Component] = None) -> None:
        super().__init__(sim, name, clock=port.fabric.clock, parent=parent)
        if line_bytes <= 0 or lines <= 0 or line_period_cycles <= 0:
            raise ValueError("line geometry must be positive")
        if line_buffer_lines < 1:
            raise ValueError("need at least one line of buffering")
        self.port = port
        self.framebuffer_base = framebuffer_base
        self.line_bytes = line_bytes
        self.lines = lines
        self.line_period_cycles = line_period_cycles
        self.burst_bytes = burst_bytes
        self.beat_bytes = beat_bytes
        self.priority = priority
        self.underruns = Counter(f"{name}.underruns")
        self.lines_displayed = Counter(f"{name}.lines")
        #: Per-line deadline margin in ps (negative = missed).
        self.margins_ps: List[int] = []
        self.done: Event = sim.event(name=f"{name}.done")
        #: Prefetch window: the fetcher may run this many lines ahead.
        self._window = Semaphore(sim, line_buffer_lines,
                                 name=f"{name}.window")
        #: Line-arrival events, filled by the fetcher.
        self._arrivals: List[Event] = [sim.event(name=f"{name}.line{i}")
                                       for i in range(lines)]
        self.process(self._fetcher(), name="fetch")
        self.process(self._scanout(), name="scanout")

    # ------------------------------------------------------------------
    def snapshot_state(self, encoder):
        """Scan-out progress and the recorded deadline margins."""
        return {
            "underruns": self.underruns.value,
            "lines_displayed": self.lines_displayed.value,
            "margins_ps": list(self.margins_ps),
            "window_available": self._window.available,
            "arrived": [event.triggered for event in self._arrivals],
            "done": self.done.triggered,
        }

    # ------------------------------------------------------------------
    def _fetch_line(self, index: int):
        """Issue the bursts of one line and wait for all of them."""
        base = self.framebuffer_base + index * self.line_bytes
        remaining = self.line_bytes
        offset = 0
        bursts = []
        while remaining > 0:
            chunk = min(self.burst_bytes, remaining)
            beats = max(1, -(-chunk // self.beat_bytes))
            txn = Transaction(initiator=self.name, opcode=Opcode.READ,
                              address=base + offset, beats=beats,
                              beat_bytes=self.beat_bytes,
                              priority=self.priority)
            yield self.port.issue(txn)
            bursts.append(txn)
            offset += chunk
            remaining -= chunk
        for txn in bursts:
            if not txn.ev_done.triggered:
                yield txn.ev_done

    def _fetcher(self):
        for index in range(self.lines):
            yield self._window.acquire()
            yield from self._fetch_line(index)
            self._arrivals[index].succeed(self.sim.now)

    def _scanout(self):
        clk = self.clock
        period_ps = clk.to_ps(self.line_period_cycles)
        # First deadline leaves one full period of prefetch headroom.
        start = self.sim.now + period_ps
        for index in range(self.lines):
            deadline = start + index * period_ps
            arrival = self._arrivals[index]
            if not arrival.triggered:
                yield arrival
            margin = deadline - arrival.value
            self.margins_ps.append(margin)
            if margin < 0:
                self.underruns.add()
            if deadline > self.sim.now:
                yield self.sim.timeout(deadline - self.sim.now)
            self.lines_displayed.add()
            self._window.release()
        self.done.succeed(self.underruns.value)

    # ------------------------------------------------------------------
    @property
    def underrun_rate(self) -> float:
        shown = self.lines_displayed.value
        return self.underruns.value / shown if shown else 0.0

    @property
    def worst_margin_ps(self) -> int:
        return min(self.margins_ps) if self.margins_ps else 0
