"""Functional I/O device models: DMA engine, display controller."""

from .display import DisplayController
from .dma import DmaChannel, DmaDescriptor, DmaEngine

__all__ = ["DisplayController", "DmaChannel", "DmaDescriptor", "DmaEngine"]
