"""Programmable DMA engine.

The reference platform's N5 cluster runs "more generic DMA tasks"; beyond
the statistical IPTG stand-ins, this is a functional DMA controller: a
descriptor-programmed, multi-channel engine that actually moves data
(memory-to-memory or memory-to-I/O windows), splitting each descriptor
into bus bursts, pipelining reads against posted writes and reporting
per-channel completion.

The engine is a first-class initiator: it attaches to any fabric through a
normal initiator port, so it can be dropped into single layers, behind
bridges, or onto the full reference platform.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..core.component import Component
from ..core.events import Event
from ..core.kernel import Simulator
from ..core.statistics import Counter, LatencySummary
from ..core.sync import Semaphore
from ..interconnect.base import InitiatorPort
from ..interconnect.types import Opcode, Transaction


@dataclass(frozen=True)
class DmaDescriptor:
    """One programmed transfer: copy ``length`` bytes from ``source`` to
    ``destination`` in bursts of ``burst_bytes``."""

    source: int
    destination: int
    length: int
    burst_bytes: int = 64

    def __post_init__(self) -> None:
        if self.length <= 0:
            raise ValueError("descriptor length must be positive")
        if self.burst_bytes <= 0 or self.burst_bytes % 4:
            raise ValueError("burst_bytes must be a positive multiple of 4")
        if self.source < 0 or self.destination < 0:
            raise ValueError("addresses must be non-negative")

    @property
    def bursts(self) -> int:
        """Bus bursts needed for this descriptor."""
        return -(-self.length // self.burst_bytes)


class DmaChannel:
    """One channel: an ordered descriptor chain plus completion event."""

    def __init__(self, sim: Simulator, index: int,
                 descriptors: Sequence[DmaDescriptor]) -> None:
        if not descriptors:
            raise ValueError(f"channel {index}: empty descriptor chain")
        self.index = index
        self.descriptors = list(descriptors)
        self.done: Event = sim.event(name=f"dma_ch{index}.done")
        self.bytes_moved = 0


class DmaEngine(Component):
    """Multi-channel descriptor-driven DMA controller.

    Channels are serviced round-robin at descriptor granularity; within a
    descriptor, read bursts pipeline up to the port's outstanding budget
    and each completed read immediately launches the corresponding posted
    write ("store-and-forward per burst").
    """

    def __init__(self, sim: Simulator, name: str, port: InitiatorPort,
                 beat_bytes: int = 8,
                 parent: Optional[Component] = None) -> None:
        super().__init__(sim, name, clock=port.fabric.clock, parent=parent)
        self.port = port
        self.beat_bytes = beat_bytes
        self.channels: List[DmaChannel] = []
        self.bursts_issued = Counter(f"{name}.bursts")
        self.copy_latency = LatencySummary(f"{name}.copy_latency")
        self.all_done: Event = sim.event(name=f"{name}.all_done")
        self._started = False

    # ------------------------------------------------------------------
    def snapshot_state(self, encoder):
        """Per-channel copy progress."""
        return {
            "started": self._started,
            "bursts_issued": self.bursts_issued.value,
            "channels": [
                {
                    "index": channel.index,
                    "descriptors": len(channel.descriptors),
                    "bytes_moved": channel.bytes_moved,
                    "done": channel.done.triggered,
                } for channel in self.channels
            ],
            "all_done": self.all_done.triggered,
        }

    # ------------------------------------------------------------------
    def program(self, descriptors: Sequence[DmaDescriptor]) -> DmaChannel:
        """Add a channel with the given descriptor chain."""
        if self._started:
            raise RuntimeError(f"{self.name}: already started")
        channel = DmaChannel(self.sim, len(self.channels), descriptors)
        self.channels.append(channel)
        return channel

    def start(self) -> Event:
        """Kick the engine; returns the all-channels-done event."""
        if self._started:
            raise RuntimeError(f"{self.name}: already started")
        if not self.channels:
            raise RuntimeError(f"{self.name}: no channels programmed")
        self._started = True
        self.process(self._engine(), name="engine")
        return self.all_done

    # ------------------------------------------------------------------
    def _engine(self):
        # Round-robin over channels at descriptor granularity.
        pending = [(ch, list(ch.descriptors)) for ch in self.channels]
        while pending:
            still = []
            for channel, chain in pending:
                descriptor = chain.pop(0)
                yield from self._copy(channel, descriptor)
                if chain:
                    still.append((channel, chain))
                else:
                    channel.done.succeed(channel.bytes_moved)
            pending = still
        self.all_done.succeed(sum(ch.bytes_moved for ch in self.channels))

    def _copy(self, channel: DmaChannel, descriptor: DmaDescriptor):
        """Move one descriptor's bytes, burst by burst."""
        started = self.sim.now
        remaining = descriptor.length
        offset = 0
        in_flight = Semaphore(self.sim, self.port.max_outstanding,
                              name=f"{self.name}.inflight", bounded=True)
        launched = []
        while remaining > 0:
            chunk = min(descriptor.burst_bytes, remaining)
            beats = max(1, -(-chunk // self.beat_bytes))
            yield in_flight.acquire()
            txn = Transaction(initiator=self.name, opcode=Opcode.READ,
                              address=descriptor.source + offset,
                              beats=beats, beat_bytes=self.beat_bytes)
            self.bursts_issued.add()
            yield self.port.issue(txn)
            self.process(
                self._writeback(txn, descriptor.destination + offset,
                                channel, chunk, in_flight),
                name=f"wb{txn.tid}")
            launched.append(txn)
            offset += chunk
            remaining -= chunk
        # Drain: re-acquire every credit, which only succeeds once the
        # last write-back released it — the copy is then fully committed.
        for _ in range(self.port.max_outstanding):
            yield in_flight.acquire()
        self.copy_latency.add(self.sim.now - started)

    def _writeback(self, txn: Transaction, destination: int,
                   channel: DmaChannel, chunk: int, in_flight: Semaphore):
        """When a read burst lands, launch the matching posted write."""
        if not txn.ev_done.triggered:
            yield txn.ev_done
        write = Transaction(initiator=self.name, opcode=Opcode.WRITE,
                            address=destination, beats=txn.beats,
                            beat_bytes=txn.beat_bytes, posted=True)
        self.bursts_issued.add()
        yield self.port.issue(write)
        if not write.ev_done.triggered:
            yield write.ev_done
        channel.bytes_moved += chunk
        in_flight.release()

    # ------------------------------------------------------------------
    @property
    def total_bytes_moved(self) -> int:
        return sum(ch.bytes_moved for ch in self.channels)
