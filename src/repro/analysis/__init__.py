"""Analysis: interface monitors, run metrics, plain-text reporting."""

from .export import (
    histogram_chart,
    latency_histogram,
    results_to_csv,
    transactions_to_csv,
)
from .fifo_monitor import (
    STATE_FULL,
    STATE_IDLE,
    STATE_STORING,
    InterfaceMonitor,
)
from .metrics import RunResult, normalize, speedup, summarize_transactions
from .report import bar_chart, breakdown_chart, format_table, percent
from .timeline import (
    TimelineSampler,
    busy_probe,
    counter_probe,
    fifo_level_probe,
)
from .vcd import VcdWriter

__all__ = [
    "InterfaceMonitor",
    "RunResult",
    "STATE_FULL",
    "STATE_IDLE",
    "STATE_STORING",
    "TimelineSampler",
    "VcdWriter",
    "bar_chart",
    "breakdown_chart",
    "busy_probe",
    "counter_probe",
    "fifo_level_probe",
    "format_table",
    "histogram_chart",
    "latency_histogram",
    "normalize",
    "percent",
    "results_to_csv",
    "speedup",
    "summarize_transactions",
    "transactions_to_csv",
]
