"""Plain-text reporting: tables and bar charts for experiment output.

The benchmark harness prints the same rows/series the paper's figures show;
these helpers keep that output readable in a terminal and in the captured
``bench_output.txt`` / ``EXPERIMENTS.md`` artefacts.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                 float_digits: int = 3) -> str:
    """Monospace table with per-column alignment."""
    def render(cell: object) -> str:
        if isinstance(cell, float):
            return f"{cell:.{float_digits}f}"
        return str(cell)

    body: List[List[str]] = [[render(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in body:
        if len(row) != len(headers):
            raise ValueError(f"row width {len(row)} != header width {len(headers)}")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for row in body:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def bar_chart(values: Mapping[str, float], width: int = 40,
              unit: str = "", max_value: Optional[float] = None) -> str:
    """Horizontal ASCII bar chart (one bar per label)."""
    if not values:
        return "(no data)"
    peak = max_value if max_value is not None else max(values.values())
    peak = peak if peak > 0 else 1.0
    label_width = max(len(label) for label in values)
    lines = []
    for label, value in values.items():
        filled = int(round(width * min(value, peak) / peak))
        bar = "#" * filled
        lines.append(f"{label.ljust(label_width)} |{bar.ljust(width)}| "
                     f"{value:.3f}{unit}")
    return "\n".join(lines)


def breakdown_chart(breakdowns: Mapping[str, Mapping[str, float]],
                    states: Sequence[str], width: int = 50) -> str:
    """Stacked-bar rendering of per-phase state fractions (Fig. 6 style)."""
    glyphs = "#=+.~o*"
    lines = []
    for phase, fractions in breakdowns.items():
        segments = []
        for i, state in enumerate(states):
            span = int(round(width * fractions.get(state, 0.0)))
            segments.append(glyphs[i % len(glyphs)] * span)
        bar = "".join(segments)[:width].ljust(width)
        detail = " ".join(f"{state}={fractions.get(state, 0.0):.0%}"
                          for state in states)
        lines.append(f"{phase:<10} |{bar}| {detail}")
    legend = " ".join(f"{glyphs[i % len(glyphs)]}={state}"
                      for i, state in enumerate(states))
    lines.append(f"legend: {legend}")
    return "\n".join(lines)


def percent(value: float) -> str:
    """Compact percentage formatting used throughout the harness output."""
    return f"{100 * value:.1f}%"
