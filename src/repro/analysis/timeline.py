"""Time-series sampling of platform metrics (Section 5 instrumentation).

Fig. 6 splits the application lifetime into regimes by hand; this sampler
does the legwork: it records any set of numeric probes on a fixed period —
bandwidth at the memory controller, FIFO occupancy, channel utilisation —
producing the time series a designer scans to *find* the working regimes
in the first place ("we have showed how to identify working conditions
during application lifetime").
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.kernel import Simulator
from ..core.statistics import ChannelUtilization, Counter

#: A probe returns the metric's current value.
Probe = Callable[[], float]

_SPARK_GLYPHS = " .:-=+*#%@"


class TimelineSampler:
    """Samples named probes every ``interval_ps`` for ``horizon_ps``."""

    def __init__(self, sim: Simulator, interval_ps: int, horizon_ps: int,
                 probes: Dict[str, Probe], name: str = "timeline") -> None:
        if interval_ps <= 0 or horizon_ps <= 0:
            raise ValueError("interval and horizon must be positive")
        if not probes:
            raise ValueError("need at least one probe")
        self.sim = sim
        self.name = name
        self.interval_ps = interval_ps
        self.horizon_ps = horizon_ps
        self.probes = dict(probes)
        #: One row per sample: (time_ps, {probe: value}).
        self.samples: List[Tuple[int, Dict[str, float]]] = []
        self._stopped = False
        sim.process(self._sample(), name=f"{name}.sampler")

    def stop(self) -> None:
        """Stop sampling at the next tick."""
        self._stopped = True

    def _sample(self):
        ticks = self.horizon_ps // self.interval_ps
        for _tick in range(ticks):
            yield self.sim.timeout(self.interval_ps)
            if self._stopped:
                return
            row = {name: float(probe()) for name, probe in self.probes.items()}
            self.samples.append((self.sim.now, row))

    # ------------------------------------------------------------------
    def series(self, probe: str) -> List[Tuple[int, float]]:
        """The (time, value) series of one probe."""
        if probe not in self.probes:
            raise KeyError(f"unknown probe {probe!r}")
        return [(t, row[probe]) for t, row in self.samples]

    def deltas(self, probe: str) -> List[Tuple[int, float]]:
        """Per-interval increments of a cumulative probe (e.g. a counter):
        the *rate* series."""
        series = self.series(probe)
        out = []
        last = 0.0
        for t, value in series:
            out.append((t, value - last))
            last = value
        return out

    def sparkline(self, probe: str, rate: bool = False, width: int = 60) -> str:
        """Compact one-line rendering of a probe (optionally its rate)."""
        series = self.deltas(probe) if rate else self.series(probe)
        if not series:
            return "(no samples)"
        values = [v for __, v in series]
        if len(values) > width:
            # Downsample by averaging buckets.
            bucket = len(values) / width
            values = [sum(values[int(i * bucket):int((i + 1) * bucket)])
                      / max(1, len(values[int(i * bucket):int((i + 1) * bucket)]))
                      for i in range(width)]
        peak = max(values)
        if peak <= 0:
            return _SPARK_GLYPHS[0] * len(values)
        steps = len(_SPARK_GLYPHS) - 1
        return "".join(_SPARK_GLYPHS[min(steps, int(round(steps * v / peak)))]
                       for v in values)


def counter_probe(counter: Counter) -> Probe:
    """Probe a cumulative counter (pair with :meth:`TimelineSampler.deltas`)."""
    return lambda: float(counter.value)


def busy_probe(channel: ChannelUtilization) -> Probe:
    """Probe a channel's cumulative busy time (ps)."""
    return lambda: float(channel.busy_ps)


def fifo_level_probe(fifo) -> Probe:
    """Probe a FIFO's instantaneous occupancy."""
    return lambda: float(fifo.level)
