"""Bus-interface monitor for the memory controller (Fig. 6 instrumentation).

"Properly monitoring the behaviour of the bus-memory controller interface
can help system designers identify where bottlenecks are" (Section 5).  The
paper partitions every cycle at the LMI bus interface into three states —
the input FIFO is **full** (requests wait), the interface is **storing** a
new request (request and grant both asserted), or there is **no incoming
request** (grant high, request low) — and reports, per execution phase, the
fraction of time in each, plus how long the FIFO sat completely **empty**.

:class:`InterfaceMonitor` reproduces that instrument for any target port.
It integrates state *durations* (no per-cycle sampling) and supports phase
boundaries so multi-regime application lifetimes can be dissected exactly
like Fig. 6's two working regimes.

Both state trackers register in the simulator's metric registry
(``<port>.iface.states`` / ``<port>.iface.empty``), so the Fig. 6 numbers
appear in ``repro stats`` dumps alongside everything else; under an active
observability capture the monitor additionally attaches a
:class:`~repro.obs.registry.FifoProbe` (``<port>.iface.fifo``) measuring
per-request waiting times in the same FIFO.
"""

from __future__ import annotations

from typing import Dict

from ..core.kernel import Simulator
from ..interconnect.base import TargetPort

#: The cycle-state partition of Fig. 6.
STATE_FULL = "fifo_full"
STATE_STORING = "storing_request"
STATE_IDLE = "no_incoming_request"


class InterfaceMonitor:
    """Classifies, over time, the state of a target's bus interface."""

    def __init__(self, sim: Simulator, port: TargetPort,
                 first_phase: str = "phase1") -> None:
        self.sim = sim
        self.port = port
        self._storing = False
        metrics = sim.metrics
        self._states = metrics.phased_states(f"{port.name}.iface.states",
                                             initial=self._classify(),
                                             first_phase=first_phase)
        self._empty = metrics.phased_states(
            f"{port.name}.iface.empty",
            initial="empty" if port.request_fifo.is_empty else "nonempty",
            first_phase=first_phase)
        if sim._spans is not None:
            # Waiting-time probe only under an active capture: it installs
            # a level watcher on what is usually the hottest FIFO in a run.
            metrics.fifo(f"{port.name}.iface.fifo", port.request_fifo)
        port.request_fifo.watch(self._on_level)
        port.request_observers.append(self._on_request_state)

    # ------------------------------------------------------------------
    def _classify(self) -> str:
        if self.port.request_fifo.is_full:
            return STATE_FULL
        if self._storing:
            return STATE_STORING
        return STATE_IDLE

    def _on_level(self, _time: int, _old: int, _new: int) -> None:
        self._states.set_state(self._classify())
        self._empty.set_state(
            "empty" if self.port.request_fifo.is_empty else "nonempty")

    def _on_request_state(self, state: str) -> None:
        self._storing = state == "storing"
        self._states.set_state(self._classify())

    # ------------------------------------------------------------------
    def begin_phase(self, name: str) -> None:
        """Mark a new execution phase (a Fig. 6 "working regime")."""
        self._states.begin_phase(name)
        self._empty.begin_phase(name)

    def report(self) -> Dict[str, Dict[str, float]]:
        """Per-phase breakdown.

        Each phase maps to the three-state partition (fractions summing to
        ~1.0) plus an independent ``fifo_empty`` fraction, mirroring the
        paper's presentation ("the FIFO is empty only for a marginal time
        fraction").
        """
        states = self._states.breakdowns()
        empty = self._empty.breakdowns()
        result: Dict[str, Dict[str, float]] = {}
        for phase, fractions in states.items():
            row = {STATE_FULL: 0.0, STATE_STORING: 0.0, STATE_IDLE: 0.0}
            row.update(fractions)
            row["fifo_empty"] = empty.get(phase, {}).get("empty", 0.0)
            result[phase] = row
        return result
