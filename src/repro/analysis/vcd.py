"""Minimal VCD (Value Change Dump) writer.

The paper's controller model was validated "with RTL signal waveforms on a
cycle-by-cycle basis"; this utility closes the loop in the other direction:
dump simulation signals (FIFO occupancies, grant activity, arbitrary
integers) as a ``.vcd`` file readable by GTKWave & co., so platform runs
can be inspected against real waveforms.

Usage::

    vcd = VcdWriter(sim, "run.vcd")
    lvl = vcd.register("lmi_fifo_level", width=8)
    vcd.attach_fifo(port.request_fifo, "lmi_fifo")   # auto-traced
    ...
    sim.run()
    vcd.close()
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from ..core.fifo import Fifo
from ..core.kernel import Simulator

#: Printable VCD identifier characters.
_ID_ALPHABET = "".join(chr(c) for c in range(33, 127))


class VcdSignal:
    """Handle for one traced signal."""

    __slots__ = ("writer", "ident", "name", "width", "_last")

    def __init__(self, writer: "VcdWriter", ident: str, name: str,
                 width: int) -> None:
        self.writer = writer
        self.ident = ident
        self.name = name
        self.width = width
        self._last: Optional[int] = None

    def set(self, value: int) -> None:
        """Record ``value`` at the current simulation time (deduplicated)."""
        if value == self._last:
            return
        self._last = value
        self.writer._record(self.writer.sim.now, self.ident, value,
                            self.width)


class VcdWriter:
    """Collects value changes and writes a VCD file on :meth:`close`."""

    def __init__(self, sim: Simulator, path: Union[str, Path],
                 timescale: str = "1 ps") -> None:
        self.sim = sim
        self.path = Path(path)
        self.timescale = timescale
        self._signals: List[VcdSignal] = []
        self._changes: List[Tuple[int, str, int, int]] = []
        self._closed = False

    # ------------------------------------------------------------------
    def register(self, name: str, width: int = 8) -> VcdSignal:
        """Declare a signal; returns the handle used to record values."""
        if self._closed:
            raise RuntimeError("VCD writer already closed")
        if width < 1 or width > 64:
            raise ValueError(f"signal width out of range: {width}")
        ident = self._make_ident(len(self._signals))
        signal = VcdSignal(self, ident, name, width)
        self._signals.append(signal)
        return signal

    def attach_fifo(self, fifo: Fifo, name: str) -> VcdSignal:
        """Trace a FIFO's occupancy automatically."""
        width = max(1, fifo.capacity.bit_length())
        signal = self.register(name, width=width)
        signal.set(fifo.level)
        fifo.watch(lambda _t, _old, new: signal.set(new))
        return signal

    # ------------------------------------------------------------------
    @staticmethod
    def _make_ident(index: int) -> str:
        base = len(_ID_ALPHABET)
        ident = ""
        index += 1
        while index:
            index, rem = divmod(index - 1, base)
            ident = _ID_ALPHABET[rem] + ident
        return ident

    def _record(self, time_ps: int, ident: str, value: int,
                width: int) -> None:
        if self._closed:
            raise RuntimeError("VCD writer already closed")
        self._changes.append((time_ps, ident, value, width))

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Write the collected changes out.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        lines = [
            "$date repro simulation $end",
            "$version repro VcdWriter $end",
            f"$timescale {self.timescale} $end",
            "$scope module repro $end",
        ]
        for signal in self._signals:
            safe = signal.name.replace(" ", "_")
            lines.append(f"$var wire {signal.width} {signal.ident} "
                         f"{safe} $end")
        lines.append("$upscope $end")
        lines.append("$enddefinitions $end")
        current_time = None
        for time_ps, ident, value, width in sorted(
                self._changes, key=lambda change: change[0]):
            if time_ps != current_time:
                lines.append(f"#{time_ps}")
                current_time = time_ps
            if width == 1:
                lines.append(f"{value & 1}{ident}")
            else:
                lines.append(f"b{value:b} {ident}")
        lines.append(f"#{self.sim.now}")
        self.path.write_text("\n".join(lines) + "\n")

    def __enter__(self) -> "VcdWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
