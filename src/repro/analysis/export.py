"""Export of run results and latency populations to CSV.

The statistics system keeps everything in memory; these helpers persist it
for downstream tooling (spreadsheets, plotting scripts), mirroring how the
paper's statistics collection fed its figures.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Iterable, List, Mapping, Sequence, Union

from ..interconnect.types import Transaction
from .metrics import RunResult

PathLike = Union[str, Path]


def results_to_csv(path: PathLike, results: Iterable[RunResult]) -> None:
    """One row per run: execution time, throughput, latencies, extras.

    Extra/utilisation keys are unioned across runs; missing cells are
    left empty so heterogeneous experiments can share a file.
    """
    rows = list(results)
    util_keys = sorted({k for r in rows for k in r.utilization})
    extra_keys = sorted({k for r in rows for k in r.extra})
    energy_keys = sorted({k for r in rows for k in r.energy_pj})
    header = (["label", "execution_time_ps", "transactions",
               "bytes_transferred", "mean_latency_ps", "p95_latency_ps",
               "energy_total_pj", "pj_per_byte"]
              + [f"util.{k}" for k in util_keys]
              + [f"extra.{k}" for k in extra_keys]
              + [f"energy.{k}" for k in energy_keys])
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(header)
        for result in rows:
            writer.writerow(
                [result.label, result.execution_time_ps,
                 result.transactions, result.bytes_transferred,
                 f"{result.mean_latency_ps:.1f}",
                 f"{result.p95_latency_ps:.1f}",
                 f"{result.energy_total_pj:.3f}",
                 f"{result.pj_per_byte:.4f}"]
                + [result.utilization.get(k, "") for k in util_keys]
                + [result.extra.get(k, "") for k in extra_keys]
                + [result.energy_pj.get(k, "") for k in energy_keys])


def transactions_to_csv(path: PathLike,
                        transactions: Iterable[Transaction]) -> None:
    """One row per transaction with the full lifecycle timestamps."""
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["tid", "initiator", "opcode", "address", "beats",
                         "beat_bytes", "t_created", "t_issued", "t_granted",
                         "t_accepted", "t_first_data", "t_done",
                         "latency_ps", "error"])
        for txn in transactions:
            writer.writerow([txn.tid, txn.initiator, txn.opcode.value,
                             f"{txn.address:#x}", txn.beats, txn.beat_bytes,
                             txn.t_created, txn.t_issued, txn.t_granted,
                             txn.t_accepted, txn.t_first_data, txn.t_done,
                             txn.latency_ps, int(txn.error)])


def latency_histogram(samples: Sequence[int], bins: int = 10) -> List[tuple]:
    """Equal-width histogram of a latency population.

    Returns ``[(low, high, count), ...]`` covering [min, max]; the final
    bin is inclusive of the maximum.
    """
    if bins < 1:
        raise ValueError("bins must be >= 1")
    values = sorted(samples)
    if not values:
        return []
    low, high = values[0], values[-1]
    if low == high:
        return [(low, high, len(values))]
    width = (high - low) / bins
    counts = [0] * bins
    for value in values:
        index = min(bins - 1, int((value - low) / width))
        counts[index] += 1
    return [(low + i * width, low + (i + 1) * width, counts[i])
            for i in range(bins)]


def histogram_chart(histogram: Sequence[tuple], width: int = 40,
                    unit_scale: float = 1000.0, unit: str = "ns") -> str:
    """ASCII rendering of :func:`latency_histogram` output."""
    if not histogram:
        return "(no samples)"
    peak = max(count for *_edges, count in histogram) or 1
    lines = []
    for low, high, count in histogram:
        bar = "#" * int(round(width * count / peak))
        lines.append(f"{low / unit_scale:9.1f}-{high / unit_scale:9.1f} "
                     f"{unit} |{bar.ljust(width)}| {count}")
    return "\n".join(lines)
