"""Run-level performance metrics.

The macroscopic metric of Figs. 3-5 is *execution time* (reported
normalised), backed by channel utilisations, latency populations and
throughput.  :class:`RunResult` is the value object every experiment
returns; helpers normalise result sets the way the paper's figures do.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from ..interconnect.types import Transaction


@dataclass
class RunResult:
    """Outcome of one platform simulation."""

    label: str
    execution_time_ps: int
    transactions: int
    bytes_transferred: int
    #: Channel utilisations, keyed "<fabric>.<channel>".
    utilization: Dict[str, float] = field(default_factory=dict)
    mean_latency_ps: float = 0.0
    p95_latency_ps: float = 0.0
    extra: Dict[str, float] = field(default_factory=dict)
    #: Per-component energy in picojoules, keyed by component name
    #: (empty unless the run had an energy accountant attached).
    energy_pj: Dict[str, float] = field(default_factory=dict)
    #: Total platform energy in picojoules (0.0 = energy model disabled).
    energy_total_pj: float = 0.0

    @property
    def execution_time_ns(self) -> float:
        return self.execution_time_ps / 1_000

    @property
    def throughput_bytes_per_ns(self) -> float:
        if self.execution_time_ps == 0:
            return 0.0
        return self.bytes_transferred / (self.execution_time_ps / 1_000)

    @property
    def pj_per_byte(self) -> float:
        """Energy cost of moving one byte (0.0 on zero-traffic runs)."""
        if self.bytes_transferred == 0:
            return 0.0
        return self.energy_total_pj / self.bytes_transferred

    @property
    def energy_delay_product(self) -> float:
        """Energy-delay product in pJ*ns — the ranking metric that rewards
        neither a slow-but-frugal nor a fast-but-hungry corner."""
        return self.energy_total_pj * self.execution_time_ns

    def normalized_to(self, baseline: "RunResult") -> float:
        """Execution time relative to ``baseline`` (Fig. 3/5 bar heights)."""
        if baseline.execution_time_ps == 0:
            return math.inf
        return self.execution_time_ps / baseline.execution_time_ps


def summarize_transactions(label: str, execution_time_ps: int,
                           transactions: Iterable[Transaction],
                           utilization: Optional[Dict[str, float]] = None,
                           extra: Optional[Dict[str, float]] = None,
                           energy_pj: Optional[Dict[str, float]] = None,
                           energy_total_pj: float = 0.0) -> RunResult:
    """Build a :class:`RunResult` from a completed transaction population."""
    txns = list(transactions)
    done = [t for t in txns if t.t_done is not None]
    latencies = sorted(t.latency_ps for t in done if t.latency_ps is not None)
    mean = sum(latencies) / len(latencies) if latencies else 0.0
    p95 = latencies[int(0.95 * (len(latencies) - 1))] if latencies else 0.0
    return RunResult(
        label=label,
        execution_time_ps=execution_time_ps,
        transactions=len(done),
        bytes_transferred=sum(t.total_bytes for t in done),
        utilization=dict(utilization or {}),
        mean_latency_ps=mean,
        p95_latency_ps=float(p95),
        extra=dict(extra or {}),
        energy_pj=dict(energy_pj or {}),
        energy_total_pj=energy_total_pj,
    )


def normalize(results: List[RunResult],
              baseline_label: Optional[str] = None) -> Dict[str, float]:
    """Normalised execution times (smallest = 1.0 unless a label is given)."""
    if not results:
        return {}
    if baseline_label is None:
        baseline = min(results, key=lambda r: r.execution_time_ps)
    else:
        matches = [r for r in results if r.label == baseline_label]
        if not matches:
            raise KeyError(f"no result labelled {baseline_label!r}")
        baseline = matches[0]
    return {r.label: r.normalized_to(baseline) for r in results}


def speedup(slow: RunResult, fast: RunResult) -> float:
    """How many times faster ``fast`` finished than ``slow``."""
    if fast.execution_time_ps == 0:
        return math.inf
    return slow.execution_time_ps / fast.execution_time_ps
