"""Experiment harness: one module per paper figure/table.

=======================  ====================================================
Module                   Reproduces
=======================  ====================================================
``single_layer``         Section 4.1.1 (many-to-many) and 4.1.2 (many-to-one)
``fig3_platform_instances``  Fig. 3 — platform instances, on-chip memory
``fig4_memory_speed``    Fig. 4 — distributed vs centralized vs memory speed
``fig5_lmi_platforms``   Fig. 5 — platform instances with LMI + DDR SDRAM
``fig6_lmi_statistics``  Fig. 6 — LMI bus-interface cycle statistics
``ablations``            Section 6 guideline ablations
=======================  ====================================================

Every module exposes ``run() -> dict``, ``report(data) -> str`` and
``check(data) -> list[str]`` (empty list = every paper shape claim holds).
"""

from . import (
    ablations,
    arbitration_study,
    crossbar_dse,
    fig3_platform_instances,
    fig4_memory_speed,
    fig5_lmi_platforms,
    fig6_lmi_statistics,
    io_qos,
    path_segmentation,
    single_layer,
)
from .common import (
    normalized,
    run_config,
    run_config_with_platform,
    run_configs,
    set_default_jobs,
)

__all__ = [
    "ablations",
    "arbitration_study",
    "crossbar_dse",
    "fig3_platform_instances",
    "fig4_memory_speed",
    "fig5_lmi_platforms",
    "fig6_lmi_statistics",
    "io_qos",
    "normalized",
    "path_segmentation",
    "run_config",
    "run_config_with_platform",
    "run_configs",
    "set_default_jobs",
    "single_layer",
]
