"""I/O quality-of-service study (extension; guideline 4).

"On the other hand, this calls for optimizations of the I/O architecture
to remove the system bottleneck." (guideline 4)

A real-time display controller scans frame-buffer lines out of the LMI +
DDR memory on a hard periodic schedule while DMA engines hog the same
controller.  We compare two I/O architectures:

* **round-robin** arbitration — the display is just another initiator and
  its lines arrive late under load (underruns);
* **priority** arbitration — the display's requests carry a high priority
  label (an STBus Type-2+ feature) and win arbitration, trading a little
  DMA throughput for clean scan-out.

The measured quantities are the paper's: who is the bottleneck, and what
architectural knob removes it.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..analysis.report import format_table
from ..core.kernel import Simulator
from ..devices.display import DisplayController
from ..devices.dma import DmaDescriptor, DmaEngine
from ..interconnect.arbiter import FixedPriority, RoundRobin
from ..interconnect.stbus import StbusNode
from ..interconnect.types import AddressRange, StbusType
from ..memory.lmi import LmiConfig, LmiController
from ..sweep import parallel_map
from .common import claim, get_default_jobs

_SPAN = 1 << 24
_FRAMEBUFFER = 0x0010_0000
_DMA_REGION = 0x0040_0000


def _run_variant(policy: str, line_period_cycles: int = 330,
                 lines: int = 40, hog_bytes: int = 24 * 1024) -> Dict:
    sim = Simulator()
    clock = sim.clock(freq_mhz=200, name="clk")
    arbiter = FixedPriority() if policy == "priority" else RoundRobin()
    node = StbusNode(sim, "node", clock, data_width_bytes=8,
                     bus_type=StbusType.T3, arbiter=arbiter,
                     message_arbitration=False)
    lmi = LmiController.attach(sim, node, "lmi", 0, _SPAN,
                               sim.clock(freq_mhz=166, name="lmi_clk"),
                               config=LmiConfig(read_priority=False))
    display_port = node.connect_initiator("display", max_outstanding=4)
    display = DisplayController(
        sim, "display", display_port, framebuffer_base=_FRAMEBUFFER,
        line_bytes=512, lines=lines, line_period_cycles=line_period_cycles,
        burst_bytes=64, beat_bytes=8, line_buffer_lines=2, priority=5)
    engines = []
    for i in range(2):
        port = node.connect_initiator(f"dma{i}", max_outstanding=4)
        engine = DmaEngine(sim, f"dma{i}", port, beat_bytes=8)
        engine.program([DmaDescriptor(
            _DMA_REGION + i * 0x10_0000,
            _DMA_REGION + i * 0x10_0000 + 0x8_0000,
            hog_bytes, burst_bytes=128)])
        engine.start()
        engines.append(engine)
    sim.run(until=1_000_000_000_000)
    if not display.done.triggered:
        raise RuntimeError(f"display did not finish under {policy}")
    hog_done = max((e.all_done.value is not None and sim.now) or 0
                   for e in engines)
    return {
        "underruns": display.underruns.value,
        "underrun_rate": display.underrun_rate,
        "worst_margin_ns": display.worst_margin_ps / 1000,
        "dma_bytes": sum(e.total_bytes_moved for e in engines),
        "finish_ns": sim.now / 1000,
    }


def _variant_job(payload: Tuple[str, int, int]) -> Dict:
    policy, line_period_cycles, lines = payload
    return _run_variant(policy, line_period_cycles, lines)


def run(line_period_cycles: int = 330, lines: int = 40,
        jobs: Optional[int] = None) -> Dict:
    """Both I/O architectures under the same contention."""
    policies = ("round_robin", "priority")
    results = parallel_map(
        _variant_job,
        [(policy, line_period_cycles, lines) for policy in policies],
        jobs=get_default_jobs() if jobs is None else jobs)
    return dict(zip(policies, results))


def report(data: Dict) -> str:
    headers = ["I/O architecture", "underruns", "underrun rate",
               "worst margin (ns)", "DMA bytes", "finish (ns)"]
    rows = []
    for name, entry in data.items():
        rows.append([name, entry["underruns"], entry["underrun_rate"],
                     entry["worst_margin_ns"], entry["dma_bytes"],
                     entry["finish_ns"]])
    header = ("I/O QoS under memory contention: display scan-out vs DMA "
              "hogs (guideline 4)\n")
    return header + format_table(headers, rows, float_digits=2)


def check(data: Dict) -> List[str]:
    failures: List[str] = []
    rr, prio = data["round_robin"], data["priority"]
    claim(failures, rr["underruns"] > 0,
          "round-robin arbitration lets the display underrun under load")
    claim(failures, prio["underruns"] < rr["underruns"],
          "priority arbitration reduces underruns")
    claim(failures, prio["worst_margin_ns"] > rr["worst_margin_ns"],
          "priority arbitration improves the worst-case deadline margin")
    claim(failures, prio["dma_bytes"] == rr["dma_bytes"],
          "the DMA work still completes in full (work conservation)")
    return failures


def main() -> None:  # pragma: no cover
    data = run()
    print(report(data))
    failures = check(data)
    print("\nshape claims:", "all hold" if not failures else failures)


if __name__ == "__main__":  # pragma: no cover
    main()
