"""Arbitration-policy study (extension).

The related-work section surveys resource-sharing mechanisms —
priority-based policies, token/TDMA schemes and lottery-style bandwidth
allocation — and cites the authors' earlier analysis of arbitration
policies [13].  This experiment reruns that comparison on our single-layer
memory-centric setup: same traffic, four arbiters, measuring execution
time (efficiency) and the per-initiator mean-latency spread (fairness).

Expected shape: under a saturated many-to-one pattern, throughput is
memory-bound and near-identical across policies, but *fairness* is not —
fixed priority starves the low-priority initiators (large latency spread)
while round-robin/LRU keep the spread tight; the lottery sits in between,
steering bandwidth by ticket share.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..analysis.report import format_table
from ..core.kernel import Simulator
from ..interconnect.arbiter import (
    FixedPriority,
    LeastRecentlyGranted,
    RoundRobin,
    WeightedLottery,
)
from ..interconnect.stbus import StbusNode
from ..interconnect.types import AddressRange, StbusType
from ..memory.onchip import OnChipMemory
from ..sweep import parallel_map
from ..traffic.iptg import Iptg, IptgPhase
from ..traffic.patterns import Fixed, Sequential
from .common import claim, get_default_jobs

_REGION = 1 << 16


def _make_arbiters():
    return {
        "fixed_priority": FixedPriority(),
        "round_robin": RoundRobin(),
        "lru": LeastRecentlyGranted(),
        "lottery": WeightedLottery(seed=7),
    }


def _run_policy(arbiter, initiators: int, transactions: int) -> Dict:
    sim = Simulator()
    clk = sim.clock(freq_mhz=200, name="clk")
    node = StbusNode(sim, "node", clk, data_width_bytes=4,
                     bus_type=StbusType.T2, arbiter=arbiter,
                     message_arbitration=False)
    port = node.add_target("mem", AddressRange(0, _REGION * initiators),
                           request_depth=2, response_depth=4)
    OnChipMemory(sim, "mem", port, clk, wait_states=1, width_bytes=4)
    iptgs = []
    for i in range(initiators):
        phase = IptgPhase(
            transactions=transactions,
            burst_beats=Fixed(8), beat_bytes=4,
            idle_cycles=Fixed(0), read_fraction=1.0,
            # Higher index = higher hard-wired priority.
            priority=i,
            address_pattern=Sequential(i * _REGION, _REGION))
        ip = node.connect_initiator(f"ip{i}", max_outstanding=2)
        iptgs.append(Iptg(sim, f"ip{i}", ip, [phase], seed=20 + i))
    finish = {}
    sim.all_of([ip.done for ip in iptgs]).add_callback(
        lambda _e: finish.update(ps=sim.now))
    sim.run(until=1_000_000_000_000)
    if "ps" not in finish:
        raise RuntimeError("arbitration study run did not finish")
    latencies = [ip.mean_latency_ps() for ip in iptgs]
    return {
        "execution_ps": finish["ps"],
        "mean_latency_per_ip": latencies,
        "spread": max(latencies) / max(1.0, min(latencies)),
    }


def _policy_job(payload: Tuple[str, int, int]) -> Dict:
    """Picklable worker: the arbiter is rebuilt by name inside the job."""
    name, initiators, transactions = payload
    return _run_policy(_make_arbiters()[name], initiators, transactions)


def run(initiators: int = 6, transactions: int = 40,
        jobs: Optional[int] = None) -> Dict:
    """Run every policy on the same saturated many-to-one workload."""
    names = list(_make_arbiters())
    results = parallel_map(
        _policy_job, [(name, initiators, transactions) for name in names],
        jobs=get_default_jobs() if jobs is None else jobs)
    return dict(zip(names, results))


def report(data: Dict) -> str:
    headers = ["policy", "exec (ns)", "latency spread (max/min)",
               "worst-ip latency (ns)"]
    rows = []
    for name, entry in data.items():
        rows.append([name, entry["execution_ps"] / 1000, entry["spread"],
                     max(entry["mean_latency_per_ip"]) / 1000])
    header = ("Arbitration policies on a saturated many-to-one layer "
              "(efficiency vs fairness)\n")
    return header + format_table(headers, rows, float_digits=2)


def check(data: Dict) -> List[str]:
    failures: List[str] = []
    exec_times = [entry["execution_ps"] for entry in data.values()]
    claim(failures, max(exec_times) / min(exec_times) < 1.15,
          "throughput is memory-bound: policies within 15% on execution time")
    claim(failures,
          data["fixed_priority"]["spread"] > 2 * data["round_robin"]["spread"],
          "fixed priority starves low-priority initiators "
          "(latency spread >> round robin's)")
    claim(failures, data["round_robin"]["spread"] < 1.5,
          "round robin is fair (spread < 1.5)")
    claim(failures, data["lru"]["spread"] < 1.5,
          "LRU is fair (spread < 1.5)")
    return failures


def main() -> None:  # pragma: no cover
    data = run()
    print(report(data))
    failures = check(data)
    print("\nshape claims:", "all hold" if not failures else failures)


if __name__ == "__main__":  # pragma: no cover
    main()
