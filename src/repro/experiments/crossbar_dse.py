"""Application-specific crossbar selection via DSE (extension).

The related work motivates *application-specific* STBus crossbars:
Murali & De Micheli synthesise partial crossbars that meet an
application's traffic demands at a fraction of a full crossbar's wiring
(see PAPERS.md).  This experiment reruns that decision on our
memory-centric platform with :mod:`repro.dse` doing the arguing: a small
exhaustive search over {shared bus, partial multi-layer, full crossbar}
x FIFO depth x memory speed, minimising (latency, idle fraction, wire
cost).

Expected shape: the front captures the paper's trade-off.  A shared bus
is the cheapest member; adding interconnect parallelism (the crossbar or
the bridged multi-layer organisation) buys strictly better latency at
strictly higher wire cost, so neither end dominates the other and both
survive on the front.  The search is exhaustive here, so the front is
exact — and the independent verifier must agree.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from ..dse import explore, front_table, parse_dse
from .common import claim, get_default_jobs


def spec_document(traffic_scale: float = 0.25) -> Dict[str, Any]:
    """The experiment's DSE document (mirrors
    ``examples/configs/dse_crossbar.json``, scaled for CI)."""
    return {
        "base": {
            "protocol": "stbus",
            "topology": "collapsed",
            "traffic_scale": traffic_scale,
            "cpu": {"enabled": False},
        },
        "max_us": 20_000.0,
        "axes": {
            "topology": ["shared", "partial", "crossbar"],
            "fifo_depth": [1, 4],
            "memory.wait_states": [1, 4],
        },
        "objectives": ["latency", "utilization", "cost"],
        "optimizer": {"seed": 1},
    }


def run(traffic_scale: float = 1.0, jobs: Optional[int] = None) -> Dict:
    """Search the topology space and return the verified front."""
    spec = parse_dse(spec_document(traffic_scale=0.25 * traffic_scale))
    outcome = explore(
        spec, jobs=get_default_jobs() if jobs is None else jobs)
    by_cost = sorted(outcome.front,
                     key=lambda m: m.objectives["cost"])
    by_latency = sorted(outcome.front,
                        key=lambda m: m.objectives["latency"])
    return {
        "outcome": outcome,
        "cheapest": by_cost[0] if by_cost else None,
        "fastest": by_latency[0] if by_latency else None,
    }


def report(data: Dict) -> str:
    outcome = data["outcome"]
    header = (f"Application-specific crossbar choice — {outcome.mode} "
              f"search, {len(outcome.evaluated)} designs evaluated, "
              f"{len(outcome.front)} on the Pareto front\n")
    lines = [header, front_table(outcome), ""]
    if data["cheapest"] is not None:
        lines.append(f"cheapest: {data['cheapest'].label}")
        lines.append(f"fastest:  {data['fastest'].label}")
    return "\n".join(lines)


def check(data: Dict) -> List[str]:
    failures: List[str] = []
    outcome = data["outcome"]
    claim(failures, not outcome.violations,
          "independent verifier accepts the front")
    claim(failures, outcome.mode == "exhaustive",
          "the space is small enough for an exact exhaustive front")
    claim(failures, len(outcome.front) >= 2,
          "latency vs wire cost is a real trade-off (front has both ends)")
    cheapest, fastest = data["cheapest"], data["fastest"]
    claim(failures,
          cheapest is not None
          and cheapest.assignment.get("topology") == "shared",
          "the shared bus is the cheapest front member")
    claim(failures,
          fastest is not None
          and fastest.assignment.get("topology") != "shared",
          "interconnect parallelism (crossbar/partial) wins on latency")
    claim(failures,
          fastest is None or cheapest is None
          or fastest.objectives["cost"] > cheapest.objectives["cost"],
          "the latency win costs wires (fastest is the pricier member)")
    return failures


def main() -> None:  # pragma: no cover
    data = run()
    print(report(data))
    failures = check(data)
    print("\nshape claims:", "all hold" if not failures else failures)


if __name__ == "__main__":  # pragma: no cover
    main()
