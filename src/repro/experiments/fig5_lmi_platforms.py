"""Fig. 5 — platform instances with the LMI memory controller and off-chip
DDR SDRAM.

Paper shape:

* distributed STBus best;
* collapsed STBus "can approach the performance of distributed STBus"
  (native STBus interface, no bridge, outstanding transactions fill the
  LMI input FIFO, controller optimisations kick in);
* collapsed AXI "much worst than collapsed STBus" — its simple protocol
  converter cannot perform split transactions, so the LMI FIFO never holds
  more than one pending transaction and the optimisation engine starves;
* distributed AHB worst, and "the performance gap between STBus and AHB
  has increased a lot with respect to Fig. 3" because of the 11-cycle
  memory response latency behind non-split blocking bridges.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..analysis.report import bar_chart
from ..platforms.variants import fig5_instances
from .common import claim, normalized, run_configs

BAR_ORDER = ("distributed_stbus", "collapsed_stbus", "collapsed_axi",
             "distributed_ahb")


def run(traffic_scale: float = 1.0, jobs: Optional[int] = None) -> Dict:
    """Simulate the four LMI platform instances of Fig. 5."""
    instances = fig5_instances(traffic_scale=traffic_scale)
    results = dict(zip(instances, run_configs(instances.values(), jobs=jobs)))
    return {"results": results,
            "normalized": normalized(results, baseline="distributed_stbus")}


def report(data: Dict) -> str:
    norm = {label: data["normalized"][label] for label in BAR_ORDER}
    lines = ["Fig. 5 — normalised execution time with LMI + DDR SDRAM "
             "(distributed STBus = 1.0)",
             bar_chart(norm, width=40), ""]
    for label in BAR_ORDER:
        result = data["results"][label]
        lines.append(
            f"{label:18s} lmi merges={result.extra.get('lmi_merges', 0):5.0f} "
            f"row-hit rate={result.extra.get('lmi_row_hit_rate', 0):.2f}")
    return "\n".join(lines)


def check(data: Dict) -> List[str]:
    failures: List[str] = []
    norm = data["normalized"]
    results = data["results"]
    claim(failures, min(norm.values()) == norm["distributed_stbus"],
          "distributed STBus is the fastest instance")
    claim(failures, norm["collapsed_stbus"] < 1.25,
          "collapsed STBus approaches distributed STBus")
    claim(failures, norm["collapsed_axi"] > 1.5 * norm["collapsed_stbus"],
          "collapsed AXI much worse than collapsed STBus (non-split converter)")
    claim(failures, norm["distributed_ahb"] == max(norm.values()),
          "distributed AHB is the slowest instance")
    claim(failures, norm["distributed_ahb"] > 1.8,
          "the STBus-AHB gap increased a lot vs Fig. 3")
    # The mechanism: split paths feed the optimisation engine, non-split
    # paths starve it — visible directly in the opcode-merge counters.
    claim(failures, results["distributed_stbus"].extra["lmi_merges"] > 0,
          "LMI opcode merging active on the split STBus path")
    claim(failures, results["collapsed_axi"].extra["lmi_merges"] == 0,
          "LMI optimisations starved behind the non-split converter")
    claim(failures, results["distributed_ahb"].extra["lmi_merges"] == 0,
          "LMI optimisations starved behind blocking AHB bridges")
    return failures


def main() -> None:  # pragma: no cover
    data = run()
    print(report(data))
    failures = check(data)
    print("\nshape claims:", "all hold" if not failures else failures)


if __name__ == "__main__":  # pragma: no cover
    main()
