"""Section 4.1 — single-layer shared-bus experiments.

Two traffic patterns on one interconnect layer:

* **many-to-many** (§4.1.1): several initiators, several memory cores.
  Advanced protocols (STBus, AXI) mask slave wait states by serving
  parallel flows; AHB cannot.  "the two schemes perform similarly with bus
  utilizations up to 80% ... above that threshold AXI proves more robust
  ... however STBus was showed to bridge the performance gap by adding
  more buffering resources at the target interfaces."

* **many-to-one** (§4.1.2): one slave with 1 wait state.  Every protocol
  has a zero-handover mechanism, so all sustain the 50% response-channel
  efficiency bound and "simulations did not show significant differences".
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..analysis.metrics import RunResult, summarize_transactions
from ..analysis.report import format_table
from ..core.kernel import Simulator
from ..interconnect.types import AddressRange, StbusType
from ..memory.onchip import OnChipMemory
from ..platforms.reference import make_fabric
from ..sweep import parallel_map
from ..traffic.iptg import Iptg, IptgPhase
from ..traffic.patterns import Fixed, Sequential
from .common import claim, get_default_jobs

_REGION = 1 << 16


def build_single_layer(protocol: str, initiators: int, targets: int,
                       wait_states: int = 1, response_depth: int = 2,
                       request_depth: int = 1,
                       transactions: int = 60, burst_beats: int = 8,
                       idle_cycles: int = 0, read_fraction: float = 0.7,
                       freq_mhz: float = 200.0, width_bytes: int = 4,
                       stbus_type: StbusType = StbusType.T2,
                       max_outstanding: int = 4, seed: int = 3):
    """One shared layer with ``initiators`` IPTGs and ``targets`` memories.

    Returns ``(sim, fabric, iptgs)`` ready to run.  The STBus instance
    defaults to Type 2 — split and pipelined, but with packet-atomic
    response delivery, which is what makes target-side prefetch buffering
    matter (Type 3's shaped packets can interleave and need it less).
    """
    sim = Simulator()
    if protocol == "stbus-xbar":
        from ..interconnect.crossbar import StbusCrossbar

        clock = sim.clock(freq_mhz=freq_mhz, name="layer.clk")
        fabric = StbusCrossbar(sim, "layer", clock,
                               data_width_bytes=width_bytes,
                               bus_type=stbus_type)
    else:
        fabric = make_fabric(sim, "layer", protocol, freq_mhz, width_bytes,
                             stbus_type)
    for t in range(targets):
        base = t * (_REGION * initiators)
        port = fabric.add_target(
            f"mem{t}", AddressRange(base, _REGION * initiators),
            request_depth=request_depth, response_depth=response_depth)
        OnChipMemory(sim, f"mem{t}", port, fabric.clock,
                     wait_states=wait_states, width_bytes=width_bytes)
    iptgs = []
    for i in range(initiators):
        # Interleave initiators across targets so the pattern is genuinely
        # many-to-many (initiator i's stream walks "its" region of target
        # i % targets).
        target_index = i % targets
        base = target_index * (_REGION * initiators) + \
            (i // targets) * _REGION
        phase = IptgPhase(
            transactions=transactions,
            burst_beats=Fixed(burst_beats),
            beat_bytes=width_bytes,
            idle_cycles=Fixed(idle_cycles),
            read_fraction=read_fraction,
            address_pattern=Sequential(base, _REGION),
        )
        port = fabric.connect_initiator(f"ip{i}",
                                        max_outstanding=max_outstanding)
        iptgs.append(Iptg(sim, f"ip{i}", port, [phase], address_base=base,
                          address_span=_REGION, seed=seed + i))
    return sim, fabric, iptgs


def _run_layer_job(kwargs: Dict) -> RunResult:
    """Picklable worker wrapper so layer runs can fan out across processes."""
    return _run_layer(**kwargs)


def _run_layer(**kwargs) -> RunResult:
    protocol = kwargs.pop("protocol")
    sim, fabric, iptgs = build_single_layer(protocol, **kwargs)
    finish = {"ps": None}
    done = sim.all_of([ip.done for ip in iptgs])
    done.add_callback(lambda _e: finish.update(ps=sim.now))
    sim.run(until=500_000_000_000)
    if finish["ps"] is None:
        raise RuntimeError(f"single-layer {protocol} did not finish")
    txns = [t for ip in iptgs for t in ip.transactions]
    return summarize_transactions(protocol, finish["ps"], txns,
                                  utilization=fabric.utilization_report())


# ----------------------------------------------------------------------
# §4.1.1 many-to-many
# ----------------------------------------------------------------------
def run_many_to_many(initiators: int = 8, targets: int = 4,
                     transactions: int = 50,
                     idle_sweep: Optional[List[int]] = None,
                     wait_states: int = 2, read_fraction: float = 0.9,
                     max_outstanding: int = 6,
                     jobs: Optional[int] = None) -> Dict:
    """Offered-load sweep (idle cycles down = load up) across protocols,
    plus the STBus target-buffering remedy at saturation.

    Minimum buffer stages everywhere for the load sweep (the [20] setup);
    the buffering series then grows the STBus target interfaces' prefetch
    and request FIFOs at the congested operating point.
    """
    if idle_sweep is None:
        idle_sweep = [200, 60, 20, 0]
    common = dict(initiators=initiators, targets=targets,
                  transactions=transactions, wait_states=wait_states,
                  read_fraction=read_fraction,
                  max_outstanding=max_outstanding)
    # Every independent layer run in one flat fan-out, regrouped below.
    plan = [dict(protocol=protocol, idle_cycles=idle, response_depth=2,
                 request_depth=1, **common)
            for idle in idle_sweep for protocol in ("ahb", "stbus", "axi")]
    depths = ((1, 1), (2, 2), (4, 4), (8, 8))
    plan.extend(dict(protocol="stbus", idle_cycles=idle_sweep[-1],
                     response_depth=response_depth,
                     request_depth=request_depth, **common)
                for request_depth, response_depth in depths)
    # The crossbar instance of the same node: per-flow physical paths
    # remove the shared-channel contention altogether.
    plan.append(dict(protocol="stbus-xbar", idle_cycles=idle_sweep[-1],
                     response_depth=2, request_depth=1, **common))
    results = parallel_map(_run_layer_job, plan,
                           jobs=get_default_jobs() if jobs is None else jobs)
    rows = []
    cursor = iter(results)
    for idle in idle_sweep:
        entry = {"idle_cycles": idle}
        for protocol in ("ahb", "stbus", "axi"):
            entry[protocol] = next(cursor)
        rows.append(entry)
    buffering_series = [(depth_pair, next(cursor)) for depth_pair in depths]
    crossbar = next(cursor)
    return {"rows": rows, "buffering_series": buffering_series,
            "crossbar": crossbar,
            "initiators": initiators, "targets": targets}


def report_many_to_many(results: Dict) -> str:
    headers = ["idle", "AHB (ns)", "STBus (ns)", "AXI (ns)",
               "STBus/AXI", "AHB/AXI"]
    body = []
    for row in results["rows"]:
        axi = row["axi"].execution_time_ns
        body.append([
            row["idle_cycles"],
            row["ahb"].execution_time_ns,
            row["stbus"].execution_time_ns,
            axi,
            row["stbus"].execution_time_ns / axi,
            row["ahb"].execution_time_ns / axi,
        ])
    table = format_table(headers, body, float_digits=2)
    congested = results["rows"][-1]
    axi = congested["axi"].execution_time_ns
    series = "\nSTBus target-buffering series at saturation (AXI = " \
             f"{axi:.0f} ns):"
    for (req_d, resp_d), result in results["buffering_series"]:
        series += (f"\n  req/resp FIFO {req_d}/{resp_d}: "
                   f"{result.execution_time_ns:.0f} ns "
                   f"({result.execution_time_ns / axi:.2f}x AXI)")
    xbar = results["crossbar"]
    series += (f"\nSTBus crossbar instance: {xbar.execution_time_ns:.0f} ns "
               f"({xbar.execution_time_ns / axi:.2f}x AXI)")
    return table + series


def check_many_to_many(results: Dict) -> List[str]:
    failures: List[str] = []
    light = results["rows"][0]
    congested = results["rows"][-1]
    axi_l = light["axi"].execution_time_ps
    stbus_l = light["stbus"].execution_time_ps
    claim(failures, abs(stbus_l - axi_l) / axi_l < 0.10,
          "STBus ~ AXI at light/moderate load (within 10%)")
    claim(failures,
          congested["ahb"].execution_time_ps
          > 1.5 * congested["axi"].execution_time_ps,
          "AHB clearly worse than AXI under many-to-many congestion")
    claim(failures,
          congested["stbus"].execution_time_ps
          >= congested["axi"].execution_time_ps,
          "AXI at least as good as minimum-buffer STBus at saturation")
    series = results["buffering_series"]
    shallow = series[0][1].execution_time_ps
    deep = series[-1][1].execution_time_ps
    axi_c = congested["axi"].execution_time_ps
    claim(failures, deep < shallow,
          "deeper target buffering speeds STBus up")
    claim(failures, abs(deep - axi_c) < abs(shallow - axi_c),
          "deeper target buffering closes the STBus-AXI gap")
    claim(failures,
          all(series[i][1].execution_time_ps >= series[i + 1][1].execution_time_ps
              for i in range(len(series) - 1)),
          "the buffering series improves monotonically")
    claim(failures,
          results["crossbar"].execution_time_ps
          <= 1.3 * congested["axi"].execution_time_ps,
          "the crossbar STBus instance is competitive with AXI")
    return failures


# ----------------------------------------------------------------------
# §4.1.2 many-to-one
# ----------------------------------------------------------------------
def run_many_to_one(initiators: int = 8, transactions: int = 60,
                    jobs: Optional[int] = None) -> Dict:
    """All initiators hammer one 1-wait-state memory with burst reads."""
    protocols = ("ahb", "stbus", "axi")
    runs = parallel_map(
        _run_layer_job,
        [dict(protocol=protocol, initiators=initiators, targets=1,
              transactions=transactions, idle_cycles=0, read_fraction=1.0,
              wait_states=1, response_depth=2) for protocol in protocols],
        jobs=get_default_jobs() if jobs is None else jobs)
    return {"results": dict(zip(protocols, runs))}


def _response_efficiency(result: RunResult) -> float:
    """Utilisation of the read-data return channel."""
    for key in ("response", "r", "bus"):
        if key in result.utilization:
            return result.utilization[key]
    raise KeyError(f"no response channel in {sorted(result.utilization)}")


def report_many_to_one(results: Dict) -> str:
    headers = ["protocol", "exec (ns)", "response-channel efficiency"]
    body = [[p, r.execution_time_ns, _response_efficiency(r)]
            for p, r in results["results"].items()]
    return format_table(headers, body, float_digits=3)


def check_many_to_one(results: Dict) -> List[str]:
    failures: List[str] = []
    times = {p: r.execution_time_ps for p, r in results["results"].items()}
    fastest, slowest = min(times.values()), max(times.values())
    claim(failures, slowest / fastest < 1.10,
          "no significant protocol differences in many-to-one (within 10%)")
    for protocol, result in results["results"].items():
        eff = _response_efficiency(result)
        claim(failures, 0.40 <= eff <= 0.60,
              f"{protocol}: response-channel efficiency ~50% (got {eff:.2f})")
    return failures
