"""Ablation studies behind the paper's design guidelines (Section 6).

Each ablation isolates one mechanism the guidelines call out:

``bridge_split``
    Guideline 3(ii)/5: replace the lightweight blocking bridges of the
    distributed AXI platform with split-capable ones — the AXI platform
    recovers most of the STBus platform's performance, confirming that
    "advanced features of AXI ... are vanished by poor bridge
    functionality", i.e. it is the bridge, not the protocol.

``max_outstanding``
    Guideline 3(i): sweep the initiators' outstanding-transaction budget on
    the distributed STBus + LMI platform.

``lmi_optimisations``
    Guideline 2: turn the LMI's lookahead and opcode merging off/on and
    watch execution time and the row-hit rate.

``message_arbitration``
    Section 3: message-granularity arbitration keeps optimisable sequences
    together "all the way to the controller"; without it the LMI sees
    interleaved traffic and merges less.

``lmi_fifo_depth``
    Guideline 2: the memory bus interface's buffering bounds how much the
    controller can optimise.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional, Tuple

from ..analysis.report import format_table
from ..memory.lmi import LmiConfig
from ..platforms.config import PlatformConfig
from ..platforms.variants import instance, lmi_memory
from .common import claim, run_configs


def _with_outstanding(config: PlatformConfig, depth: int) -> PlatformConfig:
    clusters = tuple(
        replace(cluster, ips=tuple(replace(ip, max_outstanding=depth)
                                   for ip in cluster.ips))
        for cluster in config.clusters)
    return config.scaled(clusters=clusters)


def _plan(traffic_scale: float) -> List[Tuple[str, object, PlatformConfig]]:
    """Every ablation point as ``(section, key, config)`` — one flat list
    so the whole study fans out through a single :func:`run_configs` call.
    """
    plan: List[Tuple[str, object, PlatformConfig]] = []

    # -- bridge split capability (distributed AXI) ----------------------
    base_axi = instance("axi", "distributed", lmi_memory(),
                        traffic_scale=traffic_scale)
    plan.append(("bridge_split", "blocking_bridges", base_axi))
    plan.append(("bridge_split", "split_bridges", base_axi.scaled(
        bridge_split_override=True, lmi_bridge_split=True)))
    plan.append(("bridge_split", "stbus_reference", instance(
        "stbus", "distributed", lmi_memory(), traffic_scale=traffic_scale)))

    # -- initiator max outstanding (distributed STBus + LMI) -------------
    base_stbus = instance("stbus", "distributed", lmi_memory(),
                          traffic_scale=traffic_scale)
    for depth in (1, 2, 4, 8):
        plan.append(("max_outstanding", depth,
                     _with_outstanding(base_stbus, depth)))

    # -- LMI optimisation engine -----------------------------------------
    dumb = lmi_memory(LmiConfig(lookahead_depth=1, merge_limit=1))
    smart = lmi_memory(LmiConfig(lookahead_depth=4, merge_limit=4))
    plan.append(("lmi_optimisations", "fifo_order_no_merge", instance(
        "stbus", "distributed", dumb, traffic_scale=traffic_scale)))
    plan.append(("lmi_optimisations", "lookahead_and_merge", instance(
        "stbus", "distributed", smart, traffic_scale=traffic_scale)))

    # -- message arbitration ----------------------------------------------
    plan.append(("message_arbitration", "packet_granularity", instance(
        "stbus", "distributed", lmi_memory(),
        traffic_scale=traffic_scale, message_arbitration=False)))
    plan.append(("message_arbitration", "message_granularity", instance(
        "stbus", "distributed", lmi_memory(),
        traffic_scale=traffic_scale, message_arbitration=True)))

    # -- LMI input FIFO depth ----------------------------------------------
    for depth in (1, 2, 4, 8):
        memory = lmi_memory(LmiConfig(input_fifo_depth=depth,
                                      lookahead_depth=min(4, depth)))
        plan.append(("lmi_fifo_depth", depth, instance(
            "stbus", "distributed", memory, traffic_scale=traffic_scale)))

    # -- read priority over posted writes -----------------------------------
    plan.append(("read_priority", "fifo_order", instance(
        "stbus", "distributed", lmi_memory(LmiConfig(read_priority=False)),
        traffic_scale=traffic_scale)))
    plan.append(("read_priority", "reads_bypass_writes", instance(
        "stbus", "distributed", lmi_memory(LmiConfig(read_priority=True)),
        traffic_scale=traffic_scale)))

    # -- SDR vs DDR device --------------------------------------------------
    # "The controller can drive both SDR SDRAM and DDR SDRAM memory
    # devices" (Section 3.1): same platform, halved data rate.
    from ..memory.timing import DDR_SDRAM, SDR_SDRAM
    from ..platforms.config import MemoryConfig

    plan.append(("sdram_device", "sdr", instance(
        "stbus", "distributed", MemoryConfig(kind="lmi", sdram=SDR_SDRAM),
        traffic_scale=traffic_scale)))
    plan.append(("sdram_device", "ddr", instance(
        "stbus", "distributed", MemoryConfig(kind="lmi", sdram=DDR_SDRAM),
        traffic_scale=traffic_scale)))
    return plan


def run(traffic_scale: float = 0.5, jobs: Optional[int] = None) -> Dict:
    """Run every ablation; returns one result table per mechanism."""
    plan = _plan(traffic_scale)
    results = run_configs([config for _, __, config in plan], jobs=jobs)
    data: Dict = {}
    for (section, key, _), result in zip(plan, results):
        data.setdefault(section, {})[key] = result
    return data


def report(data: Dict) -> str:
    sections = []

    bs = data["bridge_split"]
    sections.append("Ablation: bridge split capability (distributed AXI + LMI)")
    sections.append(format_table(
        ["variant", "exec (ns)"],
        [[k, v.execution_time_ns] for k, v in bs.items()], float_digits=0))

    mo = data["max_outstanding"]
    sections.append("\nAblation: initiator max outstanding (distributed STBus + LMI)")
    sections.append(format_table(
        ["outstanding", "exec (ns)"],
        [[k, v.execution_time_ns] for k, v in mo.items()], float_digits=0))

    lo = data["lmi_optimisations"]
    sections.append("\nAblation: LMI optimisation engine")
    sections.append(format_table(
        ["variant", "exec (ns)", "rw commands", "merges"],
        [[k, v.execution_time_ns, v.extra["lmi_rw_commands"],
          v.extra["lmi_merges"]] for k, v in lo.items()], float_digits=2))

    ma = data["message_arbitration"]
    sections.append("\nAblation: message-based arbitration")
    sections.append(format_table(
        ["variant", "exec (ns)", "merges"],
        [[k, v.execution_time_ns, v.extra["lmi_merges"]]
         for k, v in ma.items()], float_digits=0))

    fd = data["lmi_fifo_depth"]
    sections.append("\nAblation: LMI input FIFO depth")
    sections.append(format_table(
        ["depth", "exec (ns)", "merges"],
        [[k, v.execution_time_ns, v.extra["lmi_merges"]]
         for k, v in fd.items()], float_digits=0))

    rp = data["read_priority"]
    sections.append("\nAblation: read priority over posted writes")
    sections.append(format_table(
        ["variant", "exec (ns)", "mean latency (ns)"],
        [[k, v.execution_time_ns, v.mean_latency_ps / 1000]
         for k, v in rp.items()], float_digits=1))

    sd = data["sdram_device"]
    sections.append("\nAblation: SDR vs DDR SDRAM device")
    sections.append(format_table(
        ["device", "exec (ns)"],
        [[k, v.execution_time_ns] for k, v in sd.items()], float_digits=0))

    return "\n".join(sections)


def check(data: Dict) -> List[str]:
    failures: List[str] = []
    bs = data["bridge_split"]
    claim(failures,
          bs["split_bridges"].execution_time_ps
          < 0.8 * bs["blocking_bridges"].execution_time_ps,
          "split-capable bridges recover a large share of AXI performance")

    mo = data["max_outstanding"]
    claim(failures,
          mo[4].execution_time_ps < mo[1].execution_time_ps,
          "more outstanding transactions speed up the distributed platform")

    lo = data["lmi_optimisations"]
    claim(failures,
          lo["lookahead_and_merge"].execution_time_ps
          <= lo["fifo_order_no_merge"].execution_time_ps,
          "LMI lookahead + merging do not slow the platform down")
    claim(failures,
          lo["lookahead_and_merge"].extra["lmi_rw_commands"]
          < lo["fifo_order_no_merge"].extra["lmi_rw_commands"],
          "opcode merging issues fewer SDRAM data commands for the same work")

    ma = data["message_arbitration"]
    claim(failures,
          ma["message_granularity"].extra["lmi_merges"]
          > ma["packet_granularity"].extra["lmi_merges"],
          "message arbitration delivers more mergeable sequences to the LMI")

    fd = data["lmi_fifo_depth"]
    claim(failures,
          fd[4].execution_time_ps <= fd[1].execution_time_ps,
          "a deeper LMI input FIFO does not hurt")
    claim(failures, fd[4].extra["lmi_merges"] > fd[1].extra["lmi_merges"],
          "a deeper LMI input FIFO enables more merging")

    rp = data["read_priority"]
    claim(failures,
          rp["reads_bypass_writes"].mean_latency_ps
          <= rp["fifo_order"].mean_latency_ps * 1.05,
          "read priority does not hurt mean transaction latency")

    sd = data["sdram_device"]
    claim(failures,
          sd["ddr"].execution_time_ps < sd["sdr"].execution_time_ps,
          "the DDR device outperforms SDR on the same platform")
    return failures


def main() -> None:  # pragma: no cover
    data = run()
    print(report(data))
    failures = check(data)
    print("\nshape claims:", "all hold" if not failures else failures)


if __name__ == "__main__":  # pragma: no cover
    main()
