"""Shared experiment infrastructure.

Every experiment module exposes

``run(...) -> dict``
    Execute the simulations and return structured results (figures-as-data).
``report(results) -> str``
    Render the paper-style rows/series as text.
``check(results) -> list[str]``
    Verify the *shape* claims of the paper against the results; returns a
    list of failed-claim descriptions (empty = all claims hold).

The benchmark harness calls ``run`` under pytest-benchmark and asserts
``check`` comes back clean.

Multi-configuration loops route through :func:`run_configs`, which hands
the independent points to the :mod:`repro.sweep` engine — parallel worker
processes when ``jobs > 1`` (or ``$REPRO_JOBS`` is set), with completed
points cached on disk so repeated runs skip already-simulated
configurations.  Results are deterministic and identical to the serial
path either way.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from ..analysis.metrics import RunResult
from ..core.kernel import Simulator
from ..platforms.config import PlatformConfig
from ..platforms.reference import PlatformInstance, build_platform
from ..sweep import DEFAULT_MAX_PS, default_jobs, sweep

#: Process-wide default worker count override (set by the CLI ``--jobs``).
_jobs_override: Optional[int] = None


def set_default_jobs(jobs: Optional[int]) -> None:
    """Set the worker count used when an experiment gets ``jobs=None``.

    ``None`` restores the environment default (``$REPRO_JOBS`` or serial).
    The CLI calls this once so every experiment an invocation touches
    inherits its ``--jobs`` flag without threading it through each
    ``run()`` signature twice.
    """
    global _jobs_override
    _jobs_override = None if jobs is None else max(1, int(jobs))


def get_default_jobs() -> int:
    """The effective worker count for ``jobs=None`` callers."""
    return _jobs_override if _jobs_override is not None else default_jobs()


def run_config(config: PlatformConfig,
               max_ps: int = DEFAULT_MAX_PS) -> RunResult:
    """Elaborate and run one platform configuration on a fresh simulator."""
    sim = Simulator()
    platform = build_platform(sim, config)
    return platform.run(max_ps=max_ps)


def run_configs(configs: Iterable[PlatformConfig],
                max_ps: int = DEFAULT_MAX_PS,
                jobs: Optional[int] = None,
                cache=None) -> List[RunResult]:
    """Run many independent configurations; results in input order.

    The parallel/caching behaviour lives in :func:`repro.sweep.sweep`;
    this is the thin map every experiment's multi-config loop goes
    through.  ``jobs=None`` uses the CLI/environment default.
    """
    outcomes = sweep(list(configs), max_ps=max_ps,
                     jobs=get_default_jobs() if jobs is None else jobs,
                     cache=cache)
    return [outcome.result for outcome in outcomes]


def run_config_with_platform(config: PlatformConfig,
                             max_ps: int = DEFAULT_MAX_PS):
    """Like :func:`run_config` but also returns the platform for inspection."""
    sim = Simulator()
    platform = build_platform(sim, config)
    result = platform.run(max_ps=max_ps)
    return result, platform


def normalized(results: Dict[str, RunResult],
               baseline: Optional[str] = None) -> Dict[str, float]:
    """Execution times normalised to ``baseline`` (default: first key).

    A zero-time baseline (a degenerate or failed run) yields ``inf`` for
    every non-zero entry instead of raising ``ZeroDivisionError``; a
    zero-time entry over a zero baseline is reported as ``1.0`` (equal).
    """
    if not results:
        return {}
    if baseline is None:
        baseline = next(iter(results))
    base = results[baseline].execution_time_ps
    if base == 0:
        return {label: 1.0 if r.execution_time_ps == 0 else float("inf")
                for label, r in results.items()}
    return {label: r.execution_time_ps / base for label, r in results.items()}


def claim(failures: list, condition: bool, description: str) -> None:
    """Record a shape-claim failure."""
    if not condition:
        failures.append(description)
