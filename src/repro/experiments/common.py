"""Shared experiment infrastructure.

Every experiment module exposes

``run(...) -> dict``
    Execute the simulations and return structured results (figures-as-data).
``report(results) -> str``
    Render the paper-style rows/series as text.
``check(results) -> list[str]``
    Verify the *shape* claims of the paper against the results; returns a
    list of failed-claim descriptions (empty = all claims hold).

The benchmark harness calls ``run`` under pytest-benchmark and asserts
``check`` comes back clean.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..analysis.metrics import RunResult
from ..core.kernel import Simulator
from ..platforms.config import PlatformConfig
from ..platforms.reference import PlatformInstance, build_platform

#: Default wall-clock guard for platform runs (simulated picoseconds).
DEFAULT_MAX_PS = 20_000_000_000_000


def run_config(config: PlatformConfig,
               max_ps: int = DEFAULT_MAX_PS) -> RunResult:
    """Elaborate and run one platform configuration on a fresh simulator."""
    sim = Simulator()
    platform = build_platform(sim, config)
    return platform.run(max_ps=max_ps)


def run_config_with_platform(config: PlatformConfig,
                             max_ps: int = DEFAULT_MAX_PS):
    """Like :func:`run_config` but also returns the platform for inspection."""
    sim = Simulator()
    platform = build_platform(sim, config)
    result = platform.run(max_ps=max_ps)
    return result, platform


def normalized(results: Dict[str, RunResult],
               baseline: Optional[str] = None) -> Dict[str, float]:
    """Execution times normalised to ``baseline`` (default: first key)."""
    if not results:
        return {}
    if baseline is None:
        baseline = next(iter(results))
    base = results[baseline].execution_time_ps
    return {label: r.execution_time_ps / base for label, r in results.items()}


def claim(failures: list, condition: bool, description: str) -> None:
    """Record a shape-claim failure."""
    if not condition:
        failures.append(description)
