"""Fig. 4 — distributed vs centralized interconnect as a function of
memory speed.

"The performance ratio between collapsed and distributed interconnect
solutions ... changes if the memory device gets progressively slower in
responding to access requests.  Fig. 4 clearly shows the increasing
advantage of distributed solutions as the memory latency increases."

The sweep variable is the memory's initial response latency.  Per Section
4.2, the centralized instance carries the simple slave's single-slot,
non-pipelined target interface ("each transaction is blocking"), while the
distributed instance has the distributed buffering that lets multiple
outstanding transactions fill the master-to-slave path (guideline 3) — see
DESIGN.md for the modelling discussion.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..analysis.report import format_table
from ..platforms.variants import fig4_pair
from .common import claim, run_configs

DEFAULT_LATENCIES = (0, 2, 4, 8, 16, 32)


def run(latencies: Optional[List[int]] = None,
        traffic_scale: float = 0.5, jobs: Optional[int] = None) -> Dict:
    """Sweep memory response latency for both topologies."""
    if latencies is None:
        latencies = list(DEFAULT_LATENCIES)
    # Flatten the (latency x topology) grid into one fan-out, then regroup.
    grid = [(latency, label, config) for latency in latencies
            for label, config in
            fig4_pair(latency, traffic_scale=traffic_scale).items()]
    results = run_configs([config for _, __, config in grid], jobs=jobs)
    series = []
    for latency in latencies:
        pair = {label: result
                for (lat, label, _), result in zip(grid, results)
                if lat == latency}
        series.append({
            "latency": latency,
            "collapsed": pair["collapsed"],
            "distributed": pair["distributed"],
            "ratio": (pair["collapsed"].execution_time_ps
                      / pair["distributed"].execution_time_ps),
        })
    return {"series": series}


def report(data: Dict) -> str:
    headers = ["mem latency (cyc)", "centralized (ns)", "distributed (ns)",
               "centralized/distributed"]
    rows = [[point["latency"],
             point["collapsed"].execution_time_ns,
             point["distributed"].execution_time_ns,
             point["ratio"]] for point in data["series"]]
    header = ("Fig. 4 — execution-time ratio, centralized over distributed, "
              "vs memory response latency\n")
    return header + format_table(headers, rows, float_digits=3)


def check(data: Dict) -> List[str]:
    failures: List[str] = []
    series = data["series"]
    first, last = series[0], series[-1]
    claim(failures, 0.85 <= first["ratio"] <= 1.15,
          "fast memory: topologies within 15% (crossing latency vs blocking)")
    claim(failures, last["ratio"] > 1.5,
          "slow memory: distributed wins by a wide margin")
    ratios = [point["ratio"] for point in series]
    claim(failures,
          all(ratios[i] <= ratios[i + 1] + 0.05 for i in range(len(ratios) - 1)),
          "the distributed advantage grows (quasi-monotonically) with latency")
    return failures


def main() -> None:  # pragma: no cover
    data = run()
    print(report(data))
    failures = check(data)
    print("\nshape claims:", "all hold" if not failures else failures)


if __name__ == "__main__":  # pragma: no cover
    main()
