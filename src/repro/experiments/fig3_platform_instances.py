"""Fig. 3 — normalised execution time of MPSoC platform instances
(on-chip shared memory, 1 wait state).

Paper shape:

* collapsed AXI ~ collapsed STBus — "AXI and STBus collapsed variants
  exhibit almost the same performance";
* full (multi-layer) STBus ~ single-layer STBus — "the two solutions show
  negligible differences";
* full AHB clearly worse — "AHB solution is ineffective, due to the fact
  that AHB-AHB bridges are blocking on each transaction";
* distributed AXI degraded towards full AHB — "advanced features of AXI
  ... are vanished by poor bridge functionality".
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..analysis.report import bar_chart
from ..platforms.variants import fig3_instances
from .common import claim, normalized, run_configs

#: Order the bars appear in the figure.
BAR_ORDER = ("collapsed_axi", "collapsed_stbus", "full_stbus", "full_ahb",
             "distributed_axi")


def run(traffic_scale: float = 1.0, jobs: Optional[int] = None) -> Dict:
    """Simulate the five platform instances of Fig. 3."""
    instances = fig3_instances(traffic_scale=traffic_scale)
    results = dict(zip(instances, run_configs(instances.values(), jobs=jobs)))
    return {"results": results,
            "normalized": normalized(results, baseline="collapsed_axi")}


def report(data: Dict) -> str:
    norm = {label: data["normalized"][label] for label in BAR_ORDER}
    header = "Fig. 3 — normalised execution time (collapsed AXI = 1.0)\n"
    return header + bar_chart(norm, width=40)


def check(data: Dict) -> List[str]:
    failures: List[str] = []
    norm = data["normalized"]
    claim(failures, abs(norm["collapsed_stbus"] - norm["collapsed_axi"]) < 0.10,
          "collapsed AXI ~ collapsed STBus")
    claim(failures, abs(norm["full_stbus"] - norm["collapsed_stbus"]) < 0.10,
          "full STBus ~ collapsed STBus (multi-layer compensation)")
    claim(failures, norm["full_ahb"] > 1.12,
          "full AHB clearly worse (blocking AHB-AHB bridges)")
    claim(failures, norm["distributed_axi"] > 1.05,
          "distributed AXI degraded by lightweight blocking bridges")
    claim(failures, norm["distributed_axi"] <= norm["full_ahb"] + 0.05,
          "distributed AXI lands in full-AHB territory, not above it")
    stbus_group = max(norm["collapsed_stbus"], norm["full_stbus"],
                      norm["collapsed_axi"])
    claim(failures, norm["full_ahb"] > stbus_group and
          norm["distributed_axi"] > stbus_group,
          "bridge-limited variants are the slowest group")
    return failures


def main() -> None:  # pragma: no cover - CLI convenience
    data = run()
    print(report(data))
    failures = check(data)
    print("\nshape claims:", "all hold" if not failures else failures)


if __name__ == "__main__":  # pragma: no cover
    main()
