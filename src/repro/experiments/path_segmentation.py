"""Path-segmentation study (extension; guideline 5).

"More research is needed to understand whether it is really worth
increasing bridge complexity, instead of keeping lightweight bridges for
path segmentation and traffic routing and pushing complexity at the
system interconnect boundaries, which is known as the network-on-chip
solution." (Section 6, guideline 5)

This experiment quantifies the trade the guideline poses: a master-to-
memory path segmented into 1..N hops, once with lightweight (blocking)
bridges and once with split-capable GenConv converters, under pipelined
read traffic.  Expected shape: with split bridges, each extra hop costs
only its crossing latency (the pipeline stays filled — throughput is
nearly flat); with blocking bridges every hop multiplies the serialised
round trip, so execution time grows steeply with hop count.  That
difference *is* the cost of cheap path segmentation, and the motivation
for pushing complexity to the boundaries.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..analysis.report import format_table
from ..bridge.genconv import GenConvBridge
from ..bridge.lightweight import LightweightBridge
from ..core.kernel import Simulator
from ..interconnect.stbus import StbusNode
from ..interconnect.types import AddressRange, StbusType
from ..memory.onchip import OnChipMemory
from ..sweep import parallel_map
from .common import claim, get_default_jobs

_BRIDGE_KINDS = {"lightweight": LightweightBridge, "genconv": GenConvBridge}

_SPAN = 1 << 20


def build_chain(sim: Simulator, hops: int, bridge_cls,
                wait_states: int = 2, crossing_cycles: int = 2):
    """``hops`` bridges in series: node0 -> br -> node1 -> ... -> memory.

    Returns ``(first_node, memory)``; initiators attach to the first node.
    """
    nodes = []
    for i in range(hops + 1):
        clock = sim.clock(freq_mhz=250, name=f"chain{i}.clk")
        nodes.append(StbusNode(sim, f"chain{i}", clock, data_width_bytes=8,
                               bus_type=StbusType.T3))
    window = AddressRange(0, _SPAN)
    for i in range(hops):
        bridge_cls(sim, f"hop{i}", nodes[i], nodes[i + 1], window,
                   crossing_cycles=crossing_cycles)
    port = nodes[-1].add_target("mem", window, request_depth=2,
                                response_depth=4)
    memory = OnChipMemory(sim, "mem", port, nodes[-1].clock,
                          wait_states=wait_states, width_bytes=8)
    return nodes[0], memory


def _run_chain(hops: int, bridge_cls, initiators: int = 2,
               transactions: int = 20) -> Dict:
    from ..traffic.iptg import Iptg, IptgPhase
    from ..traffic.patterns import Fixed, Sequential

    sim = Simulator()
    first, __ = build_chain(sim, hops, bridge_cls)
    iptgs = []
    for i in range(initiators):
        base = i * (_SPAN // initiators)
        phase = IptgPhase(transactions=transactions, burst_beats=Fixed(8),
                          beat_bytes=8, idle_cycles=Fixed(0),
                          read_fraction=1.0,
                          address_pattern=Sequential(base,
                                                     _SPAN // initiators))
        port = first.connect_initiator(f"ip{i}", max_outstanding=4)
        iptgs.append(Iptg(sim, f"ip{i}", port, [phase], seed=4 + i))
    finish = {}
    sim.all_of([ip.done for ip in iptgs]).add_callback(
        lambda _e: finish.update(ps=sim.now))
    sim.run(until=1_000_000_000_000)
    if "ps" not in finish:
        raise RuntimeError(f"chain with {hops} hops did not finish")
    latencies = [lat for ip in iptgs for lat in
                 (t.latency_ps for t in ip.transactions)]
    return {"execution_ps": finish["ps"],
            "mean_latency_ps": sum(latencies) / len(latencies)}


def _chain_job(payload: Tuple[int, str, int]) -> Dict:
    """Picklable worker: the bridge class is rebuilt by kind name."""
    hops, kind, transactions = payload
    return _run_chain(hops, _BRIDGE_KINDS[kind], transactions=transactions)


def run(max_hops: int = 3, transactions: int = 20,
        jobs: Optional[int] = None) -> Dict:
    """Sweep hop count for both bridge kinds."""
    plan = [(hops, kind, transactions) for hops in range(max_hops + 1)
            for kind in ("lightweight", "genconv")]
    results = parallel_map(_chain_job, plan,
                           jobs=get_default_jobs() if jobs is None else jobs)
    series = []
    for index in range(max_hops + 1):
        series.append({
            "hops": index,
            "lightweight": results[2 * index],
            "genconv": results[2 * index + 1],
        })
    return {"series": series}


def report(data: Dict) -> str:
    headers = ["hops", "lightweight exec (ns)", "genconv exec (ns)",
               "lightweight/genconv", "genconv mean lat (ns)"]
    rows = []
    for point in data["series"]:
        lw = point["lightweight"]["execution_ps"]
        gc = point["genconv"]["execution_ps"]
        rows.append([point["hops"], lw / 1000, gc / 1000, lw / gc,
                     point["genconv"]["mean_latency_ps"] / 1000])
    header = ("Path segmentation: hops through blocking vs split bridges "
              "(guideline 5)\n")
    return header + format_table(headers, rows, float_digits=2)


def check(data: Dict) -> List[str]:
    failures: List[str] = []
    series = data["series"]
    direct = series[0]
    deepest = series[-1]
    claim(failures,
          abs(direct["lightweight"]["execution_ps"]
              - direct["genconv"]["execution_ps"])
          < 0.02 * direct["genconv"]["execution_ps"],
          "with zero hops the bridge kind is irrelevant")
    lw_growth = (deepest["lightweight"]["execution_ps"]
                 / direct["lightweight"]["execution_ps"])
    gc_growth = (deepest["genconv"]["execution_ps"]
                 / direct["genconv"]["execution_ps"])
    claim(failures, lw_growth > 1.5 * gc_growth,
          "blocking bridges make segmentation much more expensive than "
          "split bridges")
    claim(failures, gc_growth < 1.6,
          "split bridges keep multi-hop throughput nearly flat")
    latencies = [p["genconv"]["mean_latency_ps"] for p in series]
    claim(failures,
          all(a < b for a, b in zip(latencies, latencies[1:])),
          "every hop adds transport latency, even with split bridges")
    return failures


def main() -> None:  # pragma: no cover
    data = run()
    print(report(data))
    failures = check(data)
    print("\nshape claims:", "all hold" if not failures else failures)


if __name__ == "__main__":  # pragma: no cover
    main()
