"""Fig. 6 — cycle-state statistics at the LMI bus interface.

The paper dissects two working regimes of the full STBus platform:

* phase 1 (intensive): "the FIFO of the bus interface is full for 47% of
  the time ... for 29% of the time there are no incoming requests ... and
  for remaining 24% the bus interface is storing new memory access
  requests.  The FIFO is empty only for a marginal time fraction."
* phase 2 (bursty, lower average intensity): "the time percentage during
  which the FIFO is full remains unaltered, while the FIFO is empty for a
  longer time."

And for the full AHB platform: "the FIFO is never full (since our AHB
implementation does not support split transactions) and ... for 98% of the
time there are no incoming requests.  This clearly indicates that the
system interconnect is the performance bottleneck, and not the memory
controller."
"""

from __future__ import annotations

from typing import Dict, List, Optional

from dataclasses import replace

from ..analysis.fifo_monitor import STATE_FULL, STATE_IDLE, STATE_STORING
from ..analysis.report import breakdown_chart
from ..platforms.config import TwoPhaseSpec, reference_clusters
from ..platforms.loader import config_from_dict, config_to_dict
from ..platforms.variants import instance, lmi_memory
from ..sweep import parallel_map
from .common import claim, get_default_jobs, run_config_with_platform


def _moderated_clusters(idle_scale: int, phase_time_ns: int = 60_000):
    """The reference clusters, re-paced for the Fig. 6 instrument.

    Two adjustments relative to the Fig. 3/5 stress programs:

    * idle gaps are scaled up so phase 1 is *intensive but not saturating*
      (the FIFO is full ~47% of the time, not ~90%);
    * per-IP transaction counts are rebalanced so every generator's phase 1
      lasts about ``phase_time_ns`` — the working regimes are then platform
      -wide phases, not a blur of per-IP transitions.
    """
    clusters = []
    for cluster in reference_clusters():
        ips = []
        for ip in cluster.ips:
            idle = max(1, ip.idle_cycles) * idle_scale
            per_txn_cycles = idle + ip.burst_beats + 6
            cycles_available = phase_time_ns * cluster.freq_mhz / 1000.0
            transactions = max(8, int(cycles_available / per_txn_cycles))
            ips.append(replace(ip, idle_cycles=idle,
                               transactions=transactions))
        clusters.append(replace(cluster, ips=tuple(ips)))
    return tuple(clusters)


def _monitor_report(document: Dict) -> Dict:
    """Worker body: run one config and return its LMI FIFO phase report.

    Takes the serialised config document (not the dataclass) so the job
    can cross a process boundary through the loader round trip.
    """
    _result, platform = run_config_with_platform(config_from_dict(document))
    return platform.monitor.report()


def run(traffic_scale: float = 1.0, idle_scale: int = 26,
        jobs: Optional[int] = None) -> Dict:
    """Run the two-phase full STBus platform and the full AHB comparison."""
    memory = lmi_memory()
    two_phase = TwoPhaseSpec(fraction=0.7, idle_multiplier=1.2, burst_run=40)
    clusters = _moderated_clusters(idle_scale)
    stbus_cfg = instance("stbus", "distributed", memory, clusters=clusters,
                         traffic_scale=traffic_scale, two_phase=two_phase)
    ahb_cfg = instance("ahb", "distributed", memory, clusters=clusters,
                       traffic_scale=traffic_scale, two_phase=two_phase)
    reports = parallel_map(
        _monitor_report,
        [config_to_dict(stbus_cfg), config_to_dict(ahb_cfg)],
        jobs=get_default_jobs() if jobs is None else jobs)
    return {"stbus": reports[0], "ahb": reports[1]}


def report(data: Dict) -> str:
    states = (STATE_FULL, STATE_STORING, STATE_IDLE)
    lines = ["Fig. 6 — LMI bus-interface statistics, full STBus platform"]
    lines.append(breakdown_chart(data["stbus"], states))
    for phase, row in data["stbus"].items():
        lines.append(f"  {phase}: fifo empty {row['fifo_empty']:.0%}")
    lines.append("")
    lines.append("Full AHB platform (same instrument):")
    lines.append(breakdown_chart(data["ahb"], states))
    return "\n".join(lines)


def check(data: Dict) -> List[str]:
    failures: List[str] = []
    stbus = data["stbus"]
    phases = list(stbus)
    claim(failures, len(phases) == 2, "two working regimes observed")
    if len(phases) == 2:
        p1, p2 = stbus[phases[0]], stbus[phases[1]]
        claim(failures, 0.35 <= p1[STATE_FULL] <= 0.70,
              f"phase 1: FIFO full a large fraction (~47%), got "
              f"{p1[STATE_FULL]:.0%}")
        claim(failures, 0.05 <= p1[STATE_STORING] <= 0.40,
              f"phase 1: storing a sizeable fraction (~24%), got "
              f"{p1[STATE_STORING]:.0%}")
        claim(failures, 0.10 <= p1[STATE_IDLE] <= 0.50,
              f"phase 1: no-incoming-request ~29%, got {p1[STATE_IDLE]:.0%}")
        claim(failures, p1["fifo_empty"] <= 0.10,
              f"phase 1: FIFO empty only marginally, got "
              f"{p1['fifo_empty']:.0%}")
        claim(failures, p2["fifo_empty"] > 3 * max(p1["fifo_empty"], 0.02),
              "phase 2: FIFO empty for a clearly longer time (burstier)")
        claim(failures, p2[STATE_FULL] >= 0.02,
              "phase 2: the FIFO still fills during transients")
    ahb_phases = list(data["ahb"].values())
    claim(failures, all(row[STATE_FULL] <= 0.02 for row in ahb_phases),
          "AHB: the LMI input FIFO is (practically) never full")
    claim(failures, any(row[STATE_IDLE] >= 0.90 for row in ahb_phases),
          "AHB: ~no incoming requests (interconnect is the bottleneck)")
    return failures


def main() -> None:  # pragma: no cover
    data = run()
    print(report(data))
    failures = check(data)
    print("\nshape claims:", "all hold" if not failures else failures)


if __name__ == "__main__":  # pragma: no cover
    main()
