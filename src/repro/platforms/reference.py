"""Elaboration of platform instances from a :class:`PlatformConfig`.

:class:`PlatformInstance` builds the whole system — interconnect layers,
bridges, traffic generators, CPU subsystem, memory subsystem, statistics —
and runs it to completion.  *Execution time* is the instant the last
traffic program (and the CPU benchmark) finished, the metric behind the
bars of Figs. 3 and 5 and the curves of Fig. 4.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..analysis.fifo_monitor import InterfaceMonitor
from ..analysis.metrics import RunResult, summarize_transactions
from ..bridge.matrix import make_bridge
from ..core.component import Component
from ..core.kernel import Simulator
from ..cpu.benchmark import BenchmarkConfig, SyntheticBenchmark
from ..cpu.st220 import St220Core
from ..interconnect.ahb import AhbLayer
from ..interconnect.axi import AxiFabric
from ..interconnect.base import Fabric, TargetPort
from ..interconnect.generic import GenericFabric
from ..interconnect.protocols import PROTOCOLS
from ..interconnect.stbus import StbusNode
from ..interconnect.types import AddressRange, StbusType
from ..memory.lmi import LmiController
from ..memory.onchip import OnChipMemory
from ..traffic.iptg import Iptg, IptgPhase
from ..traffic.patterns import (
    Choice,
    Fixed,
    Geometric,
    RandomUniform,
    Sequential,
    Strided,
)
from .config import (
    MEMORY_BASE,
    MEMORY_SPAN,
    ClusterSpec,
    IpSpec,
    PlatformConfig,
)

#: Bytes of unified memory assigned to each IP's private working region.
_IP_REGION = 1 << 20


def make_fabric(sim: Simulator, name: str, protocol: str, freq_mhz: float,
                width_bytes: int, stbus_type: StbusType,
                message_arbitration: bool = True,
                parent: Optional[Component] = None) -> Fabric:
    """Instantiate one interconnect layer of the requested protocol."""
    clock = sim.clock(freq_mhz=freq_mhz, name=f"{name}.clk")
    if protocol == "stbus":
        return StbusNode(sim, name, clock, data_width_bytes=width_bytes,
                         bus_type=stbus_type,
                         message_arbitration=message_arbitration,
                         parent=parent)
    if protocol == "ahb":
        return AhbLayer(sim, name, clock, data_width_bytes=width_bytes,
                        parent=parent)
    if protocol == "axi":
        return AxiFabric(sim, name, clock, data_width_bytes=width_bytes,
                         parent=parent)
    spec = PROTOCOLS.get(protocol)
    if spec is not None and spec.engine == "generic":
        # Registry-served protocols (Wishbone, APB, AXI4-Lite, Avalon,
        # TileLink-UL) share one spec-driven engine.
        return GenericFabric(sim, name, clock, spec,
                             data_width_bytes=width_bytes, parent=parent)
    raise ValueError(f"unknown protocol {protocol!r}")


class PlatformInstance(Component):
    """A fully elaborated MPSoC platform, ready to simulate."""

    def __init__(self, sim: Simulator, config: PlatformConfig,
                 name: str = "platform") -> None:
        super().__init__(sim, name)
        # The resolution must be announced before any component captures
        # it (select-once discipline); set_resolution refuses on a
        # simulator that already ran.
        if config.resolution != sim.resolution:
            sim.set_resolution(config.resolution)
        # Energy accounting attaches before _build() so every component
        # captures the accountant at construction (select-once discipline).
        # A capture()-installed accountant takes the platform's coefficient
        # block; otherwise the config decides whether one exists at all.
        if config.energy.enabled or sim._energy is not None:
            from ..obs.energy import attach_energy
            attach_energy(sim, config.energy if config.energy.enabled
                          else None)
        self.config = config
        self.fabrics: Dict[str, Fabric] = {}
        self.bridges: List = []
        self.iptgs: List[Iptg] = []
        self.cpu: Optional[St220Core] = None
        self.memory_port: Optional[TargetPort] = None
        self.lmi: Optional[LmiController] = None
        self.monitor: Optional[InterfaceMonitor] = None
        self._finish_ps: Optional[int] = None
        self._ip_index = 0
        self._phase2_entries = 0
        self._prepared = False
        self._build()

    def _on_ip_phase(self, index: int) -> None:
        """Advance the interface monitor once the platform's second traffic
        regime is established (half the generators have switched)."""
        if index != 1 or self.monitor is None:
            return
        self._phase2_entries += 1
        if self._phase2_entries == max(1, len(self.iptgs) // 2):
            self.monitor.begin_phase("phase2")

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _build(self) -> None:
        cfg = self.config
        if cfg.abstraction == "tlm":
            from ..interconnect.tlm import TlmNode

            clock = self.sim.clock(freq_mhz=cfg.central_freq_mhz,
                                   name="central.clk")
            self.central = TlmNode(self.sim, "central", clock,
                                   data_width_bytes=cfg.central_width_bytes,
                                   parent=self)
        elif cfg.central_crossbar and cfg.protocol == "stbus":
            from ..interconnect.crossbar import StbusCrossbar

            clock = self.sim.clock(freq_mhz=cfg.central_freq_mhz,
                                   name="central.clk")
            self.central = StbusCrossbar(
                self.sim, "central", clock,
                data_width_bytes=cfg.central_width_bytes,
                bus_type=cfg.central_stbus_type,
                message_arbitration=cfg.message_arbitration, parent=self)
        else:
            self.central = make_fabric(
                self.sim, "central", cfg.protocol, cfg.central_freq_mhz,
                cfg.central_width_bytes, cfg.central_stbus_type,
                message_arbitration=cfg.message_arbitration, parent=self)
        self.fabrics["central"] = self.central
        if cfg.abstraction == "tlm":
            self._build_tlm_memory()
        else:
            self._build_memory()
        for cluster in cfg.clusters:
            self._build_cluster(cluster)
        if cfg.cpu.enabled:
            self._build_cpu()

    def _build_memory(self) -> None:
        cfg = self.config
        mem_range = AddressRange(MEMORY_BASE, MEMORY_SPAN)
        if cfg.memory.kind == "onchip":
            # Default single-slot request buffering: "the target interface
            # has a single-slot buffering here.  Therefore, each transaction
            # is blocking" (Section 4.2).
            port = self.central.add_target(
                "mem", mem_range,
                request_depth=cfg.memory.request_depth,
                response_depth=cfg.memory.response_depth)
            clock = self.sim.clock(freq_mhz=cfg.central_freq_mhz,
                                   name="mem.clk")
            OnChipMemory(self.sim, "mem", port, clock,
                         wait_states=cfg.memory.wait_states,
                         width_bytes=cfg.central_width_bytes,
                         access_latency_cycles=cfg.memory.access_latency_cycles,
                         pipeline_depth=cfg.memory.pipeline_depth,
                         parent=self)
            self.memory_port = port
        else:
            lmi_clock = self.sim.clock(freq_mhz=cfg.memory.lmi_freq_mhz,
                                       name="lmi.clk")
            if cfg.protocol == "stbus":
                # The LMI natively exposes an STBus target interface: no
                # bridge is needed on STBus platforms (Section 4.2).
                self.lmi = LmiController.attach(
                    self.sim, self.central, "lmi", MEMORY_BASE, MEMORY_SPAN,
                    lmi_clock, config=cfg.memory.lmi,
                    timing=cfg.memory.sdram, parent=self)
            else:
                # Non-STBus platforms reach the LMI through a protocol
                # converter; the paper's converters cannot perform split
                # transactions (the collapsed-AXI penalty of Fig. 5).
                lmi_node = StbusNode(
                    self.sim, "lmi_node",
                    self.sim.clock(freq_mhz=cfg.memory.lmi_freq_mhz,
                                   name="lmi_node.clk"),
                    data_width_bytes=8, bus_type=StbusType.T3, parent=self)
                self.fabrics["lmi_node"] = lmi_node
                self.lmi = LmiController.attach(
                    self.sim, lmi_node, "lmi", MEMORY_BASE, MEMORY_SPAN,
                    lmi_clock, config=cfg.memory.lmi,
                    timing=cfg.memory.sdram, parent=self)
                self.bridges.append(make_bridge(
                    self.sim, "to_lmi", self.central, lmi_node, mem_range,
                    split=cfg.lmi_bridge_split,
                    crossing_cycles=cfg.bridge_crossing_cycles, parent=self))
            self.memory_port = self.lmi.port
        self.monitor = InterfaceMonitor(self.sim, self.memory_port)

    def _build_tlm_memory(self) -> None:
        """The analytic memory target of the transaction-level tier."""
        from ..interconnect.tlm import SdramServiceModel, SramServiceModel

        cfg = self.config
        mem_range = AddressRange(MEMORY_BASE, MEMORY_SPAN)
        if cfg.memory.kind == "onchip":
            model = SramServiceModel(
                self.central.clock, wait_states=cfg.memory.wait_states,
                width_bytes=cfg.central_width_bytes,
                access_latency_cycles=cfg.memory.access_latency_cycles)
        else:
            lmi_clock = self.sim.clock(freq_mhz=cfg.memory.lmi_freq_mhz,
                                       name="lmi.clk")
            model = SdramServiceModel(
                lmi_clock,
                beats_per_clock=cfg.memory.sdram.beats_per_clock)
        self.central.add_tlm_target("mem", mem_range, model)

    def _build_cluster(self, cluster: ClusterSpec) -> None:
        cfg = self.config
        if cfg.topology == "collapsed":
            fabric = self.central
            width = cluster.data_width_bytes
        else:
            fabric = make_fabric(self.sim, cluster.name, cfg.protocol,
                                 cluster.freq_mhz, cluster.data_width_bytes,
                                 cluster.stbus_type,
                                 message_arbitration=cfg.message_arbitration,
                                 parent=self)
            self.fabrics[cluster.name] = fabric
            self._bridge_to_central(cluster.name, fabric)
            width = cluster.data_width_bytes
        for spec in cluster.ips:
            self._build_ip(fabric, cluster, spec, width)

    def _bridge_to_central(self, name: str, fabric: Fabric) -> None:
        """Bridge a cluster layer to the central node via the derived
        matrix: the registry validates the pairing, the config's split
        knobs pick between the GenConv and lightweight machinery."""
        cfg = self.config
        mem_range = AddressRange(MEMORY_BASE, MEMORY_SPAN)
        if cfg.bridges_split:
            bridge = make_bridge(
                self.sim, f"{name}_conv", fabric, self.central, mem_range,
                split=True, crossing_cycles=cfg.genconv_crossing_cycles,
                child_outstanding=cfg.genconv_outstanding, parent=self)
        else:
            bridge = make_bridge(
                self.sim, f"{name}_br", fabric, self.central, mem_range,
                split=False, crossing_cycles=cfg.bridge_crossing_cycles,
                parent=self)
        self.bridges.append(bridge)

    def _build_ip(self, fabric: Fabric, cluster: ClusterSpec, spec: IpSpec,
                  width: int) -> None:
        cfg = self.config
        base = MEMORY_BASE + 0x0100_0000 + self._ip_index * _IP_REGION
        self._ip_index += 1
        pattern = self._make_pattern(spec, base)
        phase = IptgPhase(
            transactions=max(1, int(spec.transactions * cfg.traffic_scale)),
            burst_beats=Fixed(spec.burst_beats),
            beat_bytes=width,
            idle_cycles=Fixed(spec.idle_cycles),
            read_fraction=spec.read_fraction,
            message_packets=spec.message_packets,
            priority=spec.priority,
            address_pattern=pattern,
        )
        phases = [phase]
        if cfg.two_phase is not None:
            spec2 = cfg.two_phase
            mean_gap = max(1, int(spec.idle_cycles * spec2.idle_multiplier))
            if spec2.burst_run > 1:
                # Bimodal: mostly back-to-back, occasionally a long silence
                # whose length keeps the same mean gap.
                gaps = Choice([0, mean_gap * spec2.burst_run],
                              weights=[spec2.burst_run - 1, 1])
            else:
                gaps = Geometric(p=1.0 / mean_gap, cap=8 * mean_gap)
            phases.append(phase.scaled(
                transactions=max(1, int(phase.transactions * spec2.fraction)),
                idle_cycles=gaps))
        port = fabric.connect_initiator(f"{cluster.name}.{spec.name}",
                                        max_outstanding=spec.max_outstanding)
        ip_clock = self.sim.clock(freq_mhz=cluster.freq_mhz,
                                  name=f"{cluster.name}.{spec.name}.clk")
        iptg = Iptg(self.sim, f"{cluster.name}.{spec.name}", port, phases,
                    address_base=base, address_span=_IP_REGION,
                    seed=cfg.seed * 1000 + self._ip_index, clock=ip_clock,
                    on_phase=self._on_ip_phase, parent=self)
        self.iptgs.append(iptg)

    @staticmethod
    def _make_pattern(spec: IpSpec, base: int):
        if spec.pattern == "seq":
            return Sequential(base, _IP_REGION)
        if spec.pattern == "random":
            return RandomUniform(base, _IP_REGION, align=64)
        return Strided(base, block=2048, stride=16384,
                       blocks=_IP_REGION // 16384)

    def _build_cpu(self) -> None:
        cfg = self.config
        bench = SyntheticBenchmark(BenchmarkConfig(
            blocks=max(1, int(cfg.cpu.blocks * cfg.traffic_scale)),
            working_set=cfg.cpu.working_set,
            data_base=MEMORY_BASE + 0x0800_0000,
            code_base=MEMORY_BASE + 0x0900_0000,
            seed=cfg.cpu.seed))
        if cfg.topology == "collapsed":
            port = self.central.connect_initiator("st220", max_outstanding=2)
        else:
            # The ST220 sits on its own 32-bit, 400 MHz layer behind an
            # upsize + frequency converter towards the central node.
            cpu_fabric = make_fabric(self.sim, "cpu_node", cfg.protocol,
                                     cfg.cpu.freq_mhz, 4, StbusType.T2,
                                     parent=self)
            self.fabrics["cpu_node"] = cpu_fabric
            self._bridge_to_central("cpu_node", cpu_fabric)
            port = cpu_fabric.connect_initiator("st220", max_outstanding=2)
        self.cpu = St220Core(self.sim, "st220", port, bench, parent=self)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def prepare(self) -> None:
        """Arm the finish detector without advancing the simulation.

        Normally :meth:`run` does this implicitly; the checkpoint runner
        calls it directly so it can interleave ``sim.run(until=...)`` steps
        with state capture before finally draining the platform.
        Idempotent.
        """
        if self._prepared:
            return
        self._prepared = True
        done_events = [iptg.done for iptg in self.iptgs]
        if self.cpu is not None:
            done_events.append(self.cpu.done)
        finish = self.sim.all_of(done_events)
        finish.add_callback(self._record_finish)

    def run(self, max_ps: Optional[int] = None) -> RunResult:
        """Simulate to completion and summarise.

        ``max_ps`` bounds runaway configurations; a platform that fails to
        drain by then raises, because a silently truncated run would
        corrupt execution-time comparisons.
        """
        self.prepare()
        self.sim.run(until=max_ps)
        if self._finish_ps is None:
            raise RuntimeError(
                f"{self.config.label()}: platform did not finish "
                f"within {max_ps} ps")
        return self.result()

    def _record_finish(self, _event) -> None:
        self._finish_ps = self.sim.now

    def snapshot_state(self, encoder) -> Dict[str, object]:
        return {
            "finish_ps": self._finish_ps,
            "phase2_entries": self._phase2_entries,
        }

    def result(self) -> RunResult:
        """Summarise the completed run."""
        transactions = []
        for iptg in self.iptgs:
            transactions.extend(iptg.transactions)
        utilization = {}
        for fname, fabric in self.fabrics.items():
            for cname, value in fabric.utilization_report().items():
                utilization[f"{fname}.{cname}"] = value
        extra = {}
        if self.cpu is not None:
            extra["cpu_blocks"] = float(self.cpu.blocks_retired.value)
            extra["cpu_dcache_miss_rate"] = self.cpu.dcache.miss_rate
        if self.lmi is not None:
            device = self.lmi.device
            extra["lmi_row_hit_rate"] = device.row_hit_rate
            extra["lmi_merges"] = float(self.lmi.merges.value)
            extra["lmi_served"] = float(self.lmi.served.value)
            extra["lmi_activates"] = float(device.activates.value)
            extra["lmi_rw_commands"] = float(device.reads.value
                                             + device.writes.value)
        finish_ps = (self._finish_ps if self._finish_ps is not None
                     else self.sim.now)
        energy_pj: Dict[str, float] = {}
        energy_total_pj = 0.0
        accountant = self.sim._energy
        if accountant is not None:
            # Close open-row intervals and integrate background power up
            # to the finish instant (idempotent: safe to call result()
            # twice, or after metrics_snapshot already finalised).
            accountant.finalize(finish_ps)
            energy_pj = accountant.component_pj()
            energy_total_pj = accountant.total_pj
        return summarize_transactions(
            self.config.label(), finish_ps,
            transactions, utilization=utilization, extra=extra,
            energy_pj=energy_pj, energy_total_pj=energy_total_pj)


def build_platform(sim: Simulator, config: PlatformConfig) -> PlatformInstance:
    """Convenience constructor mirroring the paper's flow: configure,
    elaborate, simulate."""
    return PlatformInstance(sim, config)
