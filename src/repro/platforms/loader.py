"""Platform configuration files.

The paper's IPTG is driven by "a per-IP configuration file, where all the
required options and parameters are set" (Section 3.1).  This module
provides the equivalent for the whole platform: JSON documents describing
clusters, IPs, memory, CPU and variant knobs, convertible to/from
:class:`~repro.platforms.config.PlatformConfig` — so experiment setups are
data, versionable and shareable, rather than Python code.

Schema (all sections optional; omitted fields keep their defaults)::

    {
      "protocol": "stbus", "topology": "distributed",
      "traffic_scale": 1.0, "seed": 1,
      "memory": {"kind": "lmi", "lmi": {"input_fifo_depth": 6, ...}},
      "cpu": {"enabled": true, "blocks": 200},
      "two_phase": {"fraction": 0.7, "idle_multiplier": 1.2, "burst_run": 40},
      "clusters": [
        {"name": "n5_dma", "freq_mhz": 250, "data_width_bytes": 8,
         "stbus_type": 3,
         "ips": [{"name": "dma0", "transactions": 120, "burst_beats": 8,
                  "read_fraction": 0.95, "idle_cycles": 2,
                  "message_packets": 2, "pattern": "seq"}]}
      ]
    }
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Any, Dict, Union

from ..interconnect.types import StbusType
from ..memory.lmi import LmiConfig
from ..memory.timing import ENERGY_PRESETS, TIMING_PRESETS, SdramEnergy, SdramTiming
from ..obs.energy import EnergyConfig
from .config import (
    ClusterSpec,
    CpuConfig,
    IpSpec,
    MemoryConfig,
    PlatformConfig,
    TwoPhaseSpec,
)


class ConfigError(ValueError):
    """A malformed platform configuration document."""


def _take(data: Dict[str, Any], cls, context: str) -> Dict[str, Any]:
    """Validate that ``data``'s keys are fields of dataclass ``cls``."""
    allowed = {f.name for f in dataclasses.fields(cls)}
    unknown = set(data) - allowed
    if unknown:
        raise ConfigError(
            f"{context}: unknown keys {sorted(unknown)}; "
            f"allowed: {sorted(allowed)}")
    return data


def _ip_from_dict(data: Dict[str, Any]) -> IpSpec:
    return IpSpec(**_take(dict(data), IpSpec, f"ip {data.get('name')!r}"))


def _cluster_from_dict(data: Dict[str, Any]) -> ClusterSpec:
    payload = dict(data)
    ips = payload.pop("ips", [])
    if not isinstance(ips, list) or not ips:
        raise ConfigError(f"cluster {data.get('name')!r}: needs an 'ips' list")
    payload["ips"] = tuple(_ip_from_dict(ip) for ip in ips)
    if "stbus_type" in payload:
        payload["stbus_type"] = StbusType(payload["stbus_type"])
    return ClusterSpec(**_take(payload, ClusterSpec,
                               f"cluster {data.get('name')!r}"))


def _memory_from_dict(data: Dict[str, Any]) -> MemoryConfig:
    payload = dict(data)
    if "lmi" in payload:
        payload["lmi"] = LmiConfig(**_take(dict(payload["lmi"]), LmiConfig,
                                           "memory.lmi"))
    if "sdram" in payload:
        sdram = payload["sdram"]
        if isinstance(sdram, str):
            if sdram not in TIMING_PRESETS:
                raise ConfigError(f"memory.sdram: unknown preset {sdram!r}; "
                                  f"choose from {sorted(TIMING_PRESETS)}")
            payload["sdram"] = TIMING_PRESETS[sdram]
        else:
            payload["sdram"] = SdramTiming(**_take(dict(sdram), SdramTiming,
                                                   "memory.sdram"))
    return MemoryConfig(**_take(payload, MemoryConfig, "memory"))


def _energy_from_dict(data: Dict[str, Any]) -> EnergyConfig:
    payload = dict(data)
    if "sdram" in payload:
        sdram = payload["sdram"]
        if isinstance(sdram, str):
            if sdram not in ENERGY_PRESETS:
                raise ConfigError(f"energy.sdram: unknown preset {sdram!r}; "
                                  f"choose from {sorted(ENERGY_PRESETS)}")
            payload["sdram"] = ENERGY_PRESETS[sdram]
        else:
            payload["sdram"] = SdramEnergy(**_take(dict(sdram), SdramEnergy,
                                                   "energy.sdram"))
    return EnergyConfig(**_take(payload, EnergyConfig, "energy"))


def config_from_dict(document: Dict[str, Any]) -> PlatformConfig:
    """Build a :class:`PlatformConfig` from a parsed JSON document."""
    payload = dict(document)
    if "clusters" in payload:
        payload["clusters"] = tuple(_cluster_from_dict(c)
                                    for c in payload["clusters"])
    if "memory" in payload:
        payload["memory"] = _memory_from_dict(payload["memory"])
    if "energy" in payload:
        payload["energy"] = _energy_from_dict(payload["energy"])
    if "cpu" in payload:
        payload["cpu"] = CpuConfig(**_take(dict(payload["cpu"]), CpuConfig,
                                           "cpu"))
    if "two_phase" in payload and payload["two_phase"] is not None:
        payload["two_phase"] = TwoPhaseSpec(
            **_take(dict(payload["two_phase"]), TwoPhaseSpec, "two_phase"))
    if "central_stbus_type" in payload:
        payload["central_stbus_type"] = StbusType(
            payload["central_stbus_type"])
    try:
        return PlatformConfig(**_take(payload, PlatformConfig, "platform"))
    except TypeError as exc:  # pragma: no cover - _take catches key issues
        raise ConfigError(str(exc)) from exc


def config_to_dict(config: PlatformConfig) -> Dict[str, Any]:
    """Serialise a :class:`PlatformConfig` to a JSON-compatible dict."""
    def convert(value):
        if dataclasses.is_dataclass(value) and not isinstance(value, type):
            return {k: convert(v)
                    for k, v in dataclasses.asdict(value).items()}
        if isinstance(value, StbusType):
            return int(value)
        if isinstance(value, tuple):
            return [convert(v) for v in value]
        return value

    result: Dict[str, Any] = {}
    for field in dataclasses.fields(config):
        value = getattr(config, field.name)
        if isinstance(value, tuple):
            result[field.name] = [config_to_dict_item(v) for v in value]
        elif dataclasses.is_dataclass(value) and not isinstance(value, type):
            result[field.name] = convert(value)
        elif isinstance(value, StbusType):
            result[field.name] = int(value)
        else:
            result[field.name] = value
    return result


def config_to_dict_item(value) -> Any:
    """Serialise one nested dataclass (cluster/ip) recursively."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        out = {}
        for field in dataclasses.fields(value):
            item = getattr(value, field.name)
            if isinstance(item, tuple):
                out[field.name] = [config_to_dict_item(v) for v in item]
            elif isinstance(item, StbusType):
                out[field.name] = int(item)
            elif dataclasses.is_dataclass(item) and not isinstance(item, type):
                out[field.name] = config_to_dict_item(item)
            else:
                out[field.name] = item
        return out
    return value


def load_config(path: Union[str, Path]) -> PlatformConfig:
    """Read a platform configuration from a JSON file.

    Every failure mode — missing/unreadable file, malformed JSON, wrong
    document shape — surfaces as :class:`ConfigError`, so callers (the
    CLI in particular) can report one clean line instead of a traceback.
    """
    try:
        document = json.loads(Path(path).read_text())
    except OSError as exc:
        raise ConfigError(
            f"{path}: {exc.strerror or 'cannot read config file'}") from exc
    except json.JSONDecodeError as exc:
        raise ConfigError(f"{path}: invalid JSON ({exc})") from exc
    if not isinstance(document, dict):
        raise ConfigError(f"{path}: top level must be an object")
    return config_from_dict(document)


def save_config(config: PlatformConfig, path: Union[str, Path]) -> None:
    """Write a platform configuration to a JSON file (round-trippable)."""
    Path(path).write_text(json.dumps(config_to_dict(config), indent=2)
                          + "\n")
