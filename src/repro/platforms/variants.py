"""Named platform variants — the instances the paper's figures compare.

Each helper returns :class:`PlatformConfig` objects; experiments elaborate
and run them.  Labels follow the paper's naming ("collapsed AXI",
"full STBus", ...).
"""

from __future__ import annotations

from typing import Dict, List

from ..memory.lmi import LmiConfig
from .config import CpuConfig, MemoryConfig, PlatformConfig


def onchip_memory(wait_states: int = 1) -> MemoryConfig:
    """The on-chip shared memory of Sections 4.1/4.2."""
    return MemoryConfig(kind="onchip", wait_states=wait_states)


def lmi_memory(lmi: LmiConfig = LmiConfig()) -> MemoryConfig:
    """The LMI controller + off-chip DDR SDRAM of Fig. 5."""
    return MemoryConfig(kind="lmi", lmi=lmi)


def instance(protocol: str, topology: str, memory: MemoryConfig,
             **overrides) -> PlatformConfig:
    """One platform instance; keyword overrides tweak any config field."""
    return PlatformConfig(protocol=protocol, topology=topology,
                          memory=memory, **overrides)


def fig3_instances(traffic_scale: float = 1.0) -> Dict[str, PlatformConfig]:
    """The five bars of Fig. 3 (on-chip memory, 1 wait state).

    Expected shape: collapsed AXI ~ collapsed STBus ~ full STBus, all much
    faster than full AHB; distributed AXI lands near full AHB because of
    its lightweight blocking bridges.
    """
    memory = onchip_memory(wait_states=1)
    common = dict(traffic_scale=traffic_scale)
    return {
        "collapsed_axi": instance("axi", "collapsed", memory, **common),
        "collapsed_stbus": instance("stbus", "collapsed", memory, **common),
        "full_stbus": instance("stbus", "distributed", memory, **common),
        "full_ahb": instance("ahb", "distributed", memory, **common),
        "distributed_axi": instance("axi", "distributed", memory, **common),
    }


def fig4_pair(access_latency_cycles: int,
              traffic_scale: float = 1.0) -> Dict[str, PlatformConfig]:
    """Distributed vs centralized STBus at a given memory speed (Fig. 4).

    "the use of AXI and STBus is interchangeable here, what really matters
    is the architecture topology" — we use STBus for both.  The memory gets
    progressively slower *in responding to access requests* (initial access
    latency).  Per Section 4.2, the centralized instance has the simple
    slave's single-slot, non-pipelined target interface ("each transaction
    is blocking"); the distributed instance implements the distributed
    buffering the paper credits for keeping the multi-hop path filled —
    including a multi-slot, pipelined memory interface (guideline 3).
    """
    centralized_memory = MemoryConfig(
        kind="onchip", wait_states=1,
        access_latency_cycles=access_latency_cycles,
        pipeline_depth=1, request_depth=1)
    distributed_memory = MemoryConfig(
        kind="onchip", wait_states=1,
        access_latency_cycles=access_latency_cycles,
        pipeline_depth=4, request_depth=4)
    common = dict(traffic_scale=traffic_scale)
    return {
        "collapsed": instance("stbus", "collapsed", centralized_memory,
                              **common),
        "distributed": instance("stbus", "distributed", distributed_memory,
                                **common),
    }


def fig5_instances(traffic_scale: float = 1.0,
                   lmi: LmiConfig = LmiConfig()) -> Dict[str, PlatformConfig]:
    """The Fig. 5 bars (LMI memory controller + DDR SDRAM).

    Expected shape: distributed STBus best; collapsed STBus close behind
    (native interface, no bridge, outstanding transactions fill the LMI
    FIFO); collapsed AXI much worse (non-split converter starves the
    optimisation engine); distributed AHB worst, with a larger gap to
    STBus than in Fig. 3.
    """
    memory = lmi_memory(lmi)
    common = dict(traffic_scale=traffic_scale)
    return {
        "distributed_stbus": instance("stbus", "distributed", memory, **common),
        "collapsed_stbus": instance("stbus", "collapsed", memory, **common),
        "collapsed_axi": instance("axi", "collapsed", memory, **common),
        "distributed_ahb": instance("ahb", "distributed", memory, **common),
    }


def quick_config(**overrides) -> PlatformConfig:
    """A light configuration for tests: small traffic, no CPU by default."""
    defaults = dict(
        memory=onchip_memory(1),
        cpu=CpuConfig(enabled=False),
        traffic_scale=0.15,
    )
    defaults.update(overrides)
    return PlatformConfig(**defaults)
