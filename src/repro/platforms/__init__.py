"""Platform construction: the Fig. 1 reference MPSoC and its variants."""

from .config import (
    MEMORY_BASE,
    MEMORY_SPAN,
    ClusterSpec,
    CpuConfig,
    IpSpec,
    MemoryConfig,
    PlatformConfig,
    reference_clusters,
)
from .reference import PlatformInstance, build_platform, make_fabric
from .variants import (
    fig3_instances,
    fig4_pair,
    fig5_instances,
    instance,
    lmi_memory,
    onchip_memory,
    quick_config,
)

__all__ = [
    "ClusterSpec",
    "CpuConfig",
    "IpSpec",
    "MEMORY_BASE",
    "MEMORY_SPAN",
    "MemoryConfig",
    "PlatformConfig",
    "PlatformInstance",
    "build_platform",
    "fig3_instances",
    "fig4_pair",
    "fig5_instances",
    "instance",
    "lmi_memory",
    "make_fabric",
    "onchip_memory",
    "quick_config",
    "reference_clusters",
]
