"""Platform configuration objects.

The reference platform (Fig. 1) is described by data, not code: a list of
functional clusters ("each one implementing functionalities like video
stream decrypting and decoding, image resizing or more generic DMA tasks,
and therefore features different combinations of data width, clock frequency
and STBus protocol type"), a central node, an ST220 CPU subsystem and a
memory subsystem.  The paper's exact netlist is proprietary; these defaults
synthesise a platform with every property the text states (see DESIGN.md,
substitution 2).

Architectural variants (Section 3.2) are configuration changes:

* ``protocol``   — STBus / AMBA AHB / AMBA AXI ports of the same template;
* ``topology``   — ``distributed`` multi-layer vs ``collapsed`` single layer
  ("the most heavily congested cluster is removed and its communication
  actors attached to the central cluster" — taken to the limit, every
  cluster collapses onto the central node);
* ``memory.kind``— on-chip shared memory vs LMI + off-chip DDR SDRAM.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional, Tuple

from ..interconnect.protocols import platform_protocols
from ..interconnect.types import StbusType
from ..memory.lmi import LmiConfig
from ..memory.timing import DDR_SDRAM, SdramTiming
from ..obs.energy import EnergyConfig

#: Base address and span of the unified memory (all traffic targets it).
MEMORY_BASE = 0x8000_0000
MEMORY_SPAN = 1 << 28  # 256 MiB


@dataclass(frozen=True)
class IpSpec:
    """One IP core, reproduced by an IPTG.

    ``pattern`` selects the addressing scheme: ``seq`` (streaming),
    ``random`` (scattered) or ``strided`` (2D blocks).  ``message_packets``
    groups consecutive bursts into STBus messages.
    """

    name: str
    transactions: int = 120
    burst_beats: int = 8
    read_fraction: float = 1.0
    idle_cycles: int = 2
    message_packets: int = 1
    pattern: str = "seq"
    max_outstanding: int = 4
    priority: int = 0

    def __post_init__(self) -> None:
        if self.pattern not in ("seq", "random", "strided"):
            raise ValueError(f"unknown pattern {self.pattern!r}")
        if self.transactions < 1 or self.burst_beats < 1:
            raise ValueError("transactions and burst_beats must be >= 1")


@dataclass(frozen=True)
class ClusterSpec:
    """One functional cluster (an interconnect layer plus its IPs)."""

    name: str
    freq_mhz: float
    data_width_bytes: int
    stbus_type: StbusType
    ips: Tuple[IpSpec, ...] = ()

    def __post_init__(self) -> None:
        if not self.ips:
            raise ValueError(f"cluster {self.name} has no IPs")


@dataclass(frozen=True)
class MemoryConfig:
    """Memory subsystem selection.

    For on-chip memory, ``access_latency_cycles`` is the initial response
    latency per burst (the Fig. 4 sweep variable), ``pipeline_depth`` and
    ``request_depth`` describe the target interface: a simple slave has a
    single-slot, non-pipelined interface ("each transaction is blocking",
    Section 4.2) while a smarter interface overlaps several accesses.
    """

    kind: str = "onchip"  # "onchip" | "lmi"
    wait_states: int = 1
    access_latency_cycles: int = 0
    pipeline_depth: int = 1
    request_depth: int = 1
    response_depth: int = 2
    lmi: LmiConfig = field(default_factory=LmiConfig)
    sdram: SdramTiming = DDR_SDRAM
    lmi_freq_mhz: float = 166.0

    def __post_init__(self) -> None:
        if self.kind not in ("onchip", "lmi"):
            raise ValueError(f"unknown memory kind {self.kind!r}")
        if self.wait_states < 0:
            raise ValueError("wait_states must be >= 0")
        if self.access_latency_cycles < 0:
            raise ValueError("access_latency_cycles must be >= 0")
        if self.pipeline_depth < 1 or self.request_depth < 1:
            raise ValueError("pipeline_depth and request_depth must be >= 1")


@dataclass(frozen=True)
class TwoPhaseSpec:
    """Two-regime application lifetime (the Fig. 6 working phases).

    Phase 1 runs each IP's configured program (intensive traffic); phase 2
    issues ``fraction`` of the transaction count again at a lower *average*
    intensity (mean gap = ``idle_multiplier`` x the phase-1 gap) but in a
    burstier shape: with ``burst_run > 1`` the gaps are bimodal — runs of
    about ``burst_run`` back-to-back transactions separated by long
    silences — so transients still fill the memory-controller FIFO while
    the FIFO also sits empty for long stretches.
    """

    fraction: float = 0.6
    idle_multiplier: float = 10.0
    burst_run: int = 1

    def __post_init__(self) -> None:
        if self.fraction <= 0:
            raise ValueError("phase-2 fraction must be positive")
        if self.idle_multiplier < 1:
            raise ValueError("idle_multiplier must be >= 1")
        if self.burst_run < 1:
            raise ValueError("burst_run must be >= 1")


@dataclass(frozen=True)
class CpuConfig:
    """ST220 subsystem parameters."""

    enabled: bool = True
    freq_mhz: float = 400.0
    blocks: int = 200
    working_set: int = 1 << 16
    seed: int = 42


@dataclass(frozen=True)
class PlatformConfig:
    """Everything needed to elaborate one platform instance."""

    #: Interconnect protocol; any value of
    #: :func:`repro.interconnect.protocols.platform_protocols` — the
    #: paper's three ("stbus" | "ahb" | "axi") plus the registry-served
    #: generic fabrics ("wishbone" | "apb" | "axi4lite" | "avalon" |
    #: "tilelink").
    protocol: str = "stbus"
    topology: str = "distributed"  # "distributed" | "collapsed"
    #: Modelling abstraction: "cycle" simulates every beat; "tlm" uses the
    #: approximately-timed transaction-level tier (collapsed topology only)
    #: for fast design-space exploration — the paper's multi-abstraction
    #: flow.
    abstraction: str = "cycle"  # "cycle" | "tlm"
    #: Simulation resolution: "ca" simulates every arbitration cycle; "lt"
    #: (loosely timed) fast-forwards provably contention-free stretches
    #: analytically and falls back to the cycle-accurate engine under
    #: contention.  Orthogonal to ``abstraction`` — it changes how the
    #: cycle-accurate models *execute*, not what they model.  See
    #: docs/FAST_SIM.md for the speed/accuracy contract.
    resolution: str = "ca"  # "ca" | "lt"
    memory: MemoryConfig = field(default_factory=MemoryConfig)
    cpu: CpuConfig = field(default_factory=CpuConfig)
    clusters: Tuple[ClusterSpec, ...] = ()
    central_freq_mhz: float = 250.0
    central_width_bytes: int = 8
    central_stbus_type: StbusType = StbusType.T3
    #: Scales every IP's transaction count (and the CPU block count).
    traffic_scale: float = 1.0
    #: One-way crossing latency of lightweight bridges, in cycles ("they
    #: have tunable latency"; basic bridges resynchronise conservatively).
    bridge_crossing_cycles: int = 4
    #: One-way crossing latency of GenConv converters ("combining
    #: conversions has the advantage of minimizing the latency").
    genconv_crossing_cycles: int = 1
    #: Outstanding children of split-capable (GenConv) bridges.
    genconv_outstanding: int = 4
    #: Force split-capable bridges even for AHB/AXI (ablation knob); None
    #: keeps the paper's setup: GenConv for STBus, lightweight otherwise.
    bridge_split_override: Optional[bool] = None
    #: Force a split-capable converter in front of the LMI for non-STBus
    #: platforms (ablation knob; the paper's converters are non-split).
    lmi_bridge_split: bool = False
    #: Two-regime application lifetime (Fig. 6); None = single phase.
    two_phase: Optional[TwoPhaseSpec] = None
    #: Message-granularity arbitration in STBus nodes (ablation knob —
    #: "messaging is a solution to generate memory controller-friendly
    #: traffic").
    message_arbitration: bool = True
    #: Instantiate the central STBus node as a full crossbar instead of a
    #: shared bus.  With the memory-centric many-to-one pattern this buys
    #: nothing (guideline 2) — which the tests assert.
    central_crossbar: bool = False
    #: Energy-model coefficient block (``repro.obs.energy``).  Disabled by
    #: default: no accountant is attached and the taps stay dormant.  Part
    #: of the configuration document, so energy coefficients participate
    #: in sweep cache keys and checkpoint digests like every other knob.
    energy: EnergyConfig = field(default_factory=EnergyConfig)
    seed: int = 1

    def __post_init__(self) -> None:
        if self.protocol not in platform_protocols():
            raise ValueError(
                f"unknown protocol {self.protocol!r}; registered: "
                f"{sorted(platform_protocols())}")
        if self.topology not in ("distributed", "collapsed"):
            raise ValueError(f"unknown topology {self.topology!r}")
        if self.abstraction not in ("cycle", "tlm"):
            raise ValueError(f"unknown abstraction {self.abstraction!r}")
        if self.resolution not in ("ca", "lt"):
            raise ValueError(f"unknown resolution {self.resolution!r}")
        if self.abstraction == "tlm" and self.topology != "collapsed":
            raise ValueError(
                "the TLM tier models a single layer: use topology="
                "'collapsed' (cycle-accurate models cover multi-layer)")
        if self.traffic_scale <= 0:
            raise ValueError("traffic_scale must be positive")
        if not self.clusters:
            object.__setattr__(self, "clusters", reference_clusters())

    @property
    def bridges_split(self) -> bool:
        """Are inter-cluster bridges split-capable on this instance?"""
        if self.bridge_split_override is not None:
            return self.bridge_split_override
        return self.protocol == "stbus"

    def scaled(self, **overrides) -> "PlatformConfig":
        """Copy with overrides (sweep helper)."""
        return replace(self, **overrides)

    def label(self) -> str:
        """Short instance name used in figures, e.g. ``stbus/distributed``."""
        return f"{self.protocol}/{self.topology}"


def reference_clusters() -> Tuple[ClusterSpec, ...]:
    """The synthesised Fig. 1 cluster set (see DESIGN.md substitution 2).

    N5 (DMA) is deliberately the heaviest-loaded cluster, matching "the most
    heavily congested cluster (node N5)".
    """
    return (
        ClusterSpec("n1_decrypt", freq_mhz=200, data_width_bytes=4,
                    stbus_type=StbusType.T2, ips=(
                        IpSpec("dec_in", transactions=70, burst_beats=8,
                               read_fraction=1.0, idle_cycles=30),
                        IpSpec("dec_out", transactions=70, burst_beats=8,
                               read_fraction=0.0, idle_cycles=30),
                    )),
        ClusterSpec("n2_decode", freq_mhz=200, data_width_bytes=8,
                    stbus_type=StbusType.T3, ips=(
                        IpSpec("vld", transactions=70, burst_beats=8,
                               read_fraction=1.0, idle_cycles=10,
                               message_packets=2),
                        IpSpec("mc_ref", transactions=70, burst_beats=8,
                               read_fraction=1.0, idle_cycles=12,
                               pattern="strided"),
                        IpSpec("rec_out", transactions=60, burst_beats=8,
                               read_fraction=0.0, idle_cycles=14),
                    )),
        ClusterSpec("n3_resize", freq_mhz=166, data_width_bytes=4,
                    stbus_type=StbusType.T2, ips=(
                        IpSpec("rsz_in", transactions=70, burst_beats=8,
                               read_fraction=1.0, idle_cycles=40,
                               pattern="strided"),
                        IpSpec("rsz_out", transactions=70, burst_beats=4,
                               read_fraction=0.0, idle_cycles=40),
                    )),
        ClusterSpec("n4_audio", freq_mhz=125, data_width_bytes=4,
                    stbus_type=StbusType.T2, ips=(
                        IpSpec("aud", transactions=40, burst_beats=4,
                               read_fraction=0.7, idle_cycles=80),
                    )),
        # N5: the heavily congested cluster — three DMA engines streaming
        # out of the unified memory nearly back to back.
        ClusterSpec("n5_dma", freq_mhz=250, data_width_bytes=8,
                    stbus_type=StbusType.T3, ips=(
                        IpSpec("dma0", transactions=120, burst_beats=8,
                               read_fraction=0.95, idle_cycles=2,
                               message_packets=2),
                        IpSpec("dma1", transactions=120, burst_beats=8,
                               read_fraction=0.9, idle_cycles=2,
                               message_packets=2),
                        IpSpec("dma2", transactions=100, burst_beats=8,
                               read_fraction=0.9, idle_cycles=4),
                    )),
    )
