"""Multi-agent IPTG configurations.

"IPTG is best used to emulate the behaviour of complex real-life IPs: such
IPs can be often seen as having a number of internal sub-process (or
agents), each one with its own characteristics (buffering space, transaction
pipelining capability) but in some way dependent on each other (e.g., when
operating in pipeline).  With IPTG, each agent traffic is handled
automatically according to its characteristics, and inter-agent
synchronization points can be set to emulate dependencies between them."
(Section 3.1)

:class:`AgentSpec` describes one sub-process; :class:`MultiAgentIp` wires a
set of them into a producer/consumer pipeline where agent *i+1* may only
work on item *k* after agent *i* finished it, subject to the inter-stage
buffering depth.  This models, e.g., a video IP whose decrypt, decode and
resize engines hand frames to one another through bounded frame buffers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..core.component import Component
from ..core.events import Event
from ..core.kernel import Simulator
from ..core.sync import Semaphore
from ..interconnect.base import Fabric, InitiatorPort
from .iptg import Iptg, IptgPhase


@dataclass
class AgentSpec:
    """One internal agent of a complex IP.

    ``items`` work items are processed; for each item the agent issues the
    given traffic ``phase`` (scaled to per-item transaction count).
    ``buffering`` is the depth of the queue *towards the next agent*: the
    producer may run at most this many items ahead (its "buffering space").
    ``max_outstanding`` is its bus-interface pipelining capability.
    """

    name: str
    phase: IptgPhase
    items: int = 8
    buffering: int = 2
    max_outstanding: int = 2

    def __post_init__(self) -> None:
        if self.items < 1:
            raise ValueError("agent needs >= 1 item")
        if self.buffering < 1:
            raise ValueError("buffering must be >= 1")


class MultiAgentIp(Component):
    """A pipeline of dependent agents sharing one complex IP identity."""

    def __init__(self, sim: Simulator, name: str, fabric: Fabric,
                 agents: List[AgentSpec], address_base: int = 0,
                 address_span: int = 1 << 20, seed: int = 7,
                 parent: Optional[Component] = None) -> None:
        super().__init__(sim, name, clock=fabric.clock, parent=parent)
        if not agents:
            raise ValueError(f"{name}: needs at least one agent")
        self.specs = agents
        self.iptgs: List[Iptg] = []
        self.done: Event = sim.event(name=f"{name}.done")
        self._finished = 0
        # Inter-agent synchronisation points: slots[i] limits how far agent i
        # runs ahead of agent i+1; tokens[i] counts items ready for agent i.
        self._slots: List[Semaphore] = []
        self._ready: List[Semaphore] = []
        for i, spec in enumerate(agents[:-1]):
            self._slots.append(Semaphore(sim, spec.buffering,
                                         name=f"{name}.slots{i}"))
        for i in range(1, len(agents)):
            self._ready.append(Semaphore(sim, 0, name=f"{name}.ready{i}",
                                         bounded=False))
        for i, spec in enumerate(agents):
            port = fabric.connect_initiator(
                f"{name}.{spec.name}", max_outstanding=spec.max_outstanding)
            base = address_base + i * (address_span // max(1, len(agents)))
            self.process(self._agent(i, spec, port, base), name=spec.name)

    def snapshot_state(self, encoder):
        """Pipeline synchronisation points.  The per-item :class:`Iptg`
        children are components of their own and capture themselves; replay
        recreates them in the same order."""
        return {
            "finished": self._finished,
            "spawned_iptgs": len(self.iptgs),
            "slots": [slot.available for slot in self._slots],
            "ready": [ready.available for ready in self._ready],
            "done": self.done.triggered,
        }

    def _agent(self, index: int, spec: AgentSpec, port: InitiatorPort,
               base: int):
        """Process ``spec.items`` items, respecting pipeline dependencies."""
        sim = self.sim
        for item in range(spec.items):
            if index > 0:
                # Wait for the upstream agent to hand over item ``item``.
                yield self._ready[index - 1].acquire()
            if index < len(self.specs) - 1:
                # Reserve a slot in the buffer towards the downstream agent.
                yield self._slots[index].acquire()
            iptg = Iptg(sim, f"{self.name}.{spec.name}.it{item}", port,
                        [spec.phase],
                        address_base=base + item * 4096,
                        address_span=4096,
                        seed=hash((self.name, spec.name, item)) & 0xFFFF,
                        parent=self)
            self.iptgs.append(iptg)
            yield iptg.done
            if index > 0:
                # Free the upstream buffer slot this item occupied.
                self._slots[index - 1].release()
            if index < len(self.specs) - 1:
                self._ready[index].release()
        self._finished += 1
        if self._finished == len(self.specs):
            self.done.succeed()

    @property
    def transactions(self):
        """All transactions issued by every agent (for metrics)."""
        result = []
        for iptg in self.iptgs:
            result.extend(iptg.transactions)
        return result
