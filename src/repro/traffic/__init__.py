"""Traffic generation: IPTG generators, address patterns, agents, traces."""

from .agents import AgentSpec, MultiAgentIp
from .iptg import Iptg, IptgPhase
from .patterns import (
    AddressPattern,
    Choice,
    Distribution,
    Fixed,
    Geometric,
    RandomUniform,
    Sequential,
    Strided,
    UniformRange,
)
from .trace import TracePlayer, TraceRecord, TraceRecorder, load_trace, save_trace

__all__ = [
    "AddressPattern",
    "AgentSpec",
    "Choice",
    "Distribution",
    "Fixed",
    "Geometric",
    "Iptg",
    "IptgPhase",
    "MultiAgentIp",
    "RandomUniform",
    "Sequential",
    "Strided",
    "TracePlayer",
    "TraceRecord",
    "TraceRecorder",
    "UniformRange",
    "load_trace",
    "save_trace",
]
