"""IPTG — the configurable IP traffic generator.

"IPTG is a SystemC block developed at STMicroelectronics aimed at reproducing
the communication behaviour of a generic IP ... it allows to try out the SoC
communication infrastructure in real-life conditions such as heavy-loaded
transients which are not likely to be reproduced using random packet
injection." (Section 3.1)

An :class:`Iptg` drives one initiator port through a list of
:class:`IptgPhase` programs.  Each phase sets its own statistical properties
(burst length, read fraction, idle gaps, address pattern, message grouping),
so multi-regime application lifetimes — like the two working phases Fig. 6
dissects — are a single configuration.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Callable, List, Optional

from ..core.component import Component
from ..core.events import Event
from ..core.kernel import Simulator
from ..core.statistics import Counter
from ..interconnect.base import InitiatorPort
from ..interconnect.types import Opcode, Transaction
from .patterns import AddressPattern, Distribution, Fixed, Sequential

_next_message_id = [1 << 20]


@dataclass
class IptgPhase:
    """One program phase of a traffic generator.

    Parameters
    ----------
    transactions:
        How many transactions this phase issues.
    burst_beats:
        Distribution of burst lengths, in beats.
    idle_cycles:
        Distribution of idle cycles *between* transactions (intensity knob:
        0 = back-to-back saturation, large = sparse/bursty traffic).
    read_fraction:
        Probability a transaction is a read.
    message_packets:
        Group this many consecutive transactions into one STBus *message*
        (kept together by message-based arbitration).  1 disables grouping.
    blocking:
        Wait for each transaction to finish before generating the next one
        (a non-pipelined IP); otherwise the port's ``max_outstanding``
        credits govern the overlap.
    """

    transactions: int = 100
    burst_beats: Distribution = field(default_factory=lambda: Fixed(8))
    beat_bytes: int = 4
    idle_cycles: Distribution = field(default_factory=lambda: Fixed(0))
    read_fraction: float = 1.0
    posted_writes: bool = True
    priority: int = 0
    message_packets: int = 1
    blocking: bool = False
    address_pattern: Optional[AddressPattern] = None

    def __post_init__(self) -> None:
        if self.transactions < 0:
            raise ValueError("transactions must be >= 0")
        if not 0.0 <= self.read_fraction <= 1.0:
            raise ValueError(f"read_fraction out of range: {self.read_fraction}")
        if self.message_packets < 1:
            raise ValueError("message_packets must be >= 1")

    def scaled(self, **overrides) -> "IptgPhase":
        """Copy with overrides (used by experiment sweeps)."""
        return replace(self, **overrides)


class Iptg(Component):
    """A traffic generator bound to an initiator port."""

    def __init__(self, sim: Simulator, name: str, port: InitiatorPort,
                 phases: List[IptgPhase], address_base: int = 0,
                 address_span: int = 1 << 20, seed: int = 1,
                 on_phase: Optional[Callable[[int], None]] = None,
                 clock=None, parent: Optional[Component] = None) -> None:
        # The generator paces itself on the IP's own clock: an IP keeps its
        # native rate even when its cluster is collapsed onto a faster node.
        super().__init__(sim, name, clock=clock or port.fabric.clock,
                         parent=parent)
        if not phases:
            raise ValueError(f"IPTG {name} needs at least one phase")
        self.port = port
        self.phases = list(phases)
        self.address_base = address_base
        self.address_span = address_span
        self.rng = random.Random(seed)
        self.on_phase = on_phase
        self.generated = Counter(f"{name}.generated")
        self.transactions: List[Transaction] = []
        #: Completes when every generated transaction has finished.
        self.done: Event = sim.event(name=f"{name}.done")
        self.process(self._run(), name="gen")

    # ------------------------------------------------------------------
    def snapshot_state(self, encoder):
        """Generator progress: RNG stream position, issued transactions
        (digested — the full list is bulky), completion status."""
        return {
            "rng": encoder.digest(self.rng.getstate()),
            "generated": self.generated.value,
            "completed": self.completed,
            "transactions": encoder.digest(
                [encoder.transaction(txn) for txn in self.transactions]),
            "done": self.done.triggered,
        }

    # ------------------------------------------------------------------
    def _pattern_for(self, phase: IptgPhase) -> AddressPattern:
        if phase.address_pattern is not None:
            return phase.address_pattern
        return Sequential(self.address_base, self.address_span)

    def _run(self):
        clk = self.clock
        for index, phase in enumerate(self.phases):
            if self.on_phase is not None:
                self.on_phase(index)
            pattern = self._pattern_for(phase)
            remaining = phase.transactions
            while remaining > 0:
                gap = phase.idle_cycles.sample(self.rng)
                if gap > 0:
                    yield clk.edges(gap)
                group = min(phase.message_packets, remaining)
                yield from self._issue_message(phase, pattern, group)
                remaining -= group
        # Drain: wait for every outstanding transaction.
        for txn in self.transactions:
            if not txn.ev_done.triggered:
                yield txn.ev_done
        self.done.succeed(len(self.transactions))

    def _issue_message(self, phase: IptgPhase, pattern: AddressPattern,
                       packets: int):
        """Issue ``packets`` transactions forming one message."""
        message_id = None
        if packets > 1:
            _next_message_id[0] += 1
            message_id = _next_message_id[0]
        is_read = self.rng.random() < phase.read_fraction
        for i in range(packets):
            beats = max(1, phase.burst_beats.sample(self.rng))
            burst_bytes = beats * phase.beat_bytes
            address = pattern.next_address(self.rng, burst_bytes)
            txn = Transaction(
                initiator=self.name,
                opcode=Opcode.READ if is_read else Opcode.WRITE,
                address=address,
                beats=beats,
                beat_bytes=phase.beat_bytes,
                priority=phase.priority,
                posted=phase.posted_writes and not is_read,
                message_id=message_id,
                message_last=(i == packets - 1),
            )
            self.transactions.append(txn)
            self.generated.add()
            yield self.port.issue(txn)
            if phase.blocking and not txn.ev_done.triggered:
                yield txn.ev_done

    # ------------------------------------------------------------------
    @property
    def completed(self) -> int:
        return sum(1 for t in self.transactions if t.t_done is not None)

    @property
    def bytes_generated(self) -> int:
        return sum(t.total_bytes for t in self.transactions)

    def mean_latency_ps(self) -> float:
        latencies = [t.latency_ps for t in self.transactions
                     if t.latency_ps is not None]
        return sum(latencies) / len(latencies) if latencies else 0.0
