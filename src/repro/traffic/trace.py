"""Trace-driven traffic: record, save, load and replay exact sequences.

The simplest IPTG configuration "can also issue a transaction according to a
specified sequence" (Section 3.1).  Traces are plain text, one record per
line::

    <gap_cycles> <R|W> <address_hex> <beats> <beat_bytes>

which keeps them diffable and hand-editable for directed tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, List, Optional, Union

from ..core.component import Component
from ..core.events import Event
from ..core.kernel import Simulator
from ..interconnect.base import InitiatorPort
from ..interconnect.types import Opcode, Transaction


@dataclass(frozen=True)
class TraceRecord:
    """One transaction of a recorded sequence."""

    gap_cycles: int
    opcode: Opcode
    address: int
    beats: int
    beat_bytes: int = 4

    def __post_init__(self) -> None:
        if self.gap_cycles < 0:
            raise ValueError("negative gap")
        if self.beats < 1:
            raise ValueError("beats must be >= 1")

    def to_line(self) -> str:
        letter = "R" if self.opcode is Opcode.READ else "W"
        return (f"{self.gap_cycles} {letter} {self.address:#x} "
                f"{self.beats} {self.beat_bytes}")

    @classmethod
    def from_line(cls, line: str, where: Optional[str] = None) -> "TraceRecord":
        """Parse one record; ``where`` (e.g. ``"dma.trace:17"``) is
        prepended to parse errors so a bad line in a long file names its
        file and line number instead of just echoing itself."""
        at = f"{where}: " if where else ""
        parts = line.split()
        if len(parts) != 5:
            raise ValueError(f"{at}malformed trace line: {line!r}")
        gap, letter, address, beats, beat_bytes = parts
        if letter not in ("R", "W"):
            raise ValueError(f"{at}bad opcode letter {letter!r} in {line!r}")
        try:
            return cls(gap_cycles=int(gap),
                       opcode=Opcode.READ if letter == "R" else Opcode.WRITE,
                       address=int(address, 0),
                       beats=int(beats),
                       beat_bytes=int(beat_bytes))
        except ValueError as exc:
            raise ValueError(f"{at}malformed trace line: {line!r} "
                             f"({exc})") from None


def save_trace(path: Union[str, Path], records: Iterable[TraceRecord]) -> None:
    """Write a trace file (one record per line, '#' comments allowed)."""
    lines = [record.to_line() for record in records]
    Path(path).write_text("\n".join(lines) + "\n")


def load_trace(path: Union[str, Path]) -> List[TraceRecord]:
    """Read a trace file written by :func:`save_trace`.

    Parse errors carry ``<file>:<line>`` context.
    """
    path = Path(path)
    records = []
    for lineno, raw in enumerate(path.read_text().splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if line:
            records.append(TraceRecord.from_line(line,
                                                 where=f"{path}:{lineno}"))
    return records


class TracePlayer(Component):
    """Replays a recorded sequence through an initiator port."""

    def __init__(self, sim: Simulator, name: str, port: InitiatorPort,
                 records: List[TraceRecord], blocking: bool = False,
                 parent: Optional[Component] = None) -> None:
        super().__init__(sim, name, clock=port.fabric.clock, parent=parent)
        self.port = port
        self.records = list(records)
        self.blocking = blocking
        self.transactions: List[Transaction] = []
        self.done: Event = sim.event(name=f"{name}.done")
        self.process(self._play(), name="play")

    def snapshot_state(self, encoder):
        """Replay cursor (how many records became transactions) + digests."""
        return {
            "issued": len(self.transactions),
            "transactions": encoder.digest(
                [encoder.transaction(txn) for txn in self.transactions]),
            "done": self.done.triggered,
        }

    def _play(self):
        clk = self.clock
        for record in self.records:
            if record.gap_cycles > 0:
                yield clk.edges(record.gap_cycles)
            txn = Transaction(initiator=self.name, opcode=record.opcode,
                              address=record.address, beats=record.beats,
                              beat_bytes=record.beat_bytes,
                              posted=record.opcode is Opcode.WRITE)
            self.transactions.append(txn)
            yield self.port.issue(txn)
            if self.blocking and not txn.ev_done.triggered:
                yield txn.ev_done
        for txn in self.transactions:
            if not txn.ev_done.triggered:
                yield txn.ev_done
        self.done.succeed(len(self.transactions))


class TraceRecorder:
    """Collects issued transactions into replayable records.

    Attach with ``recorder.observe(iptg.transactions)`` after a run, or call
    :meth:`capture` incrementally; gaps are reconstructed from issue
    timestamps on the recording fabric's clock.
    """

    def __init__(self, clock) -> None:
        self.clock = clock
        self.records: List[TraceRecord] = []
        self._last_issue_ps: Optional[int] = None

    def capture(self, txn: Transaction) -> None:
        if txn.t_issued is None:
            raise ValueError(f"transaction {txn.tid} was never issued")
        if self._last_issue_ps is None:
            gap = 0
        else:
            gap = max(0, (txn.t_issued - self._last_issue_ps)
                      // self.clock.period_ps)
        self._last_issue_ps = txn.t_issued
        self.records.append(TraceRecord(gap_cycles=int(gap), opcode=txn.opcode,
                                        address=txn.address, beats=txn.beats,
                                        beat_bytes=txn.beat_bytes))

    def observe(self, transactions: Iterable[Transaction]) -> None:
        for txn in sorted(transactions, key=lambda t: t.t_issued or 0):
            self.capture(txn)
