"""Statistical building blocks for traffic generation.

IPTG "can generate bus traffic which obeys some statistical properties, i.e.
in terms of burst length, transaction types, addressing schemes" (Section
3.1).  This module provides those three ingredients: integer *distributions*
(burst lengths, idle gaps), *address patterns* (streaming, random, 2D-block)
and the read/write mix.  Everything draws from per-instance seeded RNGs so
platform runs are reproducible.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence


class Distribution:
    """An integer-valued random variable.  Subclasses implement sample()."""

    def sample(self, rng: random.Random) -> int:
        raise NotImplementedError

    @property
    def mean(self) -> float:
        raise NotImplementedError


class Fixed(Distribution):
    """Always the same value."""

    def __init__(self, value: int) -> None:
        self.value = int(value)

    def sample(self, rng: random.Random) -> int:
        return self.value

    @property
    def mean(self) -> float:
        return float(self.value)

    def __repr__(self) -> str:
        return f"Fixed({self.value})"


class UniformRange(Distribution):
    """Uniform over ``[low, high]`` inclusive."""

    def __init__(self, low: int, high: int) -> None:
        if low > high:
            raise ValueError(f"empty range [{low}, {high}]")
        self.low = int(low)
        self.high = int(high)

    def sample(self, rng: random.Random) -> int:
        return rng.randint(self.low, self.high)

    @property
    def mean(self) -> float:
        return (self.low + self.high) / 2

    def __repr__(self) -> str:
        return f"UniformRange({self.low}, {self.high})"


class Choice(Distribution):
    """Weighted choice among explicit values (e.g. burst lengths 4/8/16)."""

    def __init__(self, values: Sequence[int],
                 weights: Optional[Sequence[float]] = None) -> None:
        if not values:
            raise ValueError("Choice needs at least one value")
        self.values: List[int] = [int(v) for v in values]
        if weights is None:
            weights = [1.0] * len(self.values)
        if len(weights) != len(self.values):
            raise ValueError("weights length must match values length")
        if any(w < 0 for w in weights) or sum(weights) <= 0:
            raise ValueError("weights must be non-negative with positive sum")
        self.weights = list(weights)

    def sample(self, rng: random.Random) -> int:
        return rng.choices(self.values, weights=self.weights, k=1)[0]

    @property
    def mean(self) -> float:
        total = sum(self.weights)
        return sum(v * w for v, w in zip(self.values, self.weights)) / total

    def __repr__(self) -> str:
        return f"Choice({self.values}, weights={self.weights})"


class Geometric(Distribution):
    """Geometric with success probability ``p``, clipped at ``cap``.

    Models bursty idle-gap processes: many short gaps, occasional long ones
    — the "heavy-loaded transients" flavour of real IP traffic.
    """

    def __init__(self, p: float, cap: int = 1 << 16) -> None:
        if not 0 < p <= 1:
            raise ValueError(f"p must be in (0, 1], got {p}")
        if cap < 1:
            raise ValueError("cap must be >= 1")
        self.p = p
        self.cap = cap

    def sample(self, rng: random.Random) -> int:
        count = 1
        while count < self.cap and rng.random() > self.p:
            count += 1
        return count

    @property
    def mean(self) -> float:
        return min(1.0 / self.p, float(self.cap))

    def __repr__(self) -> str:
        return f"Geometric(p={self.p})"


# ----------------------------------------------------------------------
# address patterns
# ----------------------------------------------------------------------
class AddressPattern:
    """A stream of transaction start addresses."""

    def next_address(self, rng: random.Random, burst_bytes: int) -> int:
        raise NotImplementedError


class Sequential(AddressPattern):
    """Streaming access: each burst follows the previous one.

    This is the memory-controller-friendly pattern (row hits, mergeable
    opcodes) that message-based arbitration tries to preserve end to end.
    """

    def __init__(self, base: int, span: int) -> None:
        if span <= 0:
            raise ValueError("span must be positive")
        self.base = base
        self.span = span
        self._offset = 0

    def next_address(self, rng: random.Random, burst_bytes: int) -> int:
        if self._offset + burst_bytes > self.span:
            self._offset = 0
        address = self.base + self._offset
        self._offset += burst_bytes
        return address


class RandomUniform(AddressPattern):
    """Uniform random bursts inside a window (controller-hostile)."""

    def __init__(self, base: int, span: int, align: int = 64) -> None:
        if span <= 0 or align <= 0:
            raise ValueError("span and align must be positive")
        self.base = base
        self.span = span
        self.align = align

    def next_address(self, rng: random.Random, burst_bytes: int) -> int:
        limit = max(1, (self.span - burst_bytes) // self.align)
        return self.base + rng.randrange(limit) * self.align


class Strided(AddressPattern):
    """2D block walk: ``block`` bytes, then jump by ``stride``.

    The image-resizer pattern — lines of a tile are contiguous, consecutive
    lines are a frame-width apart.
    """

    def __init__(self, base: int, block: int, stride: int, blocks: int) -> None:
        if block <= 0 or stride <= 0 or blocks <= 0:
            raise ValueError("block, stride and blocks must be positive")
        self.base = base
        self.block = block
        self.stride = stride
        self.blocks = blocks
        self._index = 0
        self._within = 0

    def next_address(self, rng: random.Random, burst_bytes: int) -> int:
        if self._within + burst_bytes > self.block:
            self._within = 0
            self._index = (self._index + 1) % self.blocks
        address = self.base + self._index * self.stride + self._within
        self._within += burst_bytes
        return address
