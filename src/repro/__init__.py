"""repro — a cycle-accurate virtual platform for memory-centric MPSoCs.

Reproduction of Medardoni et al., "Capturing the interaction of the
communication, memory and I/O subsystems in memory-centric industrial MPSoC
platforms" (DATE 2007).

The package models a complete industrial MPSoC platform — STBus / AMBA AHB /
AMBA AXI interconnect layers, protocol bridges, configurable traffic
generators (IPTG), a VLIW DSP core with caches, an on-chip shared memory and
an LMI SDRAM memory controller with its optimisation engine — on top of a
deterministic discrete-event simulation kernel, together with the experiment
harness that regenerates every result figure of the paper.

See ``examples/quickstart.py`` for a complete runnable example and
``DESIGN.md`` for the system inventory.
"""

from .core import (
    Barrier,
    Clock,
    Component,
    Event,
    Fifo,
    Semaphore,
    SimulationError,
    Simulator,
)
from .interconnect import (
    AddressRange,
    AhbLayer,
    AxiFabric,
    Opcode,
    StbusNode,
    StbusType,
    Transaction,
)
from .devices import DisplayController, DmaDescriptor, DmaEngine
from .memory import LmiConfig, LmiController, OnChipMemory

__version__ = "1.0.0"

__all__ = [
    "AddressRange",
    "AhbLayer",
    "AxiFabric",
    "Barrier",
    "Clock",
    "Component",
    "DisplayController",
    "DmaDescriptor",
    "DmaEngine",
    "Event",
    "Fifo",
    "LmiConfig",
    "LmiController",
    "OnChipMemory",
    "Opcode",
    "Semaphore",
    "SimulationError",
    "Simulator",
    "StbusNode",
    "StbusType",
    "Transaction",
    "__version__",
]
