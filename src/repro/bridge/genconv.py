"""GenConv — the optimised STBus-STBus converter.

"Proprietary STBus converters and adapters (named GenConv) are in charge of
bridging the heterogeneous clusters, and make use of buffering resources to
store bus requests, responses and outstanding transactions" (Section 3).
The Generic Converter "perform[s] clock domain crossing, data width and
STBus protocol type conversion ... standalone or in any combination within
the same instance" (Section 3.1).

Functionally the decisive difference from the lightweight bridges is that
GenConv is **split-capable**: its target side keeps accepting new
transactions while earlier reads are still in flight, so multiple
outstanding requests cross the bridge and pile up in the memory
controller's input FIFO — the pre-condition for the LMI's optimisation
engine to do anything at all (Section 4.2, Fig. 5) and for distributed
STBus platforms to keep their performance advantage.

Responses are relayed *cut-through*: data beats stream to the source side
as they arrive (after the return-crossing latency), in source-acceptance
order by default (STBus Type 2 in-order delivery); ``in_order=False``
models a Type-3 instance that reassociates shaped packets out of order.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from ..core.component import Component
from ..core.kernel import Simulator
from ..core.sync import WorkSignal
from ..interconnect.base import Fabric
from ..interconnect.types import AddressRange, ResponseBeat, Transaction
from .base import BridgeBase, _BeatRelay


class _RelayJob:
    """Per-transaction response-relay state."""

    __slots__ = ("txn", "child", "relay", "buffer", "crossed", "is_ack")

    def __init__(self, bridge: "GenConvBridge", txn: Transaction,
                 child: Transaction, is_ack: bool) -> None:
        self.txn = txn
        self.child = child
        self.relay: _BeatRelay = bridge.make_relay(txn)
        self.buffer: Deque[ResponseBeat] = deque()
        self.crossed = False  # return-crossing latency paid?
        self.is_ack = is_ack


class GenConvBridge(BridgeBase):
    """Split-capable STBus converter with multiple outstanding children."""

    # GenConv keeps message grouping alive across layers: "messaging ...
    # ensures that a sequence of transactions that can be optimized by the
    # memory controller ... are kept together all the way to the controller".
    # Safe because the STBus source delivers message packets contiguously.
    preserve_messages = True

    def __init__(self, sim: Simulator, name: str, source: Fabric, dest: Fabric,
                 address_range: AddressRange, crossing_cycles: int = 1,
                 request_depth: int = 4, response_depth: int = 8,
                 child_outstanding: int = 4, in_order: bool = True,
                 parent: Optional[Component] = None) -> None:
        super().__init__(sim, name, source, dest, address_range,
                         crossing_cycles=crossing_cycles,
                         request_depth=request_depth,
                         response_depth=response_depth,
                         child_outstanding=child_outstanding, parent=parent)
        self.in_order = in_order
        self._jobs: Deque[_RelayJob] = deque()
        self._relay_work = WorkSignal(sim, name=f"{name}.relay_work")
        self.process(self._pump(), name="pump")
        self.process(self._relay_loop(), name="relay")

    # ------------------------------------------------------------------
    # forward path
    # ------------------------------------------------------------------
    def _pump(self):
        """Accept and forward requests continuously (split target side).

        The only thing that stalls this loop is running out of child
        credits (``child_outstanding``) or destination-side backpressure —
        never a read in flight.
        """
        lt = self._lt
        while True:
            txn = self.target_port.request_fifo.try_get() if lt else None
            if txn is None:
                txn = yield self.target_port.get_request()
            self.forwarded.add()
            yield from self.cross(self.dest.clock)
            child = self.make_child(txn)
            child.posted = txn.posted
            if txn.is_read:
                job = _RelayJob(self, txn, child, is_ack=False)
                child.meta["beat_sink"] = self._make_sink(job)
                self._enqueue(job)
                # Wake the relay on completion too: a child that errors
                # without data (e.g. a decode error) must still be relayed.
                child.meta["err_watch"] = True
            elif txn.meta.get("needs_ack", False):
                job = _RelayJob(self, txn, child, is_ack=True)
                self._enqueue(job)
                child.meta["ack_job"] = job
            elif not txn.ev_done.triggered:
                # Posted write: source side considers it done at acceptance.
                txn.complete(self.sim.now)
            yield self.init_port.issue(child)
            if "ack_job" in child.meta or "err_watch" in child.meta:
                child.ev_done.add_callback(lambda _e: self._notify())

    def _enqueue(self, job: _RelayJob) -> None:
        self._jobs.append(job)
        self._notify()

    def _make_sink(self, job: _RelayJob):
        def sink(beat: ResponseBeat) -> None:
            job.buffer.append(beat)
            self._notify()
        return sink

    def _notify(self) -> None:
        self._relay_work.notify()

    def _wait_work(self):
        return self._relay_work.wait()

    def snapshot_state(self, encoder):
        """Store-and-forward state: every open relay job with its buffered
        beats and width-conversion progress."""
        state = super().snapshot_state(encoder)
        state["in_order"] = self.in_order
        state["jobs"] = [
            {
                "txn": encoder.tid_alias(job.txn.tid),
                "child": encoder.tid_alias(job.child.tid),
                "buffer": list(job.buffer),
                "bytes_arrived": job.relay.bytes_arrived,
                "beats_emitted": job.relay.beats_emitted,
                "error_seen": job.relay.error_seen,
                "crossed": job.crossed,
                "is_ack": job.is_ack,
            } for job in self._jobs
        ]
        return state

    # ------------------------------------------------------------------
    # return path
    # ------------------------------------------------------------------
    def _pick_job(self) -> Optional[_RelayJob]:
        """The job allowed to make progress right now.

        In-order mode only ever serves the head; out-of-order mode serves
        the first job with work available (shaped-packet reassociation).
        """
        if not self._jobs:
            return None
        if self.in_order:
            head = self._jobs[0]
            return head if self._job_ready(head) else None
        for job in self._jobs:
            if self._job_ready(job):
                return job
        return None

    @staticmethod
    def _job_ready(job: _RelayJob) -> bool:
        if job.is_ack:
            return job.child.ev_done is not None and job.child.ev_done.triggered
        if job.buffer:
            return True
        # A read whose child failed without delivering data (decode error)
        # still needs its error response relayed.
        return (job.child.error and job.child.ev_done is not None
                and job.child.ev_done.triggered)

    def _relay_loop(self):
        lt = self._lt
        fifo = self.target_port.response_fifo
        while True:
            job = self._pick_job()
            if job is None:
                yield self._wait_work()
                continue
            if not job.crossed:
                yield from self.cross(self.source.clock)
                job.crossed = True
            if job.is_ack:
                self._jobs.remove(job)
                ack = ResponseBeat(job.txn, index=-1, is_last=True,
                                   error=job.child.error)
                if not (lt and fifo.try_put(ack)):
                    yield self.target_port.put_beat(ack)
                continue
            if not job.buffer:
                # Errored child with no data: synthesise the error response.
                self._jobs.remove(job)
                job.relay.error_seen = True
                while not job.relay.done:
                    beat = job.relay.emit()
                    if not (lt and fifo.try_put(beat)):
                        yield self.target_port.put_beat(beat)
                continue
            beat = job.buffer.popleft()
            fresh = job.relay.arrived(beat)
            for _ in range(fresh):
                out = job.relay.emit()
                if not (lt and fifo.try_put(out)):
                    yield self.target_port.put_beat(out)
            if job.relay.done:
                self._jobs.remove(job)
