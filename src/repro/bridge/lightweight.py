"""Lightweight hybrid bridges (Fig. 2).

"The developed bridges have some common features: (i) they handle write
transactions in a store-and-forward fashion, (ii) they have a blocking
target side in presence of read transactions and (iii) they have tunable
latency.  These bridges were not designed to be competitive with the highly
optimized STBus-STBus ones." (Section 3.2)

The blocking read path is the single property that dominates Figs. 3 and 5:
once a read is in flight the bridge accepts nothing else, so the source
layer backs up exactly as the paper's AHB-AHB and AXI-AXI bridges do —
"the distributed AXI platform [is] almost equivalent to the full AHB
platform ... advanced features of AXI ... are vanished by poor bridge
functionality".

One class covers every protocol pairing (AHB-AHB, AXI-AXI, AHB-STBus,
AXI-STBus, AHB-AXI, STBus-AHB, STBus-AXI): the fabric port abstraction does
the protocol matching, and the *lightweight* policy — store-and-forward
writes, fully blocking reads — is pairing-independent, which is exactly the
paper's point about basic bridging functionality.
"""

from __future__ import annotations

from typing import Optional

from ..core.component import Component
from ..core.fifo import Fifo
from ..core.kernel import Simulator
from ..interconnect.base import Fabric
from ..interconnect.types import AddressRange, ResponseBeat, Transaction
from .base import BridgeBase


class LightweightBridge(BridgeBase):
    """Store-and-forward writes, blocking reads, tunable latency."""

    def __init__(self, sim: Simulator, name: str, source: Fabric, dest: Fabric,
                 address_range: AddressRange, crossing_cycles: int = 2,
                 request_depth: int = 1, response_depth: int = 4,
                 parent: Optional[Component] = None) -> None:
        super().__init__(sim, name, source, dest, address_range,
                         crossing_cycles=crossing_cycles,
                         request_depth=request_depth,
                         response_depth=response_depth,
                         child_outstanding=1, parent=parent)
        self.process(self._pump(), name="pump")

    def _pump(self):
        """Serve transactions one at a time — the blocking target side."""
        lt = self._lt
        while True:
            txn = self.target_port.request_fifo.try_get() if lt else None
            if txn is None:
                txn = yield self.target_port.get_request()
            self.forwarded.add()
            # Forward crossing (asynchronous FIFO + resynchronisation).
            yield from self.cross(self.dest.clock)
            child = self.make_child(txn)
            if txn.is_read:
                yield from self._blocking_read(txn, child)
            else:
                yield from self._store_and_forward_write(txn, child)

    def _blocking_read(self, txn: Transaction, child: Transaction):
        """Issue the child read and hold the bridge until it completes.

        Response data is only relayed after the child finished (full
        store-and-forward on the return path too — "implementing
        non-blocking read transactions has a heavier impact on bridge
        complexity" and the lightweight design explicitly avoids it).
        """
        yield self.init_port.issue(child)
        if not child.ev_done.triggered:
            yield child.ev_done
        # Return crossing.
        yield from self.cross(self.source.clock)
        relay = self.make_relay(txn)
        relay.error_seen = child.error  # propagate far-side bus errors
        fifo = self.target_port.response_fifo
        for _ in range(txn.beats):
            beat = relay.emit()
            if not (self._lt and fifo.try_put(beat)):
                yield self.target_port.put_beat(beat)

    def _store_and_forward_write(self, txn: Transaction, child: Transaction):
        """Forward a fully-buffered write (store-and-forward).

        The payload is re-serialised out of the store buffer one
        destination-width beat per destination cycle before the child can be
        issued.  The bridge accepts the next transaction once the child has
        been queued — unless the source side needs an acknowledgement, in
        which case the non-posted semantics keep the bridge (and therefore
        the source layer) blocked until the far side confirms.
        """
        child.posted = txn.posted
        yield self.dest.clock.edges(child.beats)
        yield self.init_port.issue(child)
        if txn.meta.get("needs_ack", False):
            if not child.ev_done.triggered:
                yield child.ev_done
            yield from self.cross(self.source.clock)
            ack = ResponseBeat(txn, index=-1, is_last=True,
                               error=child.error)
            if not (self._lt and self.target_port.response_fifo.try_put(ack)):
                yield self.target_port.put_beat(ack)
        elif not txn.ev_done.triggered:
            txn.complete(self.sim.now)
