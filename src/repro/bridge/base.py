"""Common bridge machinery (the generic hybrid bridge scheme of Fig. 2).

Every bridge has

* a **target side** attached to the *source* fabric (it looks like a slave
  decoding the address window that lives beyond the bridge),
* an **initiator side** attached to the *destination* fabric (it re-issues a
  *child* transaction there), and
* crossing latency between the two, standing in for the asynchronous FIFOs
  that separate the clock domains.

Besides protocol matching, "bridges are in charge of additional tasks in
heterogeneous MPSoC platforms, such as frequency adaptation and datawidth
conversion" (Section 1): the child transaction is re-beaten to the
destination fabric's data width, and the response stream is converted back,
byte-accurately, to the source side's beat size.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..core.component import Component
from ..core.kernel import Simulator
from ..interconnect.base import Fabric, InitiatorPort, TargetPort
from ..interconnect.types import AddressRange, ResponseBeat, Transaction
from ..obs.energy import fj_from_pj as _fj


class BridgeBase(Component):
    """Shared plumbing of lightweight bridges and GenConv converters.

    Parameters
    ----------
    source / dest:
        The fabrics on either side.  Their protocols may differ freely; the
        port abstraction hides the details, and the subclasses model the
        *functional* differences (split capability, blocking behaviour).
    address_range:
        The window on ``source`` that routes across this bridge.
    crossing_cycles:
        One-way latency through the bridge, in destination-clock cycles on
        the forward path and source-clock cycles on the return path.
    request_depth / response_depth:
        Buffering of the bridge's source-side bus interface.
    """

    def __init__(self, sim: Simulator, name: str, source: Fabric, dest: Fabric,
                 address_range: AddressRange, crossing_cycles: int = 2,
                 request_depth: int = 2, response_depth: int = 4,
                 child_outstanding: int = 1,
                 parent: Optional[Component] = None) -> None:
        super().__init__(sim, name, clock=dest.clock, parent=parent)
        if crossing_cycles < 0:
            raise ValueError(f"negative crossing latency {crossing_cycles}")
        self.source = source
        self.dest = dest
        self.crossing_cycles = crossing_cycles
        self.target_port: TargetPort = source.add_target(
            name, address_range,
            request_depth=request_depth, response_depth=response_depth)
        self.init_port: InitiatorPort = dest.connect_initiator(
            f"{name}.out", max_outstanding=child_outstanding)
        self.forwarded = sim.metrics.counter(f"{name}.forwarded")
        #: Loosely-timed flag, captured once (select-once discipline).
        self._lt = sim.lt_enabled
        checks = getattr(sim, "_checks", None)
        if checks is not None:
            checks.register_bridge(self)
        #: Energy accountant slot + pre-resolved per-beat charge (fJ).
        self._energy = sim._energy
        self._e_beat = 0 if self._energy is None else \
            _fj(self._energy.config.bridge_pj_per_beat)
        #: Message-grouping survival, resolved once (select-once
        #: discipline): subclass policy AND a source that delivers
        #: message packets contiguously.
        self._messages_survive = (self.preserve_messages
                                  and self._source_keeps_messages())

    # ------------------------------------------------------------------
    @property
    def kind(self) -> str:
        """Human-readable protocol pair, e.g. ``"ahb-stbus"``."""
        return f"{self.source.protocol}-{self.dest.protocol}"

    def cross(self, clock):
        """Generator charging the one-way crossing latency (0 = free)."""
        if self.crossing_cycles > 0:
            yield clock.edges(self.crossing_cycles)

    #: Whether message grouping survives the crossing.  Only safe when the
    #: source fabric delivers message packets contiguously (STBus-family
    #: fabrics with message arbitration do — the shared node *and* the
    #: crossbar, whose per-target ``MessageArbiter`` keeps packets
    #: together; AHB/AXI interleave freely, and forwarding the grouping
    #: would dead-lock the destination's message lock).
    preserve_messages = False

    def _source_keeps_messages(self) -> bool:
        """Resolved through the protocol registry so every STBus-family
        source qualifies.  The old hand-coded test compared the protocol
        label against ``"stbus"`` exactly, which silently stripped message
        grouping when the source was an STBus *crossbar* (label
        ``"stbus-xbar"``) — the one asymmetry the derived bridge matrix
        flushed out of the hand-written pairings."""
        from ..interconnect.protocols import spec_for_fabric

        try:
            spec = spec_for_fabric(self.source)
        except ValueError:  # pragma: no cover - unregistered custom fabric
            return False
        return spec.family == "stbus"

    def make_child(self, txn: Transaction) -> Transaction:
        """Re-issue ``txn`` at the destination data width.

        Total bytes are preserved; the beat count is recomputed for the
        destination path width (datawidth conversion).
        """
        width = self.dest.data_width_bytes
        beats = max(1, -(-txn.total_bytes // width))
        child = txn.child(beats=beats, beat_bytes=width)
        if not self._messages_survive:
            child.message_id = None
            child.message_last = True
        child.meta["bridge"] = self.name
        spans = self.sim._spans
        if spans is not None:
            spans.mark(txn, "bridge.convert")
        if self._energy is not None:
            # Conversion cost scales with the far-side beat count (the
            # re-timing FIFO traversals + width-conversion datapath).
            self._energy.charge(self.name, self._e_beat * beats,
                                self.sim.now, txn.initiator, txn.tid)
        return child

    # ------------------------------------------------------------------
    # response-stream width conversion
    # ------------------------------------------------------------------
    def make_relay(self, txn: Transaction) -> "_BeatRelay":
        """A converter turning child beats back into source-side beats."""
        return _BeatRelay(self, txn)

    # ------------------------------------------------------------------
    # checkpoint state
    # ------------------------------------------------------------------
    def snapshot_state(self, encoder):
        """The bridge's own counters; its ports are captured by the two
        fabrics they belong to."""
        return {"forwarded": self.forwarded.value}


class _BeatRelay:
    """Byte-accurate response width converter for one read transaction.

    Child beats (destination width) are fed in via :meth:`arrived`; the
    number of source-side beats that became complete is returned so the
    bridge process can emit them.
    """

    def __init__(self, bridge: BridgeBase, txn: Transaction) -> None:
        self.bridge = bridge
        self.txn = txn
        self.bytes_arrived = 0
        self.beats_emitted = 0
        #: Set once any child beat carried an error response; propagated to
        #: every subsequently emitted source-side beat.
        self.error_seen = False

    def arrived(self, beat: ResponseBeat) -> int:
        """Register one child beat; return newly completable source beats."""
        if beat.error:
            self.error_seen = True
        self.bytes_arrived += beat.txn.beat_bytes
        total_ready = min(self.bytes_arrived // self.txn.beat_bytes,
                          self.txn.beats)
        fresh = total_ready - self.beats_emitted
        return fresh

    def emit(self) -> ResponseBeat:
        """Produce the next source-side beat (caller paces the emission)."""
        if self.beats_emitted >= self.txn.beats:
            raise RuntimeError(f"relay over-emission for {self.txn!r}")
        index = self.beats_emitted
        self.beats_emitted += 1
        return ResponseBeat(self.txn, index=index,
                            is_last=index == self.txn.beats - 1,
                            error=self.error_seen)

    @property
    def done(self) -> bool:
        return self.beats_emitted >= self.txn.beats
