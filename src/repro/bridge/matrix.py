"""The derived N x N bridge matrix.

Bridge pairings used to be hand-coded call sites: the platform builder
picked :class:`~repro.bridge.genconv.GenConvBridge` or
:class:`~repro.bridge.lightweight.LightweightBridge` purely from config
flags, and nothing validated the fabric pair.  This module derives the
whole matrix from the protocol registry instead:

* :func:`conversion_plan` diffs two :class:`ProtocolSpec` entries into
  the explicit store-and-forward conversion steps a bridge between them
  performs (handshake adaptation, width and clock crossing, burst
  serialisation, split downgrade, posted-write adaptation);
* :func:`validate_bridge_pair` rejects nonsensical pairings — bridging
  into or out of the TLM tier builds silently but deadlocks on the
  first forwarded transaction — with a
  :class:`~repro.platforms.loader.ConfigError` naming both protocols;
* :func:`make_bridge` turns a plan into a live bridge instance.  Both
  bridge classes were always protocol-agnostic behind the port
  abstraction; the matrix makes the pairing an explicit, validated,
  introspectable object instead of an implicit property of call sites.

For the five legacy fabrics the derived path instantiates exactly the
classes and arguments the hand-coded call sites used, so existing
platforms stay bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..core.component import Component
from ..core.kernel import Simulator
from ..interconnect.base import Fabric
from ..interconnect.protocols import (
    ProtocolSpec,
    bridge_pair_unsupported,
    bridgeable_specs,
    get_spec,
    spec_for_fabric,
)
from ..interconnect.types import AddressRange
from .base import BridgeBase
from .genconv import GenConvBridge
from .lightweight import LightweightBridge


@dataclass(frozen=True)
class ConversionStep:
    """One store-and-forward conversion a bridge performs."""

    kind: str    # "handshake" | "burst" | "split" | "posting" | "interleave"
    detail: str

    def __str__(self) -> str:  # pragma: no cover - repr convenience
        return f"{self.kind}: {self.detail}"


@dataclass(frozen=True)
class BridgePlan:
    """The derived conversion plan for one ``source -> dest`` pairing."""

    source: str
    dest: str
    split_capable: bool
    steps: Tuple[ConversionStep, ...]

    @property
    def bridge_cls(self) -> type:
        """Split-capable plans run the GenConv machinery (multiple
        outstanding children, cut-through relay); blocking plans the
        lightweight store-and-forward one."""
        return GenConvBridge if self.split_capable else LightweightBridge

    def describe(self) -> str:
        """One line per step, for docs/CLI output."""
        head = (f"{self.source} -> {self.dest} "
                f"[{'split' if self.split_capable else 'blocking'}]")
        if not self.steps:
            return head + ": direct store-and-forward"
        return head + ": " + "; ".join(s.detail for s in self.steps)

    def wire_bits(self, source_width_bytes: int = 4,
                  dest_width_bytes: int = 4) -> int:
        """Wires the bridge itself contributes: a full target-side port on
        the source protocol plus a full initiator-side port on the
        destination protocol (the DSE wire-cost model's bridge term)."""
        return (get_spec(self.source).wire_bits(source_width_bytes)
                + get_spec(self.dest).wire_bits(dest_width_bytes))


def _config_error(message: str) -> Exception:
    # Imported lazily: repro.platforms imports repro.bridge at package
    # load, so a module-level import here would be circular.
    from ..platforms.loader import ConfigError

    return ConfigError(message)


def validate_bridge_pair(source, dest) -> Tuple[ProtocolSpec, ProtocolSpec]:
    """Check a ``source -> dest`` bridge pairing against the registry.

    Accepts specs, registered protocol names or live fabric instances.
    Returns the resolved spec pair; raises ``ConfigError`` naming both
    protocols when the pairing cannot work.
    """
    src = _resolve(source)
    dst = _resolve(dest)
    reason = bridge_pair_unsupported(src, dst)
    if reason is not None:
        raise _config_error(
            f"unsupported bridge pairing {src.name!r} -> {dst.name!r}: "
            f"{reason}")
    return src, dst


def _resolve(endpoint) -> ProtocolSpec:
    if isinstance(endpoint, ProtocolSpec):
        return endpoint
    if isinstance(endpoint, str):
        try:
            return get_spec(endpoint)
        except ValueError as exc:
            raise _config_error(str(exc)) from None
    return spec_for_fabric(endpoint)


def conversion_plan(source, dest,
                    split: Optional[bool] = None) -> BridgePlan:
    """Diff two specs into an explicit conversion plan.

    ``split`` forces the bridge's split capability (the platform
    ablation knobs); by default a pairing is split-capable when the
    source protocol can keep issuing during target latency *and* the
    destination sustains multiple outstanding children — otherwise the
    extra GenConv machinery buys nothing over the blocking bridge.
    """
    src, dst = validate_bridge_pair(source, dest)
    if split is None:
        split = src.split and dst.multi_outstanding
    steps = []
    if src.handshake != dst.handshake:
        steps.append(ConversionStep(
            "handshake", f"adapt {src.handshake} to {dst.handshake}"))
    if dst.single_beat and not src.single_beat:
        steps.append(ConversionStep(
            "burst", f"serialise bursts into single-beat {dst.name} "
                     "transfers"))
    elif src.single_beat and not dst.single_beat:
        steps.append(ConversionStep(
            "burst", f"forward single-beat transfers as {dst.name} bursts"))
    if src.split and not dst.split:
        steps.append(ConversionStep(
            "split", f"downgrade split {src.name} traffic onto the "
                     f"non-split {dst.name} side"
                     + ("" if split else " (blocking target side)")))
    elif dst.split and not src.split:
        steps.append(ConversionStep(
            "split", f"non-split {src.name} source serialises the split "
                     f"{dst.name} side"))
    if src.posted_writes and not dst.posted_writes:
        steps.append(ConversionStep(
            "posting", f"posted {src.name} writes complete at the bridge; "
                       f"{dst.name} acknowledgements absorbed"))
    elif dst.posted_writes and not src.posted_writes:
        steps.append(ConversionStep(
            "posting", f"non-posted {src.name} writes wait for {dst.name} "
                       "acceptance"))
    if src.response_interleave and not dst.response_interleave:
        steps.append(ConversionStep(
            "interleave", "reassemble interleaved responses into "
                          f"packet-atomic {dst.name} streams"))
    return BridgePlan(source=src.name, dest=dst.name, split_capable=split,
                      steps=tuple(steps))


def make_bridge(sim: Simulator, name: str, source: Fabric, dest: Fabric,
                address_range: AddressRange, *,
                split: Optional[bool] = None,
                crossing_cycles: Optional[int] = None,
                child_outstanding: int = 4,
                parent: Optional[Component] = None,
                **kwargs) -> BridgeBase:
    """Instantiate the derived bridge for ``source -> dest``.

    The pairing is validated against the registry first; construction
    arguments mirror the two bridge classes (``crossing_cycles``
    defaults to each class's own default when not given).
    """
    plan = conversion_plan(source, dest, split=split)
    if plan.split_capable:
        return GenConvBridge(
            sim, name, source, dest, address_range,
            crossing_cycles=1 if crossing_cycles is None else crossing_cycles,
            child_outstanding=child_outstanding, parent=parent, **kwargs)
    return LightweightBridge(
        sim, name, source, dest, address_range,
        crossing_cycles=2 if crossing_cycles is None else crossing_cycles,
        parent=parent, **kwargs)


def bridge_matrix() -> Dict[Tuple[str, str], BridgePlan]:
    """Every derivable ``(source, dest)`` plan, including same-protocol
    pairs (width/frequency conversion is still meaningful there)."""
    specs = bridgeable_specs()
    return {(a.name, b.name): conversion_plan(a, b)
            for a in specs for b in specs}


__all__ = [
    "BridgePlan",
    "ConversionStep",
    "bridge_matrix",
    "conversion_plan",
    "make_bridge",
    "validate_bridge_pair",
]
