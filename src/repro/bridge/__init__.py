"""Bridges: lightweight hybrid bridges (Fig. 2), STBus GenConv, and the
registry-derived N x N bridge matrix (:mod:`repro.bridge.matrix`)."""

from .base import BridgeBase
from .genconv import GenConvBridge
from .lightweight import LightweightBridge
from .matrix import (
    BridgePlan,
    ConversionStep,
    bridge_matrix,
    conversion_plan,
    make_bridge,
    validate_bridge_pair,
)

__all__ = [
    "BridgeBase",
    "BridgePlan",
    "ConversionStep",
    "GenConvBridge",
    "LightweightBridge",
    "bridge_matrix",
    "conversion_plan",
    "make_bridge",
    "validate_bridge_pair",
]
