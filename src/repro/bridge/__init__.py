"""Bridges: lightweight hybrid bridges (Fig. 2) and STBus GenConv."""

from .base import BridgeBase
from .genconv import GenConvBridge
from .lightweight import LightweightBridge

__all__ = ["BridgeBase", "GenConvBridge", "LightweightBridge"]
