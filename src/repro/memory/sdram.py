"""SDRAM device model (SDR / DDR) with bank state and timing enforcement.

The device is *passive*: the LMI controller drives it by asking for command
schedules.  Every JEDEC-style constraint from
:class:`~repro.memory.timing.SdramTiming` is enforced by per-bank and global
readiness times; violating call orders raise, so the controller model is
checked against the spec on every run (the paper validated its controller
"with RTL signal waveforms on a cycle-by-cycle basis" — our equivalent is
this always-on timing checker).

Command set, as listed in the paper: PRECHARGE, AUTOREFRESH, ACTIVE (we use
the common name ACTIVATE), READ, WRITE.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.clock import Clock
from ..core.kernel import Simulator
from .timing import SdramGeometry, SdramTiming


class SdramTimingError(RuntimeError):
    """A command was issued before the device was ready for it."""


@dataclass
class BankState:
    """Dynamic state of one SDRAM bank."""

    open_row: Optional[int] = None
    #: Earliest time an ACTIVATE may be issued (tRP / tRC bounded).
    ready_activate_ps: int = 0
    #: Earliest time a READ/WRITE may be issued (tRCD bounded).
    ready_rw_ps: int = 0
    #: Earliest time a PRECHARGE may be issued (tRAS / tWR bounded).
    ready_precharge_ps: int = 0
    #: Time of the last ACTIVATE (for tRC).
    last_activate_ps: int = -10**15


class SdramDevice:
    """One SDR/DDR SDRAM device on a dedicated memory clock."""

    def __init__(self, sim: Simulator, name: str, clock: Clock,
                 timing: SdramTiming, geometry: SdramGeometry) -> None:
        self.sim = sim
        self.name = name
        self.clock = clock
        self.timing = timing
        self.geometry = geometry
        self.banks: List[BankState] = [BankState() for _ in range(geometry.banks)]
        self._cmdbus_free_ps = 0
        self._databus_free_ps = 0
        self._last_write_data_end_ps = -10**15
        self._last_activate_any_ps = -10**15
        # -- statistics (registry-backed, addressable as "<name>.*") ------
        metrics = sim.metrics
        self.activates = metrics.counter(f"{name}.activates")
        self.precharges = metrics.counter(f"{name}.precharges")
        self.reads = metrics.counter(f"{name}.reads")
        self.writes = metrics.counter(f"{name}.writes")
        self.refreshes = metrics.counter(f"{name}.refreshes")
        self.row_hits = metrics.counter(f"{name}.row_hits")
        self.row_misses = metrics.counter(f"{name}.row_misses")
        #: Command log for the independent timing auditor, or ``None``.
        #: The auditor replays this stream against the timing parameters
        #: from scratch — the constructive enforcement above cannot witness
        #: its own bugs (see ``repro.check.sdram_audit``).
        checks = getattr(sim, "_checks", None)
        self.cmd_log = checks.sdram_log(self) if checks is not None else None
        #: Energy accounting (``None`` unless an accountant is attached).
        #: Command energies are pre-resolved to integer femtojoules so the
        #: command paths below stay plain integer adds; power terms use the
        #: identity 1 mW x 1 ps = 1 fJ.
        energy = getattr(sim, "_energy", None)
        self._energy = energy
        if energy is not None:
            # Deferred import: repro.memory must not import repro.obs at
            # module scope (repro.obs.energy imports the timing tables).
            from ..obs.energy import fj_from_pj
            coeff = energy.config.sdram
            self._e_act = fj_from_pj(coeff.act_pj)
            self._e_pre = fj_from_pj(coeff.pre_pj)
            self._e_rd = fj_from_pj(coeff.rd_pj_per_beat)
            self._e_wr = fj_from_pj(coeff.wr_pj_per_beat)
            self._e_ref = fj_from_pj(coeff.ref_pj)
            self._e_background_mw = coeff.background_mw
            #: Active-standby energy per ACTIVATE: the JEDEC-minimum
            #: row-open window (tRAS) at ``active_standby_mw``.  This is
            #: deliberately count-based, not residency-based — every
            #: ACTIVATE must keep its row open at least tRAS, while
            #: open-but-idle residency beyond that is the power-down
            #: regime folded into ``background_mw``.  Residency-based
            #: standby would inherit the LT mode's event-reordering
            #: sensitivity (measured ~5% interval drift where commands
            #: drift <1%), breaking the energy clause of the accuracy
            #: contract for a second-order term.
            self._e_standby = int(round(coeff.active_standby_mw
                                        * timing.t_ras * clock.period_ps))
            energy.add_finalizer(self._finalize_energy)

    # ------------------------------------------------------------------
    def _cycles(self, n: int) -> int:
        return n * self.clock.period_ps

    def _command_slot(self, earliest_ps: int) -> int:
        """Reserve the next command-bus cycle at or after ``earliest_ps``."""
        slot = max(earliest_ps, self._cmdbus_free_ps)
        self._cmdbus_free_ps = slot + self._cycles(1)
        return slot

    # ------------------------------------------------------------------
    # individual commands (used by tests and by the high-level access path)
    # ------------------------------------------------------------------
    def precharge(self, bank_index: int, not_before_ps: int) -> int:
        """Issue PRECHARGE; returns the issue time."""
        bank = self.banks[bank_index]
        when = self._command_slot(max(not_before_ps, bank.ready_precharge_ps))
        if self.cmd_log is not None:
            self.cmd_log.record(when, "PRE", bank_index)
        if self._energy is not None:
            self._energy.charge(self.name, self._e_pre, when)
        bank.open_row = None
        bank.ready_activate_ps = max(bank.ready_activate_ps,
                                     when + self._cycles(self.timing.t_rp))
        self.precharges.add()
        return when

    def activate(self, bank_index: int, row: int, not_before_ps: int) -> int:
        """Issue ACTIVATE (the paper's "active"); returns the issue time."""
        bank = self.banks[bank_index]
        if bank.open_row is not None:
            raise SdramTimingError(
                f"{self.name}: ACTIVATE bank {bank_index} with row "
                f"{bank.open_row} still open")
        earliest = max(
            not_before_ps,
            bank.ready_activate_ps,
            bank.last_activate_ps + self._cycles(self.timing.t_rc),
            self._last_activate_any_ps + self._cycles(self.timing.t_rrd),
        )
        when = self._command_slot(earliest)
        if self.cmd_log is not None:
            self.cmd_log.record(when, "ACT", bank_index, row)
        if self._energy is not None:
            # ACT charge plus the tRAS active-standby window it commits to.
            self._energy.charge(self.name, self._e_act + self._e_standby,
                                when)
        bank.open_row = row
        bank.last_activate_ps = when
        self._last_activate_any_ps = when
        bank.ready_rw_ps = when + self._cycles(self.timing.t_rcd)
        bank.ready_precharge_ps = when + self._cycles(self.timing.t_ras)
        self.activates.add()
        return when

    def read(self, bank_index: int, row: int, beats: int,
             not_before_ps: int) -> Tuple[int, int]:
        """Issue READ; returns ``(first_data_ps, last_data_ps)``."""
        first, last = self._data_command(bank_index, row, beats,
                                         not_before_ps, is_write=False)
        self.reads.add()
        return first, last

    def write(self, bank_index: int, row: int, beats: int,
              not_before_ps: int) -> Tuple[int, int]:
        """Issue WRITE; returns ``(first_data_ps, last_data_ps)``."""
        first, last = self._data_command(bank_index, row, beats,
                                         not_before_ps, is_write=True)
        self.writes.add()
        return first, last

    def refresh(self, not_before_ps: int) -> int:
        """AUTOREFRESH: precharge-all then tRFC; returns completion time."""
        latest_pre = not_before_ps
        for index, bank in enumerate(self.banks):
            if bank.open_row is not None:
                latest_pre = max(latest_pre, self.precharge(index, not_before_ps)
                                 + self._cycles(self.timing.t_rp))
            else:
                latest_pre = max(latest_pre, bank.ready_activate_ps)
        when = self._command_slot(latest_pre)
        if self.cmd_log is not None:
            self.cmd_log.record(when, "REF")
        if self._energy is not None:
            # Open banks were closed by the precharges above, so the REF
            # charge is the whole all-banks refresh cycle.
            self._energy.charge(self.name, self._e_ref, when)
        done = when + self._cycles(self.timing.t_rfc)
        for bank in self.banks:
            bank.ready_activate_ps = max(bank.ready_activate_ps, done)
        self.refreshes.add()
        return done

    # ------------------------------------------------------------------
    def _data_command(self, bank_index: int, row: int, beats: int,
                      not_before_ps: int, is_write: bool) -> Tuple[int, int]:
        bank = self.banks[bank_index]
        if bank.open_row != row:
            raise SdramTimingError(
                f"{self.name}: bank {bank_index} row {row} not open "
                f"(open: {bank.open_row})")
        if beats < 1:
            raise ValueError(f"data command with {beats} beats")
        earliest = max(not_before_ps, bank.ready_rw_ps)
        if not is_write:
            # Write-to-read turnaround applies on the shared data bus.
            earliest = max(earliest, self._last_write_data_end_ps
                           + self._cycles(self.timing.t_wtr))
        when = self._command_slot(earliest)
        if self.cmd_log is not None:
            self.cmd_log.record(when, "WR" if is_write else "RD",
                                bank_index, row)
        if self._energy is not None:
            self._energy.charge(
                self.name, (self._e_wr if is_write else self._e_rd) * beats,
                when)
        latency = self._cycles(self.timing.cl if not is_write else 1)
        clocks_needed = -(-beats // self.timing.beats_per_clock)
        first_data = max(when + latency, self._databus_free_ps)
        last_data = first_data + self._cycles(clocks_needed)
        self._databus_free_ps = last_data
        if is_write:
            self._last_write_data_end_ps = last_data
            bank.ready_precharge_ps = max(
                bank.ready_precharge_ps,
                last_data + self._cycles(self.timing.t_wr))
        else:
            bank.ready_precharge_ps = max(bank.ready_precharge_ps, last_data)
        return first_data, last_data

    # ------------------------------------------------------------------
    # energy integration (only reachable with an accountant attached)
    # ------------------------------------------------------------------
    def _finalize_energy(self, now_ps: int) -> None:
        """End-of-run integral: background power over the whole run."""
        self._energy.charge(
            self.name, int(round(self._e_background_mw * now_ps)), now_ps)

    # ------------------------------------------------------------------
    # high-level helper used by the controller's optimisation engine
    # ------------------------------------------------------------------
    def access(self, opcode_is_write: bool, address: int, beats: int,
               not_before_ps: int) -> Tuple[int, int, bool]:
        """Perform a full access (precharge/activate as needed + READ/WRITE).

        Returns ``(first_data_ps, last_data_ps, was_row_hit)``.
        """
        bank_index, row, _col = self.geometry.decode(address)
        bank = self.banks[bank_index]
        hit = bank.open_row == row
        if hit:
            self.row_hits.add()
        else:
            self.row_misses.add()
            if bank.open_row is not None:
                self.precharge(bank_index, not_before_ps)
            self.activate(bank_index, row, not_before_ps)
        if opcode_is_write:
            first, last = self.write(bank_index, row, beats, not_before_ps)
        else:
            first, last = self.read(bank_index, row, beats, not_before_ps)
        return first, last, hit

    def is_row_hit(self, address: int) -> bool:
        """Would an access to ``address`` hit an open row right now?"""
        bank_index, row, _col = self.geometry.decode(address)
        return self.banks[bank_index].open_row == row

    def bank_of(self, address: int) -> int:
        return self.geometry.decode(address)[0]

    @property
    def row_hit_rate(self) -> float:
        total = self.row_hits.value + self.row_misses.value
        return self.row_hits.value / total if total else 0.0
