"""Memory subsystem: on-chip SRAM, SDR/DDR SDRAM devices, LMI controller."""

from .lmi import LmiConfig, LmiController
from .onchip import OnChipMemory
from .sdram import BankState, SdramDevice, SdramTimingError
from .timing import (
    DDR_SDRAM,
    SDR_SDRAM,
    TIMING_PRESETS,
    SdramGeometry,
    SdramTiming,
)

__all__ = [
    "BankState",
    "DDR_SDRAM",
    "LmiConfig",
    "LmiController",
    "OnChipMemory",
    "SDR_SDRAM",
    "SdramDevice",
    "SdramGeometry",
    "SdramTiming",
    "SdramTimingError",
    "TIMING_PRESETS",
]
