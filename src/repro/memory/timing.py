"""SDRAM timing parameter sets.

"The controller ... generates the corresponding sequence of SDRAM commands
(e.g., precharge, autorefresh, active, read, write) while meeting SDRAM
timing specifications (e.g., TRAS, TCAS), which are model parameters."
(Section 3.1)

All values are in *memory clock cycles*; the device model converts to
picoseconds with its clock.  The presets are representative mid-2000s parts
(the platform is a 2007 consumer-electronics SoC with an off-chip DDR
SDRAM); absolute values are tunable model parameters exactly as in the
paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict


@dataclass(frozen=True)
class SdramTiming:
    """JEDEC-style timing constraints, in memory-clock cycles."""

    #: CAS latency: READ command to first data (the paper's TCAS).
    cl: int = 3
    #: ACTIVATE to READ/WRITE delay.
    t_rcd: int = 3
    #: PRECHARGE to ACTIVATE delay.
    t_rp: int = 3
    #: ACTIVATE to PRECHARGE minimum (row must stay open this long) — TRAS.
    t_ras: int = 7
    #: ACTIVATE to ACTIVATE, same bank (row cycle time).
    t_rc: int = 10
    #: ACTIVATE to ACTIVATE, different banks.
    t_rrd: int = 2
    #: Write recovery: last write data to PRECHARGE.
    t_wr: int = 3
    #: Write-to-read turnaround.
    t_wtr: int = 2
    #: REFRESH command period (row refresh cycle time).
    t_rfc: int = 14
    #: Average refresh interval.
    t_refi: int = 1560
    #: Data beats transferred per clock: 1 for SDR, 2 for DDR.
    beats_per_clock: int = 2

    def __post_init__(self) -> None:
        for name in ("cl", "t_rcd", "t_rp", "t_ras", "t_rc", "t_rrd",
                     "t_wr", "t_wtr", "t_rfc", "t_refi"):
            if getattr(self, name) < 1:
                raise ValueError(f"timing parameter {name} must be >= 1")
        if self.beats_per_clock not in (1, 2):
            raise ValueError("beats_per_clock must be 1 (SDR) or 2 (DDR)")
        if self.t_rc < self.t_ras + self.t_rp:
            raise ValueError(
                f"inconsistent timings: tRC ({self.t_rc}) < "
                f"tRAS + tRP ({self.t_ras + self.t_rp})")

    @property
    def is_ddr(self) -> bool:
        return self.beats_per_clock == 2

    def scaled(self, **overrides) -> "SdramTiming":
        """A copy with selected parameters replaced (for sweeps)."""
        return replace(self, **overrides)


@dataclass(frozen=True)
class SdramGeometry:
    """Device organisation: banks x rows x columns x data width."""

    banks: int = 4
    row_bits: int = 13
    col_bits: int = 10
    #: Width of the device data bus in bytes (one column = one beat).
    width_bytes: int = 8

    def __post_init__(self) -> None:
        if self.banks < 1 or self.banks & (self.banks - 1):
            raise ValueError(f"banks must be a power of two, got {self.banks}")
        if not 1 <= self.row_bits <= 20 or not 1 <= self.col_bits <= 14:
            raise ValueError("implausible row/col bits")
        if self.width_bytes not in (1, 2, 4, 8, 16):
            raise ValueError(f"unsupported device width {self.width_bytes}")

    @property
    def row_bytes(self) -> int:
        """Bytes per open row (page size)."""
        return (1 << self.col_bits) * self.width_bytes

    @property
    def capacity_bytes(self) -> int:
        return self.banks * (1 << self.row_bits) * self.row_bytes

    def decode(self, address: int) -> tuple:
        """Map a byte address to ``(bank, row, column)``.

        Bank bits sit above the column bits (bank interleaving of
        consecutive rows' worth of data), the usual controller mapping that
        lets sequential streams hit open rows for a whole page.
        """
        if address < 0:
            raise ValueError(f"negative address {address:#x}")
        beat = address // self.width_bytes
        col = beat & ((1 << self.col_bits) - 1)
        beat >>= self.col_bits
        bank = beat & (self.banks - 1)
        beat >>= self.banks.bit_length() - 1
        row = beat & ((1 << self.row_bits) - 1)
        return bank, row, col


#: Representative DDR SDRAM (DDR-333-ish at a 166 MHz memory clock).
DDR_SDRAM = SdramTiming(cl=3, t_rcd=3, t_rp=3, t_ras=7, t_rc=10, t_rrd=2,
                        t_wr=3, t_wtr=2, t_rfc=14, t_refi=1297,
                        beats_per_clock=2)

#: Representative single-data-rate SDRAM (PC133-class).
SDR_SDRAM = SdramTiming(cl=2, t_rcd=2, t_rp=2, t_ras=5, t_rc=8, t_rrd=2,
                        t_wr=2, t_wtr=1, t_rfc=9, t_refi=1040,
                        beats_per_clock=1)

#: Named presets for configuration files.
TIMING_PRESETS: Dict[str, SdramTiming] = {
    "ddr": DDR_SDRAM,
    "sdr": SDR_SDRAM,
}


@dataclass(frozen=True)
class SdramEnergy:
    """Per-command SDRAM energies plus standby power.

    The command energies (picojoules per command, per data beat for
    RD/WR) pair with the :class:`SdramTiming` presets above the same way
    a datasheet's IDD table pairs with its AC timing table: the numbers
    are representative of mid-2000s parts (derived from IDD0/IDD4/IDD5
    figures at 2.5 V for the DDR preset, 3.3 V for the SDR one), and are
    tunable model parameters exactly like the timings.

    Power terms are integrated over simulated time by the energy
    accountant (``repro.obs.energy``): ``background_mw`` over the whole
    run (clock tree, input buffers, refresh-interval leakage) and
    ``active_standby_mw`` over every interval a bank holds a row open
    (the IDD3N-minus-IDD2N delta that rewards precharging idle banks).
    """

    #: ACTIVATE: decode + row fetch into the sense amps (pJ/command).
    act_pj: float = 180.0
    #: PRECHARGE: restore the row, release the sense amps (pJ/command).
    pre_pj: float = 80.0
    #: READ burst data movement (pJ per data beat).
    rd_pj_per_beat: float = 18.0
    #: WRITE burst data movement (pJ per data beat).
    wr_pj_per_beat: float = 20.0
    #: AUTOREFRESH: all-banks row refresh cycle (pJ/command).
    ref_pj: float = 450.0
    #: Baseline device power whenever the clock runs (mW).
    background_mw: float = 45.0
    #: Additional power per bank while it holds a row open (mW).
    active_standby_mw: float = 12.0

    def __post_init__(self) -> None:
        for name in ("act_pj", "pre_pj", "rd_pj_per_beat", "wr_pj_per_beat",
                     "ref_pj", "background_mw", "active_standby_mw"):
            if getattr(self, name) < 0:
                raise ValueError(f"energy parameter {name} cannot be negative")

    def scaled(self, **overrides) -> "SdramEnergy":
        """A copy with selected parameters replaced (for sweeps)."""
        return replace(self, **overrides)


#: Energy companion to :data:`DDR_SDRAM` (2.5 V DDR-333-class device).
DDR_ENERGY = SdramEnergy()

#: Energy companion to :data:`SDR_SDRAM` (3.3 V PC133-class device):
#: higher rail voltage, slower clock — more energy per command and beat,
#: less standby power.
SDR_ENERGY = SdramEnergy(act_pj=240.0, pre_pj=110.0, rd_pj_per_beat=28.0,
                         wr_pj_per_beat=31.0, ref_pj=560.0,
                         background_mw=30.0, active_standby_mw=16.0)

#: Named presets for configuration files (mirrors :data:`TIMING_PRESETS`).
ENERGY_PRESETS: Dict[str, SdramEnergy] = {
    "ddr": DDR_ENERGY,
    "sdr": SDR_ENERGY,
}
