"""On-chip shared memory model.

The cheap-access comparison point of Sections 4.1/4.2: "an on-chip core with
1 wait state".  Two orthogonal speed knobs:

``wait_states``
    Per-word throughput cost: every memory word takes ``1 + wait_states``
    array cycles.  With one wait state this forces the 50% response-channel
    efficiency bound of Section 4.1.2.

``access_latency_cycles``
    Initial access time per burst ("the memory device gets progressively
    slower in responding to access requests" — the Fig. 4 sweep variable).
    Latency phases of up to ``pipeline_depth`` accesses may overlap, the
    data port stays strictly serialised.

``pipeline_depth`` together with the request-FIFO depth of the target port
is what Section 4.2 calls the buffering of the target interface: a simple
slave has a single-slot interface and "each transaction is blocking"
(``pipeline_depth=1``), whereas a smarter interface tracks several
outstanding accesses — the property that lets *distributed* platforms keep
the master-to-slave path filled when latency grows (guideline 3(iii)).
"""

from __future__ import annotations

from typing import Optional

from ..core.clock import Clock
from ..core.component import Component
from ..core.kernel import Simulator
from ..core.statistics import Counter
from ..core.sync import Semaphore
from ..interconnect.base import TargetPort
from ..interconnect.types import ResponseBeat, Transaction


class OnChipMemory(Component):
    """On-chip SRAM behind a fabric target port."""

    def __init__(self, sim: Simulator, name: str, port: TargetPort,
                 clock: Clock, wait_states: int = 1, width_bytes: int = 8,
                 access_latency_cycles: int = 0, pipeline_depth: int = 1,
                 parent: Optional[Component] = None) -> None:
        super().__init__(sim, name, clock=clock, parent=parent)
        if wait_states < 0:
            raise ValueError(f"negative wait states: {wait_states}")
        if access_latency_cycles < 0:
            raise ValueError(f"negative access latency: {access_latency_cycles}")
        if pipeline_depth < 1:
            raise ValueError(f"pipeline depth must be >= 1: {pipeline_depth}")
        if width_bytes not in (1, 2, 4, 8, 16):
            raise ValueError(f"unsupported memory width {width_bytes}")
        self.port = port
        self.wait_states = wait_states
        self.width_bytes = width_bytes
        self.access_latency_cycles = access_latency_cycles
        self.pipeline_depth = pipeline_depth
        self.reads = Counter(f"{name}.reads")
        self.writes = Counter(f"{name}.writes")
        self.beats_served = Counter(f"{name}.beats")
        #: Concurrent latency phases in flight (the interface's slots).
        self._slots = Semaphore(sim, pipeline_depth, name=f"{name}.slots")
        #: The data port: one burst streams at a time, in order.
        self._data_port = Semaphore(sim, 1, name=f"{name}.data_port")
        self._order = 0
        self._next_to_stream = 0
        self._turn_events = {}
        #: Loosely-timed flag, captured once (select-once discipline).
        self._lt = sim.lt_enabled
        #: Energy accounting: slot + pre-resolved fJ per served beat.
        #: LT batching changes when beats surface, never how many, so the
        #: charge totals are identical between resolutions.
        self._energy = sim._energy
        if self._energy is not None:
            # Deferred import: repro.memory must not import repro.obs at
            # module scope (repro.obs.energy imports the timing tables).
            from ..obs.energy import fj_from_pj
            self._e_beat = fj_from_pj(self._energy.config.onchip_pj_per_beat)
        self.process(self._dispatch(), name="dispatch")

    # ------------------------------------------------------------------
    def snapshot_state(self, encoder):
        """Array-access bookkeeping.  ``_turn_events`` holds live kernel
        events, so only the waiting tickets (the keys) are captured —
        the events themselves are reproduced by replay."""
        return {
            "reads": self.reads.value,
            "writes": self.writes.value,
            "beats_served": self.beats_served.value,
            "slots_available": self._slots.available,
            "data_port_available": self._data_port.available,
            "order": self._order,
            "next_to_stream": self._next_to_stream,
            "waiting_tickets": sorted(self._turn_events),
        }

    # ------------------------------------------------------------------
    def _service_cycles(self, total_bytes: int) -> int:
        """Array cycles for a burst: ``1 + wait_states`` per memory word."""
        words = max(1, -(-total_bytes // self.width_bytes))
        return words * (self.wait_states + 1)

    def _dispatch(self):
        """Pull requests and launch (possibly overlapping) accesses."""
        lt = self._lt
        while True:
            # LT: both resources free right now — skip the two queued
            # same-timestamp events the blocking pattern would cost.
            if lt and self._slots.try_acquire():
                txn = self.port.request_fifo.try_get()
                if txn is None:
                    txn = yield self.port.get_request()
            else:
                yield self._slots.acquire()
                txn = yield self.port.get_request()
            ticket = self._order
            self._order += 1
            self.process(self._access(txn, ticket), name=f"acc{txn.tid}",
                         immediate=True)

    def _access(self, txn: Transaction, ticket: int):
        clk = self.clock
        if self.access_latency_cycles > 0:
            yield clk.edges(self.access_latency_cycles)
        # Bursts stream strictly in arrival order on the single data port.
        while self._next_to_stream != ticket:
            waiter = self._turn_events.get(ticket)
            if waiter is None or waiter.processed:
                waiter = self.sim.event(name=f"{self.name}.turn{ticket}")
                self._turn_events[ticket] = waiter
            yield waiter
        if not (self._lt and self._data_port.try_acquire()):
            yield self._data_port.acquire()
        try:
            if txn.is_read:
                self.reads.add()
                yield from self._stream_read(txn, clk)
            else:
                self.writes.add()
                yield from self._commit_write(txn, clk)
        finally:
            self._data_port.release()
            self._slots.release()
            self._next_to_stream += 1
            waiter = self._turn_events.pop(self._next_to_stream, None)
            if waiter is not None and not waiter.triggered:
                waiter.succeed()

    def _charge_beats(self, txn: Transaction, count: int) -> None:
        """Array-access energy for ``count`` served beats of ``txn``."""
        self._energy.charge(self.name, self._e_beat * count, self.sim.now,
                            txn.initiator, txn.tid)

    def _stream_read(self, txn: Transaction, clk: Clock):
        """Stream the burst out, byte-based array time spread over beats."""
        total_cycles = self._service_cycles(txn.total_bytes)
        base = total_cycles // txn.beats
        remainder = total_cycles - base * txn.beats
        if self._lt:
            yield from self._stream_read_lt(txn, clk, base, remainder)
            return
        for index in range(txn.beats):
            cycles = base + (remainder if index == 0 else 0)
            if cycles > 0:
                yield clk.edges(cycles)
            self.beats_served.add()
            if self._energy is not None:
                self._charge_beats(txn, 1)
            beat = ResponseBeat(txn, index=index, is_last=index == txn.beats - 1)
            # A full response FIFO back-pressures the array naturally.
            yield self.port.put_beat(beat)

    def _stream_read_lt(self, txn: Transaction, clk: Clock,
                        base: int, remainder: int):
        """LT read streaming: as many beats as the response FIFO can absorb
        right now advance in one analytic step; a full FIFO (contention)
        falls back to the per-beat cycle-accurate shape.  The cumulative
        array time of the burst is identical to CA — only the instants at
        which *intermediate* beats surface move (docs/FAST_SIM.md)."""
        fifo = self.port.response_fifo
        index = 0
        while index < txn.beats:
            free = 0 if fifo._put_waiters else fifo.capacity - len(fifo._items)
            k = min(free, txn.beats - index)
            if k == 0:
                # Back-pressure: cycle-accurate shape for this beat.
                cycles = base + (remainder if index == 0 else 0)
                if cycles > 0:
                    yield clk.edges(cycles)
                self.beats_served.add()
                if self._energy is not None:
                    self._charge_beats(txn, 1)
                yield self.port.put_beat(ResponseBeat(
                    txn, index=index, is_last=index == txn.beats - 1))
                index += 1
                continue
            cycles = base * k + (remainder if index == 0 else 0)
            if cycles > 0:
                yield clk.edges(cycles)
            self.beats_served.add(k)
            if self._energy is not None:
                self._charge_beats(txn, k)
            for offset in range(k):
                i = index + offset
                fifo.try_put(ResponseBeat(txn, index=i,
                                          is_last=i == txn.beats - 1))
            if k > 1:
                self.sim.note_fastforward(k - 1)
            index += k

    def _commit_write(self, txn: Transaction, clk: Clock):
        """Commit the already-transferred data, then acknowledge if needed."""
        yield clk.edges(self._service_cycles(txn.total_bytes))
        self.beats_served.add(txn.beats)
        if self._energy is not None:
            self._charge_beats(txn, txn.beats)
        if txn.meta.get("needs_ack", not txn.posted):
            ack = ResponseBeat(txn, index=-1, is_last=True)
            if not (self._lt and self.port.response_fifo.try_put(ack)):
                yield self.port.put_beat(ack)
        elif not txn.ev_done.triggered:
            # Posted write on a fabric that did not already complete it.
            txn.complete(self.sim.now)
