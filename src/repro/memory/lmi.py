"""LMI memory controller model.

The paper's controller was reverse engineered from RTL waveforms: "The model
includes a bus dependent and a bus independent part ... Input and output
FIFOs allow storage of incoming packets or injection of outgoing packets into
the bus.  FIFO size and bus data width are tunable parameters.  The
controller implements an optimization engine [which] performs memory access
optimizations such as opcode merging and variable-depth lookahead, and
generates the corresponding sequence of SDRAM commands ... while meeting
SDRAM timing specifications" (Section 3.1).

Our model keeps the same split:

bus dependent part
    The :class:`~repro.interconnect.base.TargetPort` it sits behind — its
    ``request_fifo`` is the input FIFO whose occupancy Fig. 6 dissects, its
    ``response_fifo`` the output FIFO.

bus independent part
    The optimisation engine + command scheduler in this module, driving a
    :class:`~repro.memory.sdram.SdramDevice` whose always-on timing checker
    stands in for the paper's cycle-by-cycle RTL validation.

The headline latency is back-annotated exactly as in the paper: the
``pipeline_front_cycles``/``pipeline_back_cycles`` parameters are chosen so a
row-hit read observes ~11 controller cycles from request sampling to first
read data (Section 4.2: "11 cycles to get the first read data word since the
request was sampled").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..core.clock import Clock
from ..core.component import Component
from ..core.kernel import Simulator
from ..core.sync import WorkSignal
from ..interconnect.base import TargetPort
from ..interconnect.types import Opcode, ResponseBeat, Transaction
from .sdram import SdramDevice
from .timing import DDR_SDRAM, SdramGeometry, SdramTiming


@dataclass(frozen=True)
class LmiConfig:
    """Tunable parameters of the LMI controller.

    ``input_fifo_depth``/``output_fifo_depth`` size the bus-interface FIFOs;
    ``lookahead_depth`` is the optimisation window ("variable-depth
    lookahead"); ``merge_limit`` bounds how many queued sequential bursts may
    be fused into one SDRAM access ("opcode merging"); the pipeline cycle
    counts are the back-annotated controller latencies.
    """

    input_fifo_depth: int = 6
    output_fifo_depth: int = 8
    lookahead_depth: int = 4
    merge_limit: int = 4
    pipeline_front_cycles: int = 2
    pipeline_back_cycles: int = 2
    refresh_enabled: bool = True
    #: Let queued reads bypass posted writes inside the lookahead window
    #: (writes are latency-insensitive once posted; reads stall initiators).
    read_priority: bool = False

    def __post_init__(self) -> None:
        if self.input_fifo_depth < 1 or self.output_fifo_depth < 1:
            raise ValueError("FIFO depths must be >= 1")
        if self.lookahead_depth < 1:
            raise ValueError("lookahead depth must be >= 1")
        if self.merge_limit < 1:
            raise ValueError("merge limit must be >= 1")
        if self.pipeline_front_cycles < 0 or self.pipeline_back_cycles < 0:
            raise ValueError("pipeline latencies cannot be negative")


class LmiController(Component):
    """The off-chip SDRAM memory controller (the platform bottleneck)."""

    def __init__(self, sim: Simulator, name: str, port: TargetPort,
                 clock: Clock, config: Optional[LmiConfig] = None,
                 timing: SdramTiming = DDR_SDRAM,
                 geometry: Optional[SdramGeometry] = None,
                 parent: Optional[Component] = None) -> None:
        super().__init__(sim, name, clock=clock, parent=parent)
        self.port = port
        self.config = config or LmiConfig()
        self.device = SdramDevice(sim, f"{name}.sdram", clock, timing,
                                  geometry or SdramGeometry())
        if self.device.cmd_log is not None:
            # The auditor only enforces the autorefresh interval when the
            # controller's refresh engine is actually enabled.
            self.device.cmd_log.refresh_expected = self.config.refresh_enabled
        # -- statistics (registry-backed, addressable as "<name>.*") ------
        metrics = sim.metrics
        self.served = metrics.counter(f"{name}.served")
        self.merges = metrics.counter(f"{name}.merges")
        self.lookahead_promotions = metrics.counter(f"{name}.lookahead_promotions")
        self.read_latency = metrics.histogram(f"{name}.read_latency")
        self._last_was_write = False
        self._next_refresh_ps = clock.to_ps(timing.t_refi)
        #: Loosely-timed flag, captured once (select-once discipline).
        self._lt = sim.lt_enabled
        # Wake the engine whenever a request lands in the input FIFO.
        self._work = WorkSignal(sim, name=f"{name}.work")
        port.request_fifo.watch(self._on_input_level)
        self.process(self._engine(), name="engine")

    # ------------------------------------------------------------------
    @classmethod
    def attach(cls, sim: Simulator, fabric, name: str, address_base: int,
               address_size: int, clock: Clock,
               config: Optional[LmiConfig] = None,
               timing: SdramTiming = DDR_SDRAM,
               geometry: Optional[SdramGeometry] = None,
               parent: Optional[Component] = None) -> "LmiController":
        """Create the target port on ``fabric`` and the controller in one go."""
        from ..interconnect.types import AddressRange

        cfg = config or LmiConfig()
        port = fabric.add_target(name, AddressRange(address_base, address_size),
                                 request_depth=cfg.input_fifo_depth,
                                 response_depth=cfg.output_fifo_depth)
        return cls(sim, name, port, clock, config=cfg, timing=timing,
                   geometry=geometry, parent=parent)

    # ------------------------------------------------------------------
    def snapshot_state(self, encoder):
        """Optimisation-engine + SDRAM device state (the port FIFOs are
        captured by the fabric the port belongs to)."""
        device = self.device
        return {
            "last_was_write": self._last_was_write,
            "next_refresh_ps": self._next_refresh_ps,
            "served": self.served.value,
            "merges": self.merges.value,
            "lookahead_promotions": self.lookahead_promotions.value,
            "sdram": {
                "banks": [
                    {
                        "open_row": bank.open_row,
                        "ready_activate_ps": bank.ready_activate_ps,
                        "ready_rw_ps": bank.ready_rw_ps,
                        "ready_precharge_ps": bank.ready_precharge_ps,
                        "last_activate_ps": bank.last_activate_ps,
                    } for bank in device.banks
                ],
                "cmdbus_free_ps": device._cmdbus_free_ps,
                "databus_free_ps": device._databus_free_ps,
                "last_write_data_end_ps": device._last_write_data_end_ps,
                "last_activate_any_ps": device._last_activate_any_ps,
                "activates": device.activates.value,
                "precharges": device.precharges.value,
                "reads": device.reads.value,
                "writes": device.writes.value,
                "refreshes": device.refreshes.value,
                "row_hits": device.row_hits.value,
                "row_misses": device.row_misses.value,
            },
        }

    # ------------------------------------------------------------------
    def _on_input_level(self, _time: int, old: int, new: int) -> None:
        if new > old:
            self._work.notify()

    def _wait_work(self):
        return self._work.wait()

    # ------------------------------------------------------------------
    # optimisation engine
    # ------------------------------------------------------------------
    def _choose(self, window: Sequence[Transaction]) -> Transaction:
        """Pick the next transaction from the lookahead window.

        Preference order: a row hit matching the last access direction (no
        bus turnaround), any row hit, then the oldest entry.  Only the
        configured window depth is inspected — with ``lookahead_depth == 1``
        the engine degenerates to strict FIFO order (an ablation knob).
        """
        best = window[0]
        best_score = self._score(best)
        for txn in window[1:]:
            score = self._score(txn)
            if score > best_score:
                best, best_score = txn, score
        if best is not window[0]:
            self.lookahead_promotions.add()
        return best

    def _score(self, txn: Transaction) -> int:
        score = 0
        if self.device.is_row_hit(txn.address):
            score += 2
        if txn.is_write == self._last_was_write:
            score += 1
        if self.config.read_priority and txn.is_read:
            # Reads gate initiator progress; posted writes can wait.
            score += 4
        return score

    def _collect_merges(self, txn: Transaction) -> List[Transaction]:
        """Opcode merging: queued bursts that directly continue ``txn``.

        Candidates must have the same direction, be address-contiguous, stay
        in the same SDRAM row and still fit the merge limit.  They are
        removed from the input FIFO and served by the same device access.
        """
        group = [txn]
        end = txn.end_address
        bank_row = self.device.geometry.decode(txn.address)[:2]
        changed = True
        while changed and len(group) < self.config.merge_limit:
            changed = False
            for candidate in self.port.request_fifo.snapshot():
                if (candidate.opcode is txn.opcode
                        and candidate.address == end
                        and self.device.geometry.decode(candidate.address)[:2]
                        == bank_row):
                    self.port.request_fifo.remove(candidate)
                    group.append(candidate)
                    end = candidate.end_address
                    self.merges.add()
                    changed = True
                    break
        return group

    # ------------------------------------------------------------------
    # main engine process
    # ------------------------------------------------------------------
    def _engine(self):
        clk = self.clock
        cfg = self.config
        fifo = self.port.request_fifo
        while True:
            if cfg.refresh_enabled and self.sim.now >= self._next_refresh_ps:
                done = self.device.refresh(self.sim.now)
                # Catch-up is bounded: after a long idle period the refresh
                # debt is considered paid rather than replayed one by one.
                interval = clk.to_ps(self.device.timing.t_refi)
                self._next_refresh_ps = max(self._next_refresh_ps + interval,
                                            done)
                if done > self.sim.now:
                    yield self.sim.timeout(done - self.sim.now)
                continue
            window = fifo.snapshot()[:cfg.lookahead_depth]
            if not window:
                yield self._wait_work()
                continue
            txn = self._choose(window)
            fifo.remove(txn)
            group = self._collect_merges(txn)
            yield from self._serve_group(group)

    def _serve_group(self, group: List[Transaction]):
        """One SDRAM access covering every transaction in ``group``."""
        clk = self.clock
        cfg = self.config
        first_txn = group[0]
        total_bytes = sum(t.total_bytes for t in group)
        device_beats = max(1, -(-total_bytes // self.device.geometry.width_bytes))
        spans = self.sim._spans
        if spans is not None:
            # Lifecycle marks: engine dequeue now, command issue after the
            # front pipeline — the two hops Fig. 6 cannot see from the bus.
            for txn in group:
                spans.mark(txn, "lmi.engine")
        # Controller front pipeline: decode, optimisation, command issue.
        yield clk.edges(cfg.pipeline_front_cycles)
        first_data, last_data, _hit = self.device.access(
            first_txn.is_write, first_txn.address, device_beats, self.sim.now)
        if spans is not None:
            for txn in group:
                spans.mark(txn, "sdram.cmd")
        self._last_was_write = first_txn.is_write
        self.served.add(len(group))
        if first_txn.is_write:
            yield from self._finish_writes(group, last_data)
        else:
            yield from self._return_read_data(group, first_data, last_data)

    def _finish_writes(self, group: List[Transaction], last_data: int):
        """Wait out the device write burst, then acknowledge if required."""
        if last_data > self.sim.now:
            yield self.sim.timeout(last_data - self.sim.now)
        yield self.clock.edges(self.config.pipeline_back_cycles)
        for txn in group:
            if txn.meta.get("needs_ack", not txn.posted):
                ack = ResponseBeat(txn, index=-1, is_last=True)
                if not (self._lt and self.port.response_fifo.try_put(ack)):
                    yield self.port.put_beat(ack)
            elif not txn.ev_done.triggered:
                txn.complete(self.sim.now)

    def _return_read_data(self, group: List[Transaction],
                          first_data: int, last_data: int):
        """Stream read data back through the output FIFO.

        Bus beats are spread linearly across the device data window, then
        delayed by the back pipeline.  A full output FIFO back-pressures the
        return path (the device transfer itself is already committed — the
        output FIFO is exactly what absorbs that skid).
        """
        clk = self.clock
        back = clk.to_ps(self.config.pipeline_back_cycles)
        bus_beats = sum(t.beats for t in group)
        window = max(0, last_data - first_data)
        step = window // bus_beats if bus_beats else 0
        fifo = self.port.response_fifo
        lt = self._lt
        beat_no = 0
        for txn in group:
            for index in range(txn.beats):
                # Every beat surfaces at its exact device-window instant in
                # both modes: the LMI scheduler's row-hit/merge decisions
                # depend on request *arrival* times, so bunching beats (and
                # thereby shifting when initiators issue their next request)
                # would compound into visible execution-time drift.  LT only
                # skips the put handshake when the FIFO has room — a pure
                # same-timestamp saving (docs/FAST_SIM.md).
                ready = first_data + beat_no * step + back
                if ready > self.sim.now:
                    yield self.sim.timeout(ready - self.sim.now)
                beat = ResponseBeat(txn, index=index,
                                    is_last=index == txn.beats - 1)
                if lt and fifo.try_put(beat):
                    self.sim.note_fastforward()
                else:
                    yield self.port.put_beat(beat)
                beat_no += 1
            if txn.t_accepted is not None:
                self.read_latency.add(self.sim.now - txn.t_accepted)
