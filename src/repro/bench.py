"""Kernel performance scenarios and the regression harness behind them.

The paper's virtual platform earns its keep by being *fast enough* to sweep
large design spaces; this module keeps us honest about that.  It defines the
canonical kernel throughput scenarios (the same ones
``benchmarks/bench_kernel_perf.py`` asserts determinism on), times them with
``time.perf_counter`` and emits a machine-readable ``BENCH_kernel.json`` so
every PR leaves a performance trajectory behind it.

Schema of the output file — one entry per scenario::

    {
      "timeout_storm": {
        "wall_s": 0.0081,          # best-of-N wall-clock seconds
        "events": 8008,            # kernel events processed (determinism probe)
        "events_per_sec": 988642.0,
        "sim_time_ps": 14000       # simulated time covered
      },
      ...
    }

The ``platform_run`` entry additionally records ``"energy_pj"`` — the
quick platform's total energy from a separate, untimed accountant-enabled
run (see ``docs/OBSERVABILITY.md``, "Energy accounting") — so the file
tracks the platform's energy trajectory next to its event trajectory.

Run it via ``repro bench`` (see ``docs/PERFORMANCE.md``) or programmatically
through :func:`run_benchmarks`.  Every scenario returns
``(processed_events, sim_time_ps)`` and must be deterministic: identical
event counts across runs and across kernel refactors are the regression
guard that a "faster" kernel still simulates the same platform.

Scenarios accept the simulation ``resolution`` (``"ca"`` or ``"lt"``, see
``docs/FAST_SIM.md``); each result entry records it under ``"mode"``.  The
two modes schedule *different* event populations by design, so baselines
are only comparable within the same mode — ``benchmarks/ci_gate.py`` pins
the CA counts, ``benchmarks/lt_gate.py`` owns the LT accuracy/speedup
contract.
"""

from __future__ import annotations

import json
import time
from typing import Callable, Dict, Iterable, Optional, Tuple

from .core import Fifo, Simulator

#: A scenario callable:
#: ``fn(scale, resolution) -> (processed_events, sim_time_ps)``.
Scenario = Callable[[float, str], Tuple[int, int]]


def timeout_storm(scale: float = 1.0,
                  resolution: str = "ca") -> Tuple[int, int]:
    """Raw event churn: four processes racing through bare timeouts.

    Measures the kernel's floor cost per event — Timeout construction, heap
    traffic and process resumption, nothing else.  (Timeouts are genuine
    time advances, so the LT mode changes almost nothing here.)
    """
    rounds = max(1, int(2_000 * scale))
    sim = Simulator(resolution=resolution)

    def pinger():
        for _ in range(rounds):
            yield sim.timeout(7)

    for _ in range(4):
        sim.process(pinger())
    sim.run()
    return sim.processed_events, sim.now


def fifo_pipeline(scale: float = 1.0,
                  resolution: str = "ca") -> Tuple[int, int]:
    """Items flowing through a 4-stage bounded FIFO pipeline.

    Exercises the blocking put/get hand-off — the pattern every bus queue,
    bridge FIFO and LMI input queue in the platform is built from.  In LT
    mode the hand-offs resolve through the inline trampoline, so this is
    the scenario that shows the kernel-primitive half of the LT win.
    """
    items = max(1, int(1_000 * scale))
    sim = Simulator(resolution=resolution)
    stages = [Fifo(sim, 4, name=f"s{i}") for i in range(4)]

    def feeder():
        for i in range(items):
            yield stages[0].put(i)

    def mover(src, dst):
        while True:
            item = yield src.get()
            yield dst.put(item)

    def sink():
        for _ in range(items):
            yield stages[-1].get()

    sim.process(feeder())
    for a, b in zip(stages, stages[1:]):
        sim.process(mover(a, b))
    sim.process(sink())
    sim.run(until=10_000_000_000, max_events=10_000_000)
    return sim.processed_events, sim.now


def clock_edges(scale: float = 1.0,
                resolution: str = "ca") -> Tuple[int, int]:
    """Multi-domain clock-edge waits: the pooled-timeout fast path.

    Three processes spinning on 400/250/166 MHz edges — the steady-state
    shape of every cycle-accurate bus model in the platform.  Clock edges
    are genuine time advances, so LT leaves this scenario unchanged.
    """
    edges = max(1, int(3_000 * scale))
    sim = Simulator(resolution=resolution)
    clocks = [sim.clock(freq_mhz=mhz, name=f"clk{mhz}")
              for mhz in (400, 250, 166)]

    def spinner(clk):
        for _ in range(edges):
            yield clk.edge()

    for clk in clocks:
        sim.process(spinner(clk))
    sim.run()
    return sim.processed_events, sim.now


def platform_run(scale: float = 1.0,
                 resolution: str = "ca") -> Tuple[int, int]:
    """A full reference-platform run (quick configuration).

    End-to-end cost with the bus/memory models in the loop: the closest
    proxy for what a design-space sweep iteration costs.  ``scale`` is
    ignored — the quick configuration is already the smallest deterministic
    platform workload.  With ``resolution="lt"`` this is the headline
    dual-resolution scenario: contention-free stretches are fast-forwarded
    analytically (docs/FAST_SIM.md quotes its numbers).
    """
    from .platforms import build_platform, quick_config

    sim = Simulator()
    platform = build_platform(sim, quick_config(resolution=resolution))
    platform.run(max_ps=10**13)
    return sim.processed_events, sim.now


def sweep_fanout(scale: float = 1.0,
                 resolution: str = "ca") -> Tuple[int, int]:
    """A small design-space sweep fanned out over two worker processes.

    Measures the sweep engine's end-to-end cost — config serialisation,
    pool dispatch and result aggregation — on top of the simulations
    themselves.  Caching is disabled so every repeat actually simulates;
    the per-config event counts are summed, so the scenario is exactly as
    deterministic as the serial path it fans out (``tests/test_sweep.py``
    pins the 2-job/serial identity per configuration).
    """
    from .platforms import quick_config
    from .sweep import sweep as run_sweep

    points = max(2, int(4 * scale))
    configs = [quick_config(traffic_scale=0.05 + 0.02 * i,
                            resolution=resolution)
               for i in range(points)]
    outcomes = run_sweep(configs, max_ps=10**13, jobs=2, cache=False)
    events = sum(outcome.events for outcome in outcomes)
    sim_time = max(outcome.sim_time_ps for outcome in outcomes)
    return events, sim_time


SCENARIOS: Dict[str, Scenario] = {
    "timeout_storm": timeout_storm,
    "fifo_pipeline": fifo_pipeline,
    "clock_edges": clock_edges,
    "platform_run": platform_run,
    "sweep_fanout": sweep_fanout,
}


def _platform_energy_pj(resolution: str) -> float:
    """Total quick-platform energy in pJ, from a separate untimed run.

    The timed ``platform_run`` repeats stay on the uninstrumented fast
    path (the wall-clock numbers must keep measuring the disabled-path
    cost); this extra run attaches the accountant and stamps the energy
    total into the result entry so ``BENCH_kernel.json`` tracks the
    platform's energy trajectory alongside its event trajectory.  Like
    the event counts, the total is deterministic per mode.
    """
    import dataclasses

    from .platforms import build_platform, quick_config

    config = quick_config(resolution=resolution)
    config = config.scaled(
        energy=dataclasses.replace(config.energy, enabled=True))
    sim = Simulator()
    platform = build_platform(sim, config)
    result = platform.run(max_ps=10**13)
    return result.energy_total_pj


def run_benchmarks(names: Optional[Iterable[str]] = None, repeats: int = 3,
                   scale: float = 1.0,
                   resolution: str = "ca") -> Dict[str, Dict[str, float]]:
    """Time the named scenarios (default: all) and return the result table.

    Each scenario gets one untimed warm-up run, then ``repeats`` timed runs;
    the best wall-clock is reported (the noise floor of a busy machine only
    ever slows a run down).  ``resolution`` selects the simulation mode the
    scenarios run at and is recorded in every entry as ``"mode"``.  Raises
    ``KeyError`` on an unknown scenario name, ``ValueError`` on an unknown
    resolution.
    """
    if resolution not in ("ca", "lt"):
        raise ValueError(f"unknown resolution {resolution!r}; "
                         f"expected 'ca' or 'lt'")
    selected = list(names) if names is not None else list(SCENARIOS)
    unknown = [name for name in selected if name not in SCENARIOS]
    if unknown:
        raise KeyError(f"unknown bench scenario(s): {unknown}; "
                       f"available: {sorted(SCENARIOS)}")
    results: Dict[str, Dict[str, float]] = {}
    for name in selected:
        fn = SCENARIOS[name]
        # Warm-up (and the determinism sample).
        events, sim_time = fn(scale, resolution)
        best = float("inf")
        for _ in range(max(1, repeats)):
            start = time.perf_counter()
            run_events, run_sim_time = fn(scale, resolution)
            elapsed = time.perf_counter() - start
            if (run_events, run_sim_time) != (events, sim_time):
                raise RuntimeError(
                    f"scenario {name!r} is non-deterministic: "
                    f"{(run_events, run_sim_time)} != {(events, sim_time)}")
            best = min(best, elapsed)
        results[name] = {
            "wall_s": best,
            "events": events,
            "events_per_sec": events / best if best > 0 else float("inf"),
            "sim_time_ps": sim_time,
            "mode": resolution,
        }
        if name == "platform_run":
            results[name]["energy_pj"] = _platform_energy_pj(resolution)
    return results


def write_results(path: str, results: Dict[str, Dict[str, float]]) -> None:
    """Persist a :func:`run_benchmarks` table as ``BENCH_kernel.json``."""
    with open(path, "w") as fh:
        json.dump(results, fh, indent=2, sort_keys=True)
        fh.write("\n")


def format_results(results: Dict[str, Dict[str, float]]) -> str:
    """Human-readable rendering of a result table."""
    lines = [f"{'scenario':<16}{'mode':<6}{'events':>10}{'wall_s':>12}"
             f"{'events/sec':>14}{'sim_time_ps':>16}"]
    for name, row in results.items():
        mode = row.get("mode", "ca")
        lines.append(f"{name:<16}{mode:<6}{row['events']:>10,.0f}"
                     f"{row['wall_s']:>12.4f}"
                     f"{row['events_per_sec']:>14,.0f}{row['sim_time_ps']:>16,.0f}")
    return "\n".join(lines)
