"""Deterministic checkpoint/resume subsystem (see ``docs/ARCHITECTURE.md``).

A :class:`Checkpoint` captures one platform run at a chosen simulation
instant: the configuration document, the kernel position (time and
processed-event count, plus the pending-event profile of the queue) and a
canonical per-component state tree gathered through the
``Component.snapshot_state()`` protocol — FIFO contents, in-flight
transactions, arbiter pointers, bridge relay jobs, SDRAM bank/timing state,
RNG streams, cache tags.  The tree is content-addressed (SHA-256 over its
canonical JSON), versioned and stored on disk.

Resume re-elaborates the configuration on a fresh kernel, deterministically
fast-forwards to the checkpoint instant and then runs ``restore_state()``
on every component, which verifies the reconstructed state bit for bit
against the stored tree before the run continues.  Python cannot serialise
live generator frames, so this is the classic "checkpoint + deterministic
re-execution" scheme (gem5-style): what the checkpoint buys is not
wall-clock savings on the prefix but a *verified* resume point — any
divergence between the simulator that wrote the checkpoint and the one
resuming it is caught at the checkpoint instant instead of corrupting the
continued run silently.

The committed golden regression corpus (``tests/golden/``) is built from
these checkpoints: CI replays every entry and compares both the mid-run
state digest and the final :class:`~repro.analysis.metrics.RunResult`
digest bit for bit (see ``docs/CI.md``).
"""

from .state import (
    StateEncoder,
    capture_state,
    diff_states,
    state_digest,
)
from .checkpoint import (
    SNAPSHOT_FORMAT,
    Checkpoint,
    ResumeOutcome,
    SnapshotError,
    SnapshotFormatError,
    StateMismatch,
    TakeOutcome,
    load_checkpoint,
    resume_checkpoint,
    result_digest,
    run_with_checkpoints,
    save_checkpoint,
    take_checkpoint,
)
from .golden import (
    corpus_summary,
    golden_configs,
    golden_dir,
    golden_entries,
    refresh_golden,
    verify_golden,
)

__all__ = [
    "SNAPSHOT_FORMAT",
    "Checkpoint",
    "ResumeOutcome",
    "SnapshotError",
    "SnapshotFormatError",
    "StateEncoder",
    "StateMismatch",
    "TakeOutcome",
    "capture_state",
    "corpus_summary",
    "diff_states",
    "golden_configs",
    "golden_dir",
    "golden_entries",
    "load_checkpoint",
    "refresh_golden",
    "resume_checkpoint",
    "result_digest",
    "run_with_checkpoints",
    "save_checkpoint",
    "state_digest",
    "take_checkpoint",
    "verify_golden",
]
