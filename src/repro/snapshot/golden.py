"""The golden regression corpus: committed checkpoints CI replays.

``tests/golden/`` holds one checkpoint per corpus entry — small, scaled
platform configurations spanning every experiment family (Fig. 3/4/5
instance shapes, arbitration/two-phase/crossbar/CPU variations) plus the
example configurations shipped under ``examples/configs/``.  Each file
records a mid-run state tree *and* the run's final ``RunResult`` digest,
so a replay (:func:`verify_golden`, the CI golden job and
``tests/test_golden.py``) catches any behavioural drift twice: once at
the checkpoint instant (state tree, bit for bit) and once at completion
(result digest, bit for bit).

When a change *intentionally* alters simulation behaviour, regenerate the
corpus with ``repro snapshot --refresh-golden`` and commit the updated
files alongside the change (see ``docs/CI.md``).
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from ..platforms.config import CpuConfig, PlatformConfig, TwoPhaseSpec
from ..platforms.loader import load_config
from ..platforms.variants import (
    fig3_instances,
    fig4_pair,
    fig5_instances,
    quick_config,
)
from ..sweep import DEFAULT_MAX_PS, load_sweep
from .checkpoint import (
    SnapshotError,
    load_checkpoint,
    resume_checkpoint,
    save_checkpoint,
    take_checkpoint,
)

#: Traffic scale for the figure-derived corpus entries: small enough that
#: the whole corpus replays in CI seconds, large enough that every
#: subsystem (bridges, LMI lookahead, message arbitration) is exercised.
_CORPUS_SCALE = 0.2


def golden_dir() -> Path:
    """Corpus location: ``$REPRO_GOLDEN_DIR`` or ``tests/golden/``."""
    override = os.environ.get("REPRO_GOLDEN_DIR")
    if override:
        return Path(override)
    return Path(__file__).resolve().parents[3] / "tests" / "golden"


def _repo_root() -> Path:
    return Path(__file__).resolve().parents[3]


def golden_configs() -> Dict[str, Tuple[PlatformConfig, int]]:
    """The corpus manifest: entry name -> (configuration, run bound).

    Names are stable — they become the committed file names — and the set
    deliberately spans the experiment config space: the five Fig. 3
    platform instances, the Fig. 4 topology pair, two Fig. 5 LMI
    instances (native STBus and the collapsed-AXI converter path), the
    arbitration/two-phase/crossbar/CPU variations the satellite
    experiments exercise, and the shipped example configurations.
    """
    entries: Dict[str, Tuple[PlatformConfig, int]] = {}
    for name, config in fig3_instances(traffic_scale=_CORPUS_SCALE).items():
        entries[f"fig3_{name}"] = (config, DEFAULT_MAX_PS)
    for name, config in fig4_pair(
            access_latency_cycles=8,
            traffic_scale=_CORPUS_SCALE).items():
        entries[f"fig4_{name}"] = (config, DEFAULT_MAX_PS)
    fig5 = fig5_instances(traffic_scale=_CORPUS_SCALE)
    entries["fig5_distributed_stbus"] = (fig5["distributed_stbus"],
                                         DEFAULT_MAX_PS)
    entries["fig5_collapsed_axi"] = (fig5["collapsed_axi"], DEFAULT_MAX_PS)
    entries["quick_fixed_priority"] = (
        quick_config(message_arbitration=False), DEFAULT_MAX_PS)
    entries["quick_two_phase"] = (
        quick_config(two_phase=TwoPhaseSpec(fraction=0.5,
                                            idle_multiplier=4.0)),
        DEFAULT_MAX_PS)
    entries["quick_crossbar"] = (
        quick_config(central_crossbar=True), DEFAULT_MAX_PS)
    entries["quick_cpu"] = (
        quick_config(cpu=CpuConfig(enabled=True, blocks=6,
                                   working_set=1 << 12)),
        DEFAULT_MAX_PS)

    examples = _repo_root() / "examples" / "configs"
    custom = examples / "custom_platform.json"
    if custom.is_file():
        config = load_config(custom)
        # The shipped example is sized for a demo run; scale it down so
        # the corpus replay stays fast.
        config = _scaled(config, 0.1)
        entries["example_custom_platform"] = (config, DEFAULT_MAX_PS)
    sweep_file = examples / "quick_sweep.json"
    if sweep_file.is_file():
        spec = load_sweep(sweep_file)
        for label, config in list(zip(spec.labels, spec.configs))[:2]:
            slug = label.replace(",", "_").replace(".", "_").replace("=", "")
            entries[f"example_sweep_{slug}"] = (config, spec.max_ps)
    return entries


def _scaled(config: PlatformConfig, scale: float) -> PlatformConfig:
    import dataclasses

    cpu = config.cpu
    if cpu.enabled:
        cpu = dataclasses.replace(cpu, blocks=max(1, int(cpu.blocks * scale)))
    return dataclasses.replace(config, traffic_scale=config.traffic_scale
                               * scale, cpu=cpu)


def golden_entries(directory: Union[str, Path, None] = None) -> List[Path]:
    """The committed checkpoint files, sorted by name."""
    root = Path(directory) if directory is not None else golden_dir()
    if not root.is_dir():
        return []
    return sorted(root.glob("*.ckpt.json"))


def refresh_golden(directory: Union[str, Path, None] = None,
                   names: Optional[List[str]] = None) -> List[Path]:
    """Regenerate the corpus; returns the files written.

    Stale files (entries dropped from the manifest) are removed unless a
    ``names`` subset was requested.  Every entry is checkpointed at half
    its execution time with the final result recorded.
    """
    root = Path(directory) if directory is not None else golden_dir()
    manifest = golden_configs()
    if names:
        unknown = sorted(set(names) - set(manifest))
        if unknown:
            raise SnapshotError(
                f"unknown golden entries {unknown}; "
                f"known: {sorted(manifest)}")
        manifest = {name: manifest[name] for name in names}
    root.mkdir(parents=True, exist_ok=True)
    written: List[Path] = []
    for name, (config, max_ps) in sorted(manifest.items()):
        outcome = take_checkpoint(config, fraction=0.5, max_ps=max_ps)
        written.append(save_checkpoint(outcome.checkpoint,
                                       root / f"{name}.ckpt.json"))
    if not names:
        expected = {f"{name}.ckpt.json" for name in golden_configs()}
        for path in golden_entries(root):
            if path.name not in expected:
                path.unlink()
    return written


def verify_golden(directory: Union[str, Path, None] = None) -> List[str]:
    """Replay every committed checkpoint; returns failure descriptions.

    An empty list means the whole corpus resumed bit-identically — both
    the mid-run state trees and the recorded final results.  Used by the
    CI golden job and ``repro snapshot --verify-golden``.
    """
    failures: List[str] = []
    entries = golden_entries(directory)
    if not entries:
        return [f"no golden checkpoints found under "
                f"{Path(directory) if directory else golden_dir()} — "
                f"run `repro snapshot --refresh-golden`"]
    for path in entries:
        try:
            checkpoint = load_checkpoint(path)
            outcome = resume_checkpoint(checkpoint)
        except SnapshotError as exc:
            failures.append(f"{path.name}: {exc}")
            continue
        for mismatch in outcome.mismatches:
            failures.append(f"{path.name}: {mismatch}")
    return failures


def corpus_summary(directory: Union[str, Path, None] = None) -> str:
    """One line per committed entry (name, instant, size) for the CLI."""
    lines = []
    for path in golden_entries(directory):
        try:
            document = json.loads(path.read_text())
            lines.append(f"{path.name}: at={document.get('at_ps')}ps "
                         f"events={document.get('events')} "
                         f"({path.stat().st_size // 1024} KiB)")
        except (OSError, ValueError):
            lines.append(f"{path.name}: unreadable")
    return "\n".join(lines) if lines else "no golden checkpoints committed"


__all__ = [
    "corpus_summary",
    "golden_configs",
    "golden_dir",
    "golden_entries",
    "refresh_golden",
    "verify_golden",
]
