"""Canonical state extraction for arbitration policies.

Arbiters keep the subtlest interconnect state — round-robin rotation,
grant recency, lottery RNG position, message locks — and key it by live
port objects.  This module flattens each policy to JSON using the
encoder's stable source-key names; it lives beside the encoder (rather
than as methods on the arbiters) so the interconnect layer stays free of
snapshot imports.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict

from ..interconnect.arbiter import (
    Arbiter,
    FixedPriority,
    LeastRecentlyGranted,
    MessageArbiter,
    RoundRobin,
    WeightedLottery,
)

if TYPE_CHECKING:  # pragma: no cover
    from .state import StateEncoder


def arbiter_state(arbiter: Arbiter, encoder: "StateEncoder") -> Dict[str, Any]:
    """Flatten one arbiter (and any wrapped inner policy) to plain state."""
    state: Dict[str, Any] = {"kind": type(arbiter).__name__}
    if isinstance(arbiter, MessageArbiter):
        state["locked_key"] = (
            None if arbiter._locked_key is None
            else encoder.source_key(arbiter._locked_key))
        state["locked_message"] = encoder.message_alias(
            arbiter._locked_message)
        state["inner"] = arbiter_state(arbiter.inner, encoder)
    elif isinstance(arbiter, RoundRobin):
        state["order"] = [encoder.source_key(key)
                          for key in arbiter._order]
    elif isinstance(arbiter, LeastRecentlyGranted):
        state["tick"] = arbiter._tick
        state["last_grant"] = {
            str(encoder.source_key(key)): tick
            for key, tick in arbiter._last_grant.items()}
    elif isinstance(arbiter, WeightedLottery):
        # The Mersenne Twister state is 600+ ints; a digest compares it
        # bit for bit without bloating the checkpoint.
        state["rng"] = encoder.digest(arbiter._rng.getstate())
    elif isinstance(arbiter, FixedPriority):
        pass  # stateless
    return state


__all__ = ["arbiter_state"]
