"""Versioned, content-addressed checkpoints with verified resume.

A checkpoint records one platform run at a chosen simulation instant:
the configuration document, the kernel position, and the canonical
component state tree from :func:`~repro.snapshot.state.capture_state`.
Python cannot serialise live generator frames, so resume is *deterministic
re-execution*: re-elaborate the configuration on a fresh kernel,
fast-forward to the checkpoint instant, then run ``restore_state()`` on
every component — which verifies the reconstructed state bit for bit
against the stored tree — before letting the run continue.  Continuing a
paused run is bit-identical to an uninterrupted one (a kernel guarantee
pinned by ``tests/test_kernel.py``), so a verified resume point makes the
whole continuation trustworthy.

On-disk format (``*.ckpt.json``)::

    {
      "format": 1,                  # SNAPSHOT_FORMAT, checked on load
      "generator": "repro.snapshot",
      "config": {...},              # platform document (config_to_dict)
      "max_ps": 20000000000000,     # run bound the checkpoint was taken under
      "at_ps": 123456,              # checkpoint instant
      "events": 4242,               # events processed up to at_ps
      "state": {"kernel": ..., "components": {...}},
      "state_digest": "sha256...",  # content address of "state"
      "expect": {                   # optional: recorded final outcome
        "final_time_ps": ..., "final_events": ...,
        "result": {...}, "result_digest": "sha256..."
      },
      "payload_digest": "sha256..." # over everything above; detects corruption
    }

Files are content-addressed (``<state_digest[:16]>.ckpt.json`` when saved
into a directory) and written atomically.
"""

from __future__ import annotations

import dataclasses
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from ..analysis.metrics import RunResult
from ..core.kernel import Simulator
from ..platforms.config import PlatformConfig
from ..platforms.loader import config_from_dict, config_to_dict
from ..platforms.reference import PlatformInstance, build_platform
from ..sweep import DEFAULT_MAX_PS, result_to_dict
from .state import (
    StateEncoder,
    canonical_json,
    capture_state,
    diff_states,
    kernel_state,
    state_digest,
)

#: Bumped whenever the checkpoint document schema or the state-tree
#: encoding changes; old files then fail with :class:`SnapshotFormatError`.
SNAPSHOT_FORMAT = 1

_GENERATOR = "repro.snapshot"


class SnapshotError(RuntimeError):
    """A checkpoint could not be read, written, or trusted."""


class SnapshotFormatError(SnapshotError):
    """The checkpoint file's format version does not match this code."""


class StateMismatch(SnapshotError):
    """A resumed run diverged from the stored checkpoint state."""

    def __init__(self, message: str,
                 diffs: Optional[List[str]] = None) -> None:
        self.diffs: List[str] = list(diffs or [])
        if self.diffs:
            message = message + "\n  " + "\n  ".join(self.diffs)
        super().__init__(message)


# ----------------------------------------------------------------------
# the checkpoint value object and its document form
# ----------------------------------------------------------------------
@dataclass
class Checkpoint:
    """One platform run frozen at a simulation instant."""

    config: Dict[str, Any]
    max_ps: int
    at_ps: int
    events: int
    state: Dict[str, Any]
    state_digest: str
    expect: Optional[Dict[str, Any]] = None
    generator: str = _GENERATOR
    format: int = SNAPSHOT_FORMAT

    def platform_config(self) -> PlatformConfig:
        """The configuration this checkpoint was taken from."""
        return config_from_dict(self.config)

    def to_document(self) -> Dict[str, Any]:
        document: Dict[str, Any] = {
            "format": self.format,
            "generator": self.generator,
            "config": self.config,
            "max_ps": self.max_ps,
            "at_ps": self.at_ps,
            "events": self.events,
            "state": self.state,
            "state_digest": self.state_digest,
        }
        if self.expect is not None:
            document["expect"] = self.expect
        document["payload_digest"] = _payload_digest(document)
        return document

    @classmethod
    def from_document(cls, document: Dict[str, Any]) -> "Checkpoint":
        try:
            return cls(
                config=document["config"],
                max_ps=int(document["max_ps"]),
                at_ps=int(document["at_ps"]),
                events=int(document["events"]),
                state=document["state"],
                state_digest=document["state_digest"],
                expect=document.get("expect"),
                generator=document.get("generator", _GENERATOR),
                format=int(document["format"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise SnapshotError(f"malformed checkpoint document: {exc}") \
                from exc


def _payload_digest(document: Dict[str, Any]) -> str:
    """Digest of the document minus the digest field itself."""
    payload = {key: value for key, value in document.items()
               if key != "payload_digest"}
    return state_digest(payload)


def result_digest(result: RunResult) -> str:
    """Content address of a :class:`RunResult` (floats bit-exact)."""
    encoder = StateEncoder()
    return state_digest(encoder.encode(dataclasses.asdict(result)))


# ----------------------------------------------------------------------
# persistence
# ----------------------------------------------------------------------
def save_checkpoint(checkpoint: Checkpoint,
                    target: Union[str, Path]) -> Path:
    """Write a checkpoint atomically; returns the path written.

    ``target`` may be a directory (an existing one, or any path without a
    ``.json`` suffix), in which case the file is content-addressed as
    ``<state_digest[:16]>.ckpt.json`` inside it.
    """
    target = Path(target)
    if target.suffix != ".json" or target.is_dir():
        target.mkdir(parents=True, exist_ok=True)
        target = target / f"{checkpoint.state_digest[:16]}.ckpt.json"
    else:
        target.parent.mkdir(parents=True, exist_ok=True)
    document = checkpoint.to_document()
    text = json.dumps(document, sort_keys=True, indent=1)
    tmp = target.with_suffix(".tmp")
    try:
        tmp.write_text(text + "\n")
        os.replace(tmp, target)
    except OSError as exc:
        raise SnapshotError(f"cannot write checkpoint {target}: {exc}") \
            from exc
    return target


def load_checkpoint(path: Union[str, Path]) -> Checkpoint:
    """Read and validate a checkpoint file.

    Raises :class:`SnapshotFormatError` on a format-version mismatch and
    :class:`SnapshotError` on unreadable, truncated, or tampered files
    (the stored payload digest must match the recomputed one).
    """
    path = Path(path)
    try:
        document = json.loads(path.read_text())
    except OSError as exc:
        raise SnapshotError(f"cannot read checkpoint {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise SnapshotError(
            f"checkpoint {path} is not valid JSON ({exc})") from exc
    if not isinstance(document, dict):
        raise SnapshotError(f"checkpoint {path}: top level must be an object")
    version = document.get("format")
    if version != SNAPSHOT_FORMAT:
        raise SnapshotFormatError(
            f"checkpoint {path} has format {version!r}; this build reads "
            f"format {SNAPSHOT_FORMAT} — regenerate it with "
            f"`repro snapshot --refresh-golden` or retake the checkpoint")
    stored = document.get("payload_digest")
    actual = _payload_digest(document)
    if stored != actual:
        raise SnapshotError(
            f"checkpoint {path} is corrupt: payload digest mismatch "
            f"(stored {str(stored)[:16]}..., recomputed {actual[:16]}...)")
    checkpoint = Checkpoint.from_document(document)
    if state_digest(checkpoint.state) != checkpoint.state_digest:
        raise SnapshotError(
            f"checkpoint {path} is corrupt: state digest mismatch")
    return checkpoint


# ----------------------------------------------------------------------
# taking checkpoints
# ----------------------------------------------------------------------
@dataclass
class TakeOutcome:
    """A freshly taken checkpoint plus the run it was carved out of."""

    checkpoint: Checkpoint
    result: RunResult
    final_time_ps: int
    final_events: int


def _snapshot_here(platform: PlatformInstance, config: PlatformConfig,
                   max_ps: int) -> Checkpoint:
    """Capture the platform's current instant as a checkpoint (no expect)."""
    sim = platform.sim
    state = capture_state(platform)
    return Checkpoint(
        config=config_to_dict(config),
        max_ps=int(max_ps),
        at_ps=sim.now,
        events=sim.processed_events,
        state=state,
        state_digest=state_digest(state),
    )


def take_checkpoint(config: PlatformConfig,
                    at_ps: Optional[int] = None,
                    fraction: float = 0.5,
                    max_ps: int = DEFAULT_MAX_PS) -> TakeOutcome:
    """Run ``config``, pausing at ``at_ps`` to capture a checkpoint.

    With ``at_ps=None`` the instant is chosen as ``fraction`` of the
    run's execution time, which costs one extra probe run to learn it.
    The run then continues to completion and its final outcome is
    recorded in the checkpoint's ``expect`` block, so a later resume can
    verify not just the mid-run state but the finished result.
    """
    if at_ps is None:
        if not 0.0 < fraction < 1.0:
            raise ValueError(f"fraction must be in (0, 1), got {fraction}")
        probe_sim = Simulator()
        probe = build_platform(probe_sim, config).run(max_ps=max_ps)
        at_ps = max(1, int(probe.execution_time_ps * fraction))
    if at_ps <= 0:
        raise ValueError(f"at_ps must be positive, got {at_ps}")

    sim = Simulator()
    platform = build_platform(sim, config)
    platform.prepare()
    sim.run(until=at_ps)
    checkpoint = _snapshot_here(platform, config, max_ps)
    result = platform.run(max_ps=max_ps)
    checkpoint.expect = {
        "final_time_ps": sim.now,
        "final_events": sim.processed_events,
        "result": result_to_dict(result),
        "result_digest": result_digest(result),
    }
    return TakeOutcome(checkpoint=checkpoint, result=result,
                       final_time_ps=sim.now,
                       final_events=sim.processed_events)


def run_with_checkpoints(config: PlatformConfig,
                         every_ps: int,
                         out_dir: Union[str, Path],
                         max_ps: int = DEFAULT_MAX_PS
                         ) -> Tuple[RunResult, List[Path]]:
    """Run to completion, saving a checkpoint every ``every_ps``.

    Backs the CLI ``--checkpoint-every`` flag for long runs.  Checkpoints
    are written as soon as each interval is reached (so a killed run
    leaves usable resume points behind); they therefore carry no
    ``expect`` block — resume still verifies the full state tree.
    Checkpointing stops once the platform's traffic has finished.
    """
    if every_ps <= 0:
        raise ValueError(f"every_ps must be positive, got {every_ps}")
    sim = Simulator()
    platform = build_platform(sim, config)
    platform.prepare()
    paths: List[Path] = []
    next_at = every_ps
    while next_at < max_ps:
        sim.run(until=next_at)
        if platform._finish_ps is not None:
            break
        paths.append(save_checkpoint(
            _snapshot_here(platform, config, max_ps), out_dir))
        next_at += every_ps
    result = platform.run(max_ps=max_ps)
    return result, paths


# ----------------------------------------------------------------------
# resuming checkpoints
# ----------------------------------------------------------------------
@dataclass
class ResumeOutcome:
    """Outcome of resuming a checkpoint to completion."""

    checkpoint: Checkpoint
    result: RunResult
    final_time_ps: int
    final_events: int
    resumed_state_digest: str
    #: Divergences from the checkpoint's ``expect`` block (empty when the
    #: resumed run finished bit-identically to the recorded one).
    mismatches: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def format(self) -> str:
        lines = [f"resume @{self.checkpoint.at_ps}ps -> "
                 f"{self.final_events} events, now={self.final_time_ps}ps"]
        if self.mismatches:
            lines.append("resumed run diverged from the recorded outcome:")
            lines.extend(f"  {m}" for m in self.mismatches)
        else:
            lines.append("resumed run matches the recorded outcome "
                         "bit for bit")
        return "\n".join(lines)


def _restore_platform(platform: PlatformInstance,
                      checkpoint: Checkpoint) -> str:
    """Verify a fast-forwarded platform against the stored state tree.

    Walks the component tree in capture order calling ``restore_state()``
    (the default implementation re-captures and compares), then checks the
    kernel position and the whole-tree digest.  Raises
    :class:`StateMismatch` on the first divergence.
    """
    stored = checkpoint.state
    stored_components: Dict[str, Any] = stored.get("components", {})
    encoder = StateEncoder()

    kernel_actual = encoder.encode(kernel_state(platform.sim, encoder))
    kernel_diffs = diff_states(stored.get("kernel", {}), kernel_actual,
                               prefix="kernel")
    if kernel_diffs:
        raise StateMismatch(
            "kernel position diverged from checkpoint", kernel_diffs)

    seen = set()
    for component in platform.iter_tree():
        state = stored_components.get(component.path)
        if state is None:
            # Captured as stateless: it must still be stateless now.
            raw = component.snapshot_state(encoder)
            if raw:
                raise StateMismatch(
                    f"component {component.path!r} has state the "
                    f"checkpoint recorded as empty",
                    diff_states({}, encoder.encode(raw),
                                prefix=component.path))
            continue
        seen.add(component.path)
        component.restore_state(state, encoder)
    missing = sorted(set(stored_components) - seen)
    if missing:
        raise StateMismatch(
            "checkpointed components absent from the re-elaborated "
            "platform", [f"{path}: missing" for path in missing])

    actual_tree = capture_state(platform)
    digest = state_digest(actual_tree)
    if digest != checkpoint.state_digest:
        raise StateMismatch(
            f"state tree digest mismatch after restore "
            f"(stored {checkpoint.state_digest[:16]}..., "
            f"resumed {digest[:16]}...)",
            diff_states(stored, actual_tree))
    return digest


def resume_checkpoint(checkpoint: Checkpoint,
                      max_ps: Optional[int] = None,
                      verify: bool = True) -> ResumeOutcome:
    """Resume a checkpoint and run it to completion.

    Re-elaborates the stored configuration on a fresh kernel,
    fast-forwards deterministically to the checkpoint instant, verifies
    every component against the stored state tree (unless ``verify`` is
    off), then continues the run.  The returned outcome reports any
    divergence from the checkpoint's recorded final result.
    """
    config = checkpoint.platform_config()
    sim = Simulator()
    platform = build_platform(sim, config)
    platform.prepare()
    sim.run(until=checkpoint.at_ps)

    if verify:
        digest = _restore_platform(platform, checkpoint)
    else:
        digest = state_digest(capture_state(platform))

    result = platform.run(
        max_ps=checkpoint.max_ps if max_ps is None else max_ps)

    mismatches: List[str] = []
    expect = checkpoint.expect
    if verify and expect is not None and max_ps is None:
        if sim.now != expect.get("final_time_ps"):
            mismatches.append(f"final time: resumed={sim.now}ps "
                              f"recorded={expect.get('final_time_ps')}ps")
        if sim.processed_events != expect.get("final_events"):
            mismatches.append(
                f"processed events: resumed={sim.processed_events} "
                f"recorded={expect.get('final_events')}")
        digest_now = result_digest(result)
        if digest_now != expect.get("result_digest"):
            mismatches.append(
                f"result digest: resumed={digest_now[:16]}... "
                f"recorded={str(expect.get('result_digest'))[:16]}...")
            recorded = expect.get("result")
            if isinstance(recorded, dict):
                for fld in dataclasses.fields(RunResult):
                    now_value = getattr(result, fld.name)
                    then_value = recorded.get(fld.name)
                    if _jsonish(now_value) != _jsonish(then_value):
                        mismatches.append(
                            f"RunResult.{fld.name}: resumed={now_value!r} "
                            f"recorded={then_value!r}")

    return ResumeOutcome(
        checkpoint=checkpoint,
        result=result,
        final_time_ps=sim.now,
        final_events=sim.processed_events,
        resumed_state_digest=digest,
        mismatches=mismatches,
    )


def _jsonish(value: Any) -> str:
    """Comparable canonical form for result fields round-tripped via JSON."""
    encoder = StateEncoder()
    return canonical_json(encoder.encode(value))


__all__ = [
    "SNAPSHOT_FORMAT",
    "Checkpoint",
    "ResumeOutcome",
    "SnapshotError",
    "SnapshotFormatError",
    "StateMismatch",
    "TakeOutcome",
    "load_checkpoint",
    "resume_checkpoint",
    "result_digest",
    "run_with_checkpoints",
    "save_checkpoint",
    "take_checkpoint",
]
