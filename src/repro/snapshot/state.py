"""Canonical state capture: component tree -> JSON-safe, digestable value.

Everything a component returns from ``snapshot_state()`` passes through a
:class:`StateEncoder`, which normalises it into plain JSON types with two
hard guarantees:

* **Determinism** — the encoding of equal simulator states is byte-equal.
  Process-global allocation counters (transaction ``tid`` values, STBus
  message ids) are *not* reproducible across runs, so the encoder maps each
  one to a dense per-snapshot alias in first-encounter order; two runs in
  identical states therefore encode identically even though their absolute
  ids differ.
* **Serialisability** — live objects (events, callbacks, component
  back-references) never leak into the tree.  Transactions are flattened to
  their payload description plus timestamps; unknown objects are rejected
  loudly rather than encoded ambiguously.

The canonical JSON form (sorted keys, no whitespace) feeds
:func:`state_digest`, the SHA-256 content address of a snapshot.
"""

from __future__ import annotations

import enum
import hashlib
import json
from typing import Any, Dict, List, Optional

from ..interconnect.types import ResponseBeat, Transaction

#: JSON value type alias (kept loose: recursive aliases need 3.12+).
Json = Any


class StateEncodingError(TypeError):
    """A ``snapshot_state()`` returned something the encoder cannot
    canonicalise (a live object slipped into the tree)."""


class StateEncoder:
    """Normalises raw component state into canonical JSON values.

    One encoder instance spans one snapshot: the transaction-id and
    message-id alias maps it carries must see every component's state so
    cross-component references (the same in-flight transaction queued in a
    fabric and relayed by a bridge) alias consistently.
    """

    def __init__(self) -> None:
        self._tid_alias: Dict[int, int] = {}
        self._message_alias: Dict[int, int] = {}

    # ------------------------------------------------------------------
    def tid_alias(self, tid: int) -> int:
        """Dense per-snapshot alias of a process-global transaction id."""
        alias = self._tid_alias.get(tid)
        if alias is None:
            alias = self._tid_alias[tid] = len(self._tid_alias)
        return alias

    def message_alias(self, message_id: Optional[int]) -> Optional[int]:
        """Dense per-snapshot alias of a process-global message id."""
        if message_id is None:
            return None
        alias = self._message_alias.get(message_id)
        if alias is None:
            alias = self._message_alias[message_id] = len(self._message_alias)
        return alias

    # ------------------------------------------------------------------
    def transaction(self, txn: Transaction) -> Dict[str, Json]:
        """Flatten one transaction to its canonical description."""
        return {
            "tid": self.tid_alias(txn.tid),
            "initiator": txn.initiator,
            "op": txn.opcode.value,
            "address": txn.address,
            "beats": txn.beats,
            "beat_bytes": txn.beat_bytes,
            "priority": txn.priority,
            "posted": txn.posted,
            "message": self.message_alias(txn.message_id),
            "message_last": txn.message_last,
            "error": txn.error,
            "t_created": txn.t_created,
            "t_issued": txn.t_issued,
            "t_granted": txn.t_granted,
            "t_accepted": txn.t_accepted,
            "t_first_data": txn.t_first_data,
            "t_done": txn.t_done,
        }

    def beat(self, beat: ResponseBeat) -> Dict[str, Json]:
        """Flatten one response beat."""
        return {
            "tid": self.tid_alias(beat.txn.tid),
            "index": beat.index,
            "is_last": beat.is_last,
            "error": beat.error,
        }

    def source_key(self, key: Any) -> Json:
        """Stable name for an arbitration source key (ports use their name)."""
        if key is None or isinstance(key, (str, int)):
            return key
        name = getattr(key, "name", None)
        if isinstance(name, str):
            return name
        raise StateEncodingError(
            f"arbitration key {key!r} has no stable name")

    def arbiter(self, arbiter: Any) -> Dict[str, Json]:
        """Canonical state of any arbitration policy (recursing wrappers)."""
        from .arbiters import arbiter_state

        return arbiter_state(arbiter, self)

    def encode(self, value: Any) -> Json:
        """Canonicalise an arbitrary state value (recursively)."""
        if value is None or isinstance(value, (bool, int, str)):
            return value
        if isinstance(value, float):
            # repr round-trips exactly; equality of encodings then means
            # bit-equality of the floats.
            return {"__float__": repr(value)}
        if isinstance(value, Transaction):
            return self.transaction(value)
        if isinstance(value, ResponseBeat):
            return self.beat(value)
        if isinstance(value, enum.Enum):
            return self.encode(value.value)
        if isinstance(value, dict):
            out: Dict[str, Json] = {}
            for key, item in value.items():
                if not isinstance(key, (str, int)):
                    raise StateEncodingError(
                        f"state dict key {key!r} is not str/int")
                out[str(key)] = self.encode(item)
            return out
        if isinstance(value, (list, tuple)):
            return [self.encode(item) for item in value]
        if isinstance(value, (set, frozenset)):
            encoded = [self.encode(item) for item in value]
            return sorted(encoded, key=canonical_json)
        raise StateEncodingError(
            f"cannot canonicalise {type(value).__name__} in snapshot state "
            f"({value!r})")

    def digest(self, value: Any) -> str:
        """SHA-256 of the canonical encoding of ``value`` (compact form for
        bulky-but-comparable state such as RNG streams or cache tag arrays)."""
        return hashlib.sha256(
            canonical_json(self.encode(value)).encode("utf-8")).hexdigest()


def canonical_json(value: Json) -> str:
    """The one true serialisation: sorted keys, no whitespace, no NaN."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"),
                      allow_nan=False)


def state_digest(tree: Json) -> str:
    """SHA-256 content address of an encoded state tree."""
    return hashlib.sha256(canonical_json(tree).encode("utf-8")).hexdigest()


def kernel_state(sim: Any, encoder: StateEncoder) -> Dict[str, Json]:
    """The kernel's own position: time, event count, pending-queue profile.

    Live events cannot be serialised (they hold callbacks into generator
    frames), but the *schedule profile* — how many events are pending at
    which relative offset and priority — is deterministic and meaningful:
    two runs in the same state have identical profiles.
    """
    now = sim.now
    profile: Dict[str, int] = {}
    for when, priority, _seq, _event in sim._queue:
        key = f"{when - now}@{priority}"
        profile[key] = profile.get(key, 0) + 1
    return {
        "now_ps": now,
        "processed_events": sim.processed_events,
        "pending_events": len(sim._queue),
        "pending_profile": profile,
    }


def capture_state(platform: Any,
                  encoder: Optional[StateEncoder] = None) -> Dict[str, Json]:
    """Encoded state tree of a live platform (components + kernel).

    Components are visited depth-first in construction order — the same
    deterministic order elaboration produces — so alias assignment and the
    resulting digest are reproducible.  Components whose state is empty are
    omitted.
    """
    encoder = encoder or StateEncoder()
    components: Dict[str, Json] = {}
    for component in platform.iter_tree():
        raw = component.snapshot_state(encoder)
        if raw:
            components[component.path] = encoder.encode(raw)
    return {
        "kernel": kernel_state(platform.sim, encoder),
        "components": components,
    }


def diff_states(expected: Json, actual: Json, prefix: str = "",
                limit: int = 20) -> List[str]:
    """Human-readable paths where two encoded trees differ (for reports)."""
    diffs: List[str] = []
    _walk_diff(expected, actual, prefix or "state", diffs, limit)
    return diffs


def _walk_diff(expected: Json, actual: Json, path: str,
               out: List[str], limit: int) -> None:
    if len(out) >= limit:
        return
    if isinstance(expected, dict) and isinstance(actual, dict):
        for key in sorted(set(expected) | set(actual)):
            if key not in expected:
                out.append(f"{path}.{key}: unexpected (only in resumed run)")
            elif key not in actual:
                out.append(f"{path}.{key}: missing from resumed run")
            else:
                _walk_diff(expected[key], actual[key], f"{path}.{key}",
                           out, limit)
            if len(out) >= limit:
                return
        return
    if isinstance(expected, list) and isinstance(actual, list):
        if len(expected) != len(actual):
            out.append(f"{path}: length {len(expected)} != {len(actual)}")
            return
        for index, (exp, act) in enumerate(zip(expected, actual)):
            _walk_diff(exp, act, f"{path}[{index}]", out, limit)
            if len(out) >= limit:
                return
        return
    if expected != actual:
        out.append(f"{path}: {expected!r} != {actual!r}")


__all__ = [
    "StateEncoder",
    "StateEncodingError",
    "canonical_json",
    "capture_state",
    "diff_states",
    "kernel_state",
    "state_digest",
]
