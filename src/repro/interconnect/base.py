"""Common machinery for interconnect fabric models.

A *fabric* (an STBus node, an AHB layer, an AXI interconnect) connects
initiator ports to target ports:

* :class:`InitiatorPort` — where IPTGs, CPUs and bridge initiator sides
  inject :class:`~repro.interconnect.types.Transaction` objects.  It enforces
  the *maximum outstanding transactions* of the bus interface with a credit
  semaphore — the paper's guideline 3(i) hinges on this parameter.
* :class:`TargetPort` — where memories and bridge target sides attach.  It
  owns the request FIFO (the "buffering implemented at its bus interface",
  guideline 2) and the response/prefetch FIFO whose depth lets STBus mask
  target wait states (Section 3.1).

The base class provides address decoding, work-notification plumbing (so
fabric processes sleep when idle instead of polling), channel-occupancy
bookkeeping and width conversion helpers.  Timing behaviour lives entirely in
the protocol subclasses.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from ..core.clock import Clock
from ..core.component import Component
from ..core.events import Event, completed_event
from ..core.fifo import Fifo
from ..core.kernel import Simulator
from ..core.statistics import ChannelUtilization
from ..core.sync import Semaphore, WorkSignal
from .arbiter import Arbiter, RoundRobin
from .types import AddressRange, ResponseBeat, Transaction


class FabricError(RuntimeError):
    """Raised on wiring/routing mistakes (overlapping ranges, no route...)."""


class InitiatorPort:
    """An initiator's attachment point to a fabric."""

    def __init__(self, fabric: "Fabric", name: str, max_outstanding: int = 1,
                 queue_depth: Optional[int] = None) -> None:
        if max_outstanding < 1:
            raise ValueError(f"max_outstanding must be >= 1, got {max_outstanding}")
        self.fabric = fabric
        self.sim = fabric.sim
        self.name = name
        self.max_outstanding = max_outstanding
        depth = queue_depth if queue_depth is not None else max_outstanding
        #: Transactions granted a credit, waiting for the request channel.
        self.pending: Fifo[Transaction] = Fifo(self.sim, depth,
                                               name=f"{name}.pending")
        self.credits = Semaphore(self.sim, max_outstanding, name=f"{name}.credits")
        # Port statistics live in the simulator-wide metric registry under
        # "<fabric>.<port>.*" so a whole run's numbers are path-addressable;
        # the objects themselves are the same plain counters as before.
        metrics = self.sim.metrics
        prefix = f"{fabric.name}.{name}"
        self.issued = metrics.counter(f"{prefix}.issued")
        self.completed = metrics.counter(f"{prefix}.completed")
        self.latency = metrics.histogram(f"{prefix}.latency")
        #: Invariant checker, captured once (select-once discipline).
        self._checks = fabric._checks
        #: Loosely-timed flag, captured once (same discipline).
        self._lt = fabric._lt

    # ------------------------------------------------------------------
    def issue(self, txn: Transaction) -> Event:
        """Inject ``txn``; the returned event completes once the transaction
        is queued for arbitration (i.e. the interface accepted it).

        ``txn.ev_done`` completes when the whole transaction does.  Posted
        writes complete at target acceptance, so a posted-write-heavy
        initiator recycles credits quickly — exactly the behaviour that lets
        multiple-outstanding interfaces "keep pushing transactions into the
        bus" (Section 4.2).
        """
        txn.bind(self.sim)
        txn.t_issued = self.sim.now
        if self._checks is not None:
            self._checks.note_issue(self, txn)
        if self._lt and not self.pending._put_waiters \
                and len(self.pending._items) < self.pending.capacity \
                and self.credits.try_acquire():
            # LT fast path: credit and queue slot are both free *right
            # now*, so acceptance is immediate — same state transitions as
            # _issue_flow, collapsed into zero scheduled events.  The
            # acceptance instant is identical to CA; only the intra-
            # timestamp interleaving differs (see docs/FAST_SIM.md).
            txn.ev_done.add_callback(self._on_done)
            self.pending.try_put(txn)
            self.issued.add()
            self.fabric._notify_request()
            return completed_event(self.sim, txn, name=f"{self.name}.issue")
        accepted = Event(self.sim, name=f"{self.name}.issue")
        self.sim.process(self._issue_flow(txn, accepted),
                         name=f"{self.name}.issue{txn.tid}",
                         immediate=True)
        return accepted

    def _issue_flow(self, txn: Transaction, accepted: Event):
        yield self.credits.acquire()
        txn.ev_done.add_callback(self._on_done)
        yield self.pending.put(txn)
        self.issued.add()
        self.fabric._notify_request()
        if self._lt:
            accepted.succeed_inline(txn)
        else:
            accepted.succeed(txn)

    def _on_done(self, event: Event) -> None:
        txn: Transaction = event.value
        self.completed.add()
        if txn.latency_ps is not None:
            self.latency.add(txn.latency_ps)
        self.credits.release()

    def __repr__(self) -> str:  # pragma: no cover
        return f"<InitiatorPort {self.name} on {self.fabric.name}>"


class TargetPort:
    """A target's attachment point to a fabric.

    The attached device (memory model, memory controller, bridge target
    side) *pulls* transactions from :attr:`request_fifo` at its own pace and
    *pushes* :class:`ResponseBeat` items into :attr:`response_fifo` as data
    becomes available.  FIFO depths are the tunable buffering parameters the
    paper sweeps.
    """

    def __init__(self, fabric: "Fabric", name: str, address_range: AddressRange,
                 request_depth: int = 1, response_depth: int = 2) -> None:
        self.fabric = fabric
        self.sim = fabric.sim
        self.name = name
        self.address_range = address_range
        self.request_fifo: Fifo[Transaction] = Fifo(
            self.sim, request_depth, name=f"{name}.req")
        self.response_fifo: Fifo[ResponseBeat] = Fifo(
            self.sim, response_depth, name=f"{name}.resp")
        metrics = self.sim.metrics
        prefix = f"{fabric.name}.{name}"
        self.accepted = metrics.counter(f"{prefix}.accepted")
        if self.sim._spans is not None:
            # FIFO probes install level watchers, so only under an active
            # observability capture (they are the Fig. 6 occupancy/waiting
            # instruments, not always-on bookkeeping).
            metrics.fifo(f"{prefix}.req_fifo", self.request_fifo)
            metrics.fifo(f"{prefix}.resp_fifo", self.response_fifo)
        #: Optional observers of request-channel activity towards this port
        #: (used by the Fig. 6 interface monitor).
        self.request_observers: List[Callable[[str], None]] = []
        # Wake the fabric's response channel whenever data appears.
        self.response_fifo.watch(self._on_response_level)

    # -- device-side API -------------------------------------------------
    def get_request(self) -> Event:
        """Device side: event completing with the next transaction."""
        return self.request_fifo.get()

    def put_beat(self, beat: ResponseBeat) -> Event:
        """Device side: enqueue one response beat (blocking on FIFO space)."""
        return self.response_fifo.put(beat)

    # -- fabric-side plumbing ---------------------------------------------
    def _on_response_level(self, _time: int, old: int, new: int) -> None:
        if new > old:
            self.fabric._notify_response()

    def notify_request_state(self, state: str) -> None:
        """Forward request-channel activity to any attached monitors."""
        for observer in self.request_observers:
            observer(state)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<TargetPort {self.name} {self.address_range}>"


class Fabric(Component):
    """Shared base of the three protocol models.

    Parameters
    ----------
    data_width_bytes:
        Width of the fabric data path; beats wider than this cost multiple
        bus cycles (the GenConv bridges exist exactly to convert widths).
    arbiter:
        Request-channel arbitration policy (default: round robin).
    """

    #: Protocol label, overridden by subclasses ("stbus", "ahb", "axi").
    protocol = "fabric"

    def __init__(self, sim: Simulator, name: str, clock: Clock,
                 data_width_bytes: int = 4,
                 arbiter: Optional[Arbiter] = None,
                 parent: Optional[Component] = None) -> None:
        super().__init__(sim, name, clock=clock, parent=parent)
        if data_width_bytes not in (1, 2, 4, 8, 16):
            raise ValueError(f"unsupported data width {data_width_bytes} bytes")
        self.data_width_bytes = data_width_bytes
        self.arbiter = arbiter if arbiter is not None else RoundRobin()
        self.initiators: List[InitiatorPort] = []
        self.targets: List[TargetPort] = []
        self._request_work = WorkSignal(sim, name=f"{name}.req_work")
        self._response_work = WorkSignal(sim, name=f"{name}.resp_work")
        #: Loosely-timed mode, captured once at construction (select-once
        #: discipline).  When set, channel processes replace per-cycle
        #: stall polling with event-driven waits and batch contention-free
        #: beat runs analytically (docs/FAST_SIM.md).
        self._lt = sim.lt_enabled
        #: Invariant checker (``None`` outside a checked session); captured
        #: once so the per-hop guards below stay a single attribute test.
        self._checks = sim._checks
        if self._checks is not None:
            self._checks.register_fabric(self)
        #: Energy accountant (``None`` unless energy accounting is on);
        #: same select-once discipline.  Coefficient resolution is lazy
        #: (``StbusNode`` assigns ``bus_type`` after this constructor).
        self._energy = sim._energy
        #: Channel occupancy accounting, keyed by channel name.
        self.channels: Dict[str, ChannelUtilization] = {}
        self.decode_errors = sim.metrics.counter(f"{name}.decode_errors")

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def connect_initiator(self, name: str, max_outstanding: int = 1,
                          queue_depth: Optional[int] = None) -> InitiatorPort:
        port = InitiatorPort(self, name, max_outstanding=max_outstanding,
                             queue_depth=queue_depth)
        self.initiators.append(port)
        return port

    def add_target(self, name: str, address_range: AddressRange,
                   request_depth: int = 1, response_depth: int = 2) -> TargetPort:
        for existing in self.targets:
            if existing.address_range.overlaps(address_range):
                raise FabricError(
                    f"{name} range {address_range} overlaps {existing.name} "
                    f"range {existing.address_range}")
        port = TargetPort(self, name, address_range,
                          request_depth=request_depth,
                          response_depth=response_depth)
        self.targets.append(port)
        if self._lt:
            # LT replaces the request channel's per-cycle "target full"
            # poll with an event-driven wait, so a draining target FIFO
            # must wake it (in CA the poll observes the drain by itself).
            port.request_fifo.watch(self._on_target_request_level)
        return port

    def _on_target_request_level(self, _time: int, old: int, new: int) -> None:
        """LT-only: a target request FIFO drained — grants may now be
        possible for initiators that were blocked on that target."""
        if new < old:
            self._request_work.notify()

    #: What to do with an address no target decodes: "raise" is a wiring
    #: error (strict default); "respond" returns a bus error to the
    #: initiator, like a real interconnect's default-slave.
    decode_error_policy = "raise"

    def route(self, address: int) -> TargetPort:
        """Decode ``address`` to the owning target port."""
        target = self.try_route(address)
        if target is None:
            raise FabricError(f"{self.name}: no target decodes {address:#x}")
        return target

    def try_route(self, address: int) -> Optional[TargetPort]:
        """Decode ``address``; ``None`` when nothing claims it."""
        # Inlined AddressRange.contains(): decode runs per request *and*
        # per eligibility scan, so two property frames per probe add up.
        for target in self.targets:
            window = target.address_range
            if window.base <= address < window.base + window.size:
                return target
        return None

    def decode_failed(self, txn: Transaction) -> None:
        """Handle an unmapped address per :attr:`decode_error_policy`."""
        if self.decode_error_policy == "respond":
            self.decode_errors.add()
            txn.mark_accepted(self.sim.now)
            txn.complete_with_error(self.sim.now)
        else:
            raise FabricError(
                f"{self.name}: no target decodes {txn.address:#x} "
                f"({txn!r})")

    def channel(self, name: str) -> ChannelUtilization:
        """Lazily created busy-time monitor for a named channel."""
        if name not in self.channels:
            self.channels[name] = self.sim.metrics.channel(f"{self.name}.{name}")
        return self.channels[name]

    # ------------------------------------------------------------------
    # work notification (processes sleep while idle)
    # ------------------------------------------------------------------
    def _notify_request(self) -> None:
        self._request_work.notify()

    def _notify_response(self) -> None:
        self._response_work.notify()

    def _wait_request_work(self) -> Event:
        return self._request_work.wait()

    def _wait_response_work(self) -> Event:
        return self._response_work.wait()

    # ------------------------------------------------------------------
    # shared helpers for subclasses
    # ------------------------------------------------------------------
    def request_candidates(self) -> List[Tuple[InitiatorPort, Transaction]]:
        """Initiator ports with a transaction at the head of their queue."""
        # Head peeks bypass the Fifo property/method frames: these scans run
        # every arbitration round on every fabric.
        return [(port, port.pending._items[0])
                for port in self.initiators if port.pending._items]

    def response_candidates(self) -> List[Tuple[TargetPort, ResponseBeat]]:
        """Target ports with a response beat ready."""
        return [(target, target.response_fifo._items[0])
                for target in self.targets if target.response_fifo._items]

    def bus_cycles_for_beat(self, beat_bytes: int) -> int:
        """Bus cycles one data beat occupies on this fabric's data path."""
        return max(1, -(-beat_bytes // self.data_width_bytes))

    def request_cycles(self, txn: Transaction) -> int:
        """Request-channel occupancy of a transaction.

        Reads send a single request cell (opcode + address); writes carry
        their data on the request path, one (width-adjusted) cell per beat.
        """
        if txn.is_read:
            return 1
        return txn.beats * self.bus_cycles_for_beat(txn.beat_bytes)

    def pop_granted(self, port: InitiatorPort, txn: Transaction) -> None:
        """Remove a granted transaction from its port queue and stamp it."""
        head = port.pending.try_get()
        if head is not txn:
            raise FabricError(
                f"{self.name}: arbitration raced ({head!r} vs {txn!r})")
        txn.t_granted = self.sim.now
        if self._checks is not None:
            self._checks.note_grant(self, port, txn)
        if self._energy is not None:
            # One charge per request-channel cell the transfer will occupy
            # (reads: one cell; writes: data travels on the request path).
            self._energy.bus_request(self, txn)
        if not port.pending.is_empty:
            # A new head surfaced; a channel process that went to sleep
            # because no head matched its direction must re-examine it
            # (e.g. AXI's AW engine when a write emerges behind reads).
            self._notify_request()

    def deliver_beat(self, beat: ResponseBeat) -> None:
        """Complete bookkeeping when a response beat reaches the initiator.

        Initiators that need per-beat visibility (bridges relaying data to
        another layer) register a callable under ``txn.meta['beat_sink']``.
        """
        txn = beat.txn
        if self._checks is not None:
            self._checks.note_beat(self, beat)
        if self._energy is not None:
            self._energy.bus_beat(self, txn)
        if txn.t_first_data is None and not beat.is_write_ack:
            txn.t_first_data = self.sim.now
        if beat.error:
            txn.error = True
        sink = txn.meta.get("beat_sink")
        if sink is not None:
            sink(beat)
        if beat.is_last:
            txn.complete(self.sim.now)

    # ------------------------------------------------------------------
    # stats
    # ------------------------------------------------------------------
    def utilization_report(self) -> Dict[str, float]:
        """Utilisation per channel, at the current time."""
        return {name: mon.utilization() for name, mon in sorted(self.channels.items())}

    # ------------------------------------------------------------------
    # checkpoint state
    # ------------------------------------------------------------------
    def snapshot_state(self, encoder):
        """Port queues, credits, counters and arbiter state (all protocols).

        In-flight transactions appear here through the port FIFOs they are
        queued in; beats mid-transfer on a channel are generator-local and
        covered by the kernel's pending-event profile instead.
        """
        return {
            "initiators": {
                port.name: {
                    "pending": port.pending.snapshot(),
                    "credits": port.credits.available,
                    "issued": port.issued.value,
                    "completed": port.completed.value,
                } for port in self.initiators
            },
            "targets": {
                port.name: {
                    "requests": port.request_fifo.snapshot(),
                    "responses": port.response_fifo.snapshot(),
                    "accepted": port.accepted.value,
                } for port in self.targets
            },
            "arbiter": encoder.arbiter(self.arbiter),
            "decode_errors": self.decode_errors.value,
        }
