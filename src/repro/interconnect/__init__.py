"""Interconnect fabric models and the declarative protocol registry.

Hand-written engines (STBus, AMBA AHB, AMBA AXI, the analytic TLM tier)
plus :class:`GenericFabric`, a shared engine that elaborates any
registered :class:`ProtocolSpec` (Wishbone, APB, AXI4-Lite, Avalon-MM,
TileLink-UL ship as pure spec entries — see docs/PROTOCOLS.md).
"""

from .arbiter import (
    Arbiter,
    FixedPriority,
    LeastRecentlyGranted,
    MessageArbiter,
    MessageLockStall,
    RoundRobin,
    WeightedLottery,
    make_arbiter,
)
from .ahb import AhbLayer
from .axi import AxiFabric
from .base import Fabric, FabricError, InitiatorPort, TargetPort
from .crossbar import StbusCrossbar
from .generic import GenericFabric
from .protocols import (
    PROTOCOLS,
    ProtocolSpec,
    bridgeable_specs,
    generic_specs,
    get_spec,
    platform_protocols,
    register_protocol,
    spec_for_fabric,
)
from .stbus import StbusNode, StbusTargetInterface
from .types import (
    AddressRange,
    Opcode,
    ProtocolKind,
    ResponseBeat,
    StbusType,
    Transaction,
    make_message,
)

__all__ = [
    "AddressRange",
    "AhbLayer",
    "Arbiter",
    "AxiFabric",
    "Fabric",
    "FabricError",
    "FixedPriority",
    "GenericFabric",
    "InitiatorPort",
    "LeastRecentlyGranted",
    "MessageArbiter",
    "MessageLockStall",
    "Opcode",
    "PROTOCOLS",
    "ProtocolKind",
    "ProtocolSpec",
    "ResponseBeat",
    "RoundRobin",
    "StbusCrossbar",
    "StbusNode",
    "StbusTargetInterface",
    "StbusType",
    "TargetPort",
    "Transaction",
    "WeightedLottery",
    "bridgeable_specs",
    "generic_specs",
    "get_spec",
    "make_arbiter",
    "make_message",
    "platform_protocols",
    "register_protocol",
    "spec_for_fabric",
]
