"""Interconnect fabric models: STBus, AMBA AHB, AMBA AXI, and arbitration."""

from .arbiter import (
    Arbiter,
    FixedPriority,
    LeastRecentlyGranted,
    MessageArbiter,
    MessageLockStall,
    RoundRobin,
    WeightedLottery,
    make_arbiter,
)
from .ahb import AhbLayer
from .axi import AxiFabric
from .base import Fabric, FabricError, InitiatorPort, TargetPort
from .crossbar import StbusCrossbar
from .stbus import StbusNode, StbusTargetInterface
from .types import (
    AddressRange,
    Opcode,
    ProtocolKind,
    ResponseBeat,
    StbusType,
    Transaction,
    make_message,
)

__all__ = [
    "AddressRange",
    "AhbLayer",
    "Arbiter",
    "AxiFabric",
    "Fabric",
    "FabricError",
    "FixedPriority",
    "InitiatorPort",
    "LeastRecentlyGranted",
    "MessageArbiter",
    "MessageLockStall",
    "Opcode",
    "ProtocolKind",
    "ResponseBeat",
    "RoundRobin",
    "StbusCrossbar",
    "StbusNode",
    "StbusTargetInterface",
    "StbusType",
    "TargetPort",
    "Transaction",
    "WeightedLottery",
    "make_arbiter",
    "make_message",
]
