"""AMBA AXI fabric model.

"Five different logical monodirectional channels are provided in AXI
interfaces, and activity on them is largely asynchronous and independent
(2 address channels, a read data and a write data channel, and a channel for
write responses).  This allows to support multiple outstanding transactions
(with out-of-order or in-order delivery selectable by means of transaction
IDs)." (Section 3.2)

The model runs one process per physical channel group:

* ``AR`` — read address channel: one cycle per read request.
* ``AW+W`` — write address + write data: the AW cell overlaps the first W
  beat, so a write costs its (width-adjusted) data beats.
* ``R`` — read data channel: per-beat arbitration across targets; the
  channel switches freely between bursts ("fine granularity arbitration"),
  which is what makes AXI robust beyond ~80% utilisation in Section 4.1.1.
* ``B`` — write response channel: one cycle per acknowledgement.

Burst overlapping (Section 4.1.2) holds by construction: the AR process
keeps issuing addresses while earlier bursts stream on R, so a single slave
sees the next request before the previous burst completes and the R channel
sustains the 50% efficiency bound of a 1-wait-state memory.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..core.clock import Clock
from ..core.component import Component
from ..core.kernel import Simulator
from .arbiter import Arbiter, MessageLockStall, RoundRobin
from .base import Fabric, TargetPort
from .types import Opcode, ResponseBeat, Transaction


class AxiFabric(Fabric):
    """An AXI interconnect (point-to-point channels + address decode)."""

    protocol = "axi"

    def __init__(self, sim: Simulator, name: str, clock: Clock,
                 data_width_bytes: int = 4,
                 arbiter: Optional[Arbiter] = None,
                 write_arbiter: Optional[Arbiter] = None,
                 parent: Optional[Component] = None) -> None:
        super().__init__(sim, name, clock, data_width_bytes=data_width_bytes,
                         arbiter=arbiter, parent=parent)
        #: Write path gets its own arbiter: AR and AW are independent.
        self.write_arbiter = write_arbiter if write_arbiter is not None else RoundRobin()
        self.ar_channel = self.channel("ar")
        self.w_channel = self.channel("w")
        self.r_channel = self.channel("r")
        self.b_channel = self.channel("b")
        #: Mid-burst switches on the R channel — consecutive data beats from
        #: different, still-open bursts.  This is the "fine granularity
        #: arbitration" at work; zero means responses streamed back-to-back.
        self.r_interleaves = sim.metrics.counter(f"{name}.r_interleaves")
        self.process(self._address_process(Opcode.READ), name="ar")
        self.process(self._address_process(Opcode.WRITE), name="aw_w")
        self.process(self._data_return_process(want_acks=False), name="r")
        self.process(self._data_return_process(want_acks=True), name="b")

    def snapshot_state(self, encoder):
        state = super().snapshot_state(encoder)
        state["write_arbiter"] = encoder.arbiter(self.write_arbiter)
        state["r_interleaves"] = self.r_interleaves.value
        return state

    # ------------------------------------------------------------------
    # request side (AR / AW+W)
    # ------------------------------------------------------------------
    def _candidates_for(self, opcode: Opcode):
        """Ports whose head-of-queue transaction travels this address channel
        and whose decoded target can accept it."""
        ready = []
        for port, txn in self.request_candidates():
            if txn.opcode is not opcode:
                continue
            target = self.try_route(txn.address)
            if target is not None and target.request_fifo.is_full:
                continue
            # Unmapped addresses stay eligible and become DECERR responses.
            ready.append((port, txn))
        return ready

    def _has_blocked(self, opcode: Opcode) -> bool:
        return any(not port.pending.is_empty and
                   port.pending.peek().opcode is opcode
                   for port in self.initiators)

    def _address_process(self, opcode: Opcode):
        clk = self.clock
        arbiter = self.arbiter if opcode is Opcode.READ else self.write_arbiter
        channel = self.ar_channel if opcode is Opcode.READ else self.w_channel
        while True:
            candidates = self._candidates_for(opcode)
            if not candidates:
                if self._has_blocked(opcode):
                    yield clk.edge()
                else:
                    yield self._wait_request_work()
                continue
            try:
                port, txn = arbiter.select(candidates)
            except MessageLockStall:
                yield clk.edge()
                continue
            self.pop_granted(port, txn)
            target = self.try_route(txn.address)
            if target is None:
                yield clk.edges(1)
                self.decode_failed(txn)  # the AXI DECERR default slave
                continue
            cycles = self.request_cycles(txn)  # 1 for AR; W beats for writes
            target.notify_request_state("storing")
            yield clk.edges(cycles)
            channel.add_busy(clk.to_ps(cycles))
            txn.meta["needs_ack"] = txn.is_write  # B response always returned
            yield target.request_fifo.put(txn)
            target.notify_request_state("idle")
            target.accepted.add()
            txn.mark_accepted(self.sim.now)
            if self._checks is not None:
                self._checks.note_accept(self, txn)

    # ------------------------------------------------------------------
    # response side (R / B)
    # ------------------------------------------------------------------
    def _scan_beats(self, want_acks: bool) -> List[Tuple[TargetPort, ResponseBeat]]:
        """First matching beat per target (R and B are separate queues in a
        real AXI slave interface; a shared FIFO with kind-filtered extraction
        models the same decoupling)."""
        found = []
        for target in self.targets:
            for beat in target.response_fifo.snapshot():
                if beat.is_write_ack == want_acks:
                    found.append((target, beat))
                    break
        return found

    def _data_return_process(self, want_acks: bool):
        clk = self.clock
        channel = self.b_channel if want_acks else self.r_channel
        rotation = 0
        previous_txn = None
        while True:
            candidates = self._scan_beats(want_acks)
            if not candidates:
                yield self._wait_response_work()
                continue
            # Per-beat (cycle-by-cycle) re-arbitration across targets.
            rotation += 1
            target, beat = candidates[rotation % len(candidates)]
            target.response_fifo.remove(beat)
            if (not want_acks and previous_txn is not None
                    and beat.txn is not previous_txn
                    and previous_txn.t_done is None):
                self.r_interleaves.add()
            previous_txn = beat.txn
            cycles = 1 if beat.is_write_ack else \
                self.bus_cycles_for_beat(beat.txn.beat_bytes)
            yield clk.edges(cycles)
            channel.add_busy(clk.to_ps(cycles))
            self.deliver_beat(beat)
