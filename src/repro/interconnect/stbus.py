"""STBus node model.

STBus (STMicroelectronics' proprietary interconnect) "leverages two physical
channels, one for initiator requests and one for target responses, and
supports split transactions" (Section 3.1).  The model therefore runs two
autonomous processes per node:

request channel
    Arbitrates among initiator ports (optionally at *message* granularity),
    occupies the channel for the request packet duration (1 cell for reads,
    one width-adjusted cell per data beat for writes) and hands the
    transaction to the decoded target's request FIFO.

response channel
    Streams :class:`ResponseBeat` items from target response FIFOs (the
    *prefetch FIFOs* whose depth determines how well target wait states are
    masked) back to initiators, one width-adjusted bus cycle per beat.

Protocol types gate the features exactly as the paper describes:

========  =====================================================================
Type 1    no split, no pipelining: the node serves one transaction end to end
          before re-arbitrating; writes are non-posted.
Type 2    split + pipelined transactions, posted writes: the request channel
          frees as soon as the request is delivered; response packets are
          atomic (beats of one packet stay together, gaps idle the channel).
Type 3    adds shaped packets / out-of-order support: the response channel
          may interleave beats of different packets, switching away from a
          packet whose next beat is not ready.
========  =====================================================================

The zero-handover property of Section 4.1.2 ("the grant signal is propagated
asynchronously from the target to the waiting initiator through the STBus
node in the same clock cycle") holds by construction: a beat that is ready in
a response FIFO is forwarded on the very cycle the channel frees up, and a
queued request wins arbitration on the cycle the target FIFO has room.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..core.clock import Clock
from ..core.component import Component
from ..core.kernel import Simulator
from .arbiter import Arbiter, MessageArbiter, MessageLockStall
from .base import Fabric, InitiatorPort, TargetPort
from .stbus_protocol import request_packet
from .types import ResponseBeat, StbusType, Transaction


class StbusNode(Fabric):
    """One STBus node (a crossbar/shared-bus layer with its own clock)."""

    protocol = "stbus"

    def __init__(self, sim: Simulator, name: str, clock: Clock,
                 data_width_bytes: int = 4,
                 bus_type: StbusType = StbusType.T3,
                 arbiter: Optional[Arbiter] = None,
                 message_arbitration: bool = True,
                 parent: Optional[Component] = None) -> None:
        super().__init__(sim, name, clock, data_width_bytes=data_width_bytes,
                         arbiter=arbiter, parent=parent)
        self.bus_type = StbusType(bus_type)
        if message_arbitration and not isinstance(self.arbiter, MessageArbiter):
            self.arbiter = MessageArbiter(self.arbiter)
        self.req_channel = self.channel("request")
        self.resp_channel = self.channel("response")
        #: Forced message-lock releases (bounded atomicity tripped); a
        #: non-zero value flags pathological message shaping on this node.
        self.lock_breaks = sim.metrics.counter(f"{name}.lock_breaks")
        self.process(self._request_process(), name="req")
        # The loosely-timed response channel is a separate generator so
        # the cycle-accurate body stays byte-identical to the CA-only code.
        self.process(self._response_process_lt() if self._lt
                     else self._response_process(), name="resp")

    # ------------------------------------------------------------------
    # feature gates
    # ------------------------------------------------------------------
    @property
    def supports_split(self) -> bool:
        """Split transactions free the request path during target latency."""
        return self.bus_type >= StbusType.T2

    @property
    def posted_writes(self) -> bool:
        """Posted writes complete at target acceptance (Type >= 2)."""
        return self.bus_type >= StbusType.T2

    @property
    def interleave_responses(self) -> bool:
        """Shaped/out-of-order packets may interleave beats (Type 3)."""
        return self.bus_type >= StbusType.T3

    # ------------------------------------------------------------------
    # request channel
    # ------------------------------------------------------------------
    def _eligible_requests(self):
        """Grant candidates; with split support, only those whose target can
        accept the request right now (others would block the channel)."""
        candidates = self.request_candidates()
        if not self.supports_split:
            return candidates
        ready = []
        for port, txn in candidates:
            target = self.try_route(txn.address)
            # (Plain-Fifo fullness check, inlined — target request FIFOs
            # are always base Fifos.)  Unmapped addresses stay eligible:
            # the grant turns into a decode-error response (or a wiring
            # error, per policy).
            if target is None or len(target.request_fifo._items) \
                    < target.request_fifo.capacity:
                ready.append((port, txn))
        return ready

    #: Arbitration rounds a message lock may stall the node before it is
    #: forcibly broken (bounded message atomicity).
    MAX_LOCK_STALL_ROUNDS = 64

    def _request_process(self):
        clk = self.clock
        lt = self._lt
        stalled_rounds = 0
        while True:
            candidates = self._eligible_requests()
            if not candidates:
                if any(p.pending._items for p in self.initiators):
                    if lt:
                        # LT: requests exist but every decoded target is
                        # full.  Instead of polling every cycle, sleep
                        # until a target FIFO drains (the Fabric base
                        # watches target levels in LT mode) and re-enter
                        # arbitration at the next grant edge.
                        yield self._wait_request_work()
                        if not clk.at_edge():
                            yield clk.edge()
                    else:
                        # Requests exist but every decoded target is full:
                        # the request/grant handshake stalls for a cycle.
                        yield clk.edge()
                else:
                    yield self._wait_request_work()
                continue
            try:
                port, txn = self.arbiter.select(candidates)
            except MessageLockStall:
                stalled_rounds += 1
                if (stalled_rounds >= self.MAX_LOCK_STALL_ROUNDS
                        and isinstance(self.arbiter, MessageArbiter)):
                    self.arbiter.break_lock()
                    self.lock_breaks.add()
                yield clk.edge()
                continue
            stalled_rounds = 0
            self.pop_granted(port, txn)
            yield from self._transfer_request(txn)

    def request_cycles(self, txn: Transaction) -> int:
        """Request-channel occupancy from the packet composition rules."""
        packet = request_packet(txn, self.data_width_bytes,
                                shaped=self.interleave_responses)
        return packet.cells

    def _transfer_request(self, txn: Transaction):
        clk = self.clock
        target = self.try_route(txn.address)
        if target is None:
            yield clk.edges(1)  # the decode stage samples the address
            self.decode_failed(txn)
            return
        cycles = self.request_cycles(txn)
        target.notify_request_state("storing")
        yield clk.edges(cycles)
        self.req_channel.add_busy(clk.to_ps(cycles))
        is_posted = txn.is_write and txn.posted and self.posted_writes
        txn.meta["needs_ack"] = txn.is_write and not is_posted
        if not (self._lt and target.request_fifo.try_put(txn)):
            # CA always takes the queued put (the same-timestamp round
            # trip is the modelled handshake); LT falls back to it only
            # when the FIFO is actually full (Type 1, no eligibility
            # guarantee).
            yield target.request_fifo.put(txn)
        target.notify_request_state("idle")
        target.accepted.add()
        txn.mark_accepted(self.sim.now)
        if self._checks is not None:
            self._checks.note_accept(self, txn)
        if txn.is_write and txn.posted and self.posted_writes:
            txn.complete(self.sim.now)
        if not self.supports_split:
            # Type 1: hold the node until the transaction fully completes.
            if not txn.ev_done.triggered:
                yield txn.ev_done

    # ------------------------------------------------------------------
    # response channel
    # ------------------------------------------------------------------
    def _response_process(self):
        clk = self.clock
        current: Optional[Tuple[TargetPort, Transaction]] = None
        while True:
            beat = self._pick_beat(current)
            if beat is None:
                if current is not None:
                    # Packet atomicity (T1/T2): the next beat of the packet in
                    # flight is not ready yet — the channel idles this cycle.
                    yield clk.edge()
                else:
                    yield self._wait_response_work()
                continue
            target, item = beat
            taken = target.response_fifo.try_get()
            if taken is not item:  # pragma: no cover - single-consumer channel
                raise RuntimeError("response FIFO raced")
            cycles = self.bus_cycles_for_beat(item.txn.beat_bytes)
            yield clk.edges(cycles)
            self.resp_channel.add_busy(clk.to_ps(cycles))
            self.deliver_beat(item)
            current = None if item.is_last else (target, item.txn)

    def _response_process_lt(self):
        """Loosely-timed response channel (see docs/FAST_SIM.md).

        Two departures from the cycle-accurate body:

        * the packet-atomicity wait (T1/T2: next beat of the in-flight
          packet not buffered yet) sleeps on the response work signal and
          realigns to the next bus edge, instead of polling every cycle;
        * a run of consecutive buffered beats of the same packet is
          transferred in one closed-form step — CA would stream exactly
          those beats back to back anyway (the in-flight packet always
          wins :meth:`_pick_beat`), so the run's start, duration and
          last-beat instant are identical; only the intermediate beats'
          delivery is deferred to the end of the run.  The first-data
          timestamp is back-annotated analytically.
        """
        clk = self.clock
        sim = self.sim
        current: Optional[Tuple[TargetPort, Transaction]] = None
        while True:
            beat = self._pick_beat(current)
            if beat is None:
                yield self._wait_response_work()
                if current is not None and not clk.at_edge():
                    yield clk.edge()
                continue
            target, item = beat
            fifo = target.response_fifo
            items = fifo._items
            run = 1
            if not item.is_last:
                txn = item.txn
                while run < len(items) and items[run].txn is txn \
                        and not items[run - 1].is_last:
                    run += 1
            beats = [fifo.try_get() for _ in range(run)]
            cycles = self.bus_cycles_for_beat(item.txn.beat_bytes)
            yield clk.edges(cycles * run)
            self.resp_channel.add_busy(clk.to_ps(cycles * run))
            if run > 1:
                sim.note_fastforward(run - 1)
                first = beats[0]
                if first.txn.t_first_data is None and not first.is_write_ack:
                    # CA delivers the run's first beat `cycles` edges in;
                    # the batch ends (run-1)*cycles later.
                    first.txn.t_first_data = \
                        sim.now - clk.to_ps(cycles * (run - 1))
            for delivered in beats:
                self.deliver_beat(delivered)
            last = beats[-1]
            current = None if last.is_last else (target, last.txn)

    def _pick_beat(self, current):
        """Choose the next response beat to forward.

        With a packet in flight: its next beat when ready; otherwise another
        target's beat only if interleaving is allowed (Type 3).

        Packet-atomic types (1/2) only *start* a packet once the target's
        prefetch FIFO can sustain it — the remaining packet is buffered, or
        the FIFO is full (it cannot accumulate further).  This is how deeper
        prefetch FIFOs let STBus mask target wait states: the channel
        streams buffered packets back to back instead of idling in each
        wait-state gap.
        """
        candidates = self.response_candidates()
        if current is not None:
            target, txn = current
            beats = target.response_fifo._items
            if beats and beats[0].txn is txn:
                return target, beats[0]
            if not self.interleave_responses:
                return None
            candidates = [(t, b) for t, b in candidates
                          if not (t is target and b.txn is txn)]
        elif not self.interleave_responses:
            candidates = [(t, b) for t, b in candidates
                          if self._packet_streamable(t, b)]
        if not candidates:
            return None
        # Per-beat rotation across targets: deterministic round robin keyed
        # on the target port.
        return min(candidates, key=lambda cand: cand[0].name)

    def snapshot_state(self, encoder):
        state = super().snapshot_state(encoder)
        state["bus_type"] = int(self.bus_type)
        state["lock_breaks"] = self.lock_breaks.value
        return state

    @staticmethod
    def _packet_streamable(target: TargetPort, beat: ResponseBeat) -> bool:
        """Can this packet be streamed without mid-packet starvation?"""
        if beat.is_write_ack:
            return True
        remaining = beat.txn.beats - beat.index
        fifo = target.response_fifo
        return fifo.level >= min(remaining, fifo.capacity)


class StbusTargetInterface:
    """Helper mixin-ish adaptor documenting the device-side contract.

    Devices attached to an :class:`StbusNode` interact only through their
    :class:`~repro.interconnect.base.TargetPort`:

    * ``yield port.get_request()`` to accept a transaction,
    * ``yield port.put_beat(ResponseBeat(txn, i, is_last))`` per data beat
      (reads) or a single ``index == -1`` acknowledgement beat (non-posted
      writes).

    Kept as a class for documentation/discoverability; it has no state.
    """

    @staticmethod
    def write_ack(txn: Transaction) -> ResponseBeat:
        """The acknowledgement beat of a non-posted write."""
        return ResponseBeat(txn, index=-1, is_last=True)

    @staticmethod
    def read_beats(txn: Transaction):
        """Yield the (index, is_last) schedule of a read burst."""
        for i in range(txn.beats):
            yield i, i == txn.beats - 1
