"""Declarative protocol registry.

The bus layer grew as seven hand-written fabric/bridge classes; what
actually distinguishes the protocols is a small table of handshake,
burst, posted-write and split semantics — the observation behind
bus-interface signal tables like processor_ci_connector's ``PROTOCOLS``
(see SNIPPETS.md) and the Samsung cycle-count-accurate AMBA TLM work.
This module makes that table explicit: a :class:`ProtocolSpec` per
protocol, a registry keyed by spec name, and lookup helpers used by

* :mod:`repro.interconnect.generic` — a shared engine that turns a pure
  spec entry into a runnable fabric (Wishbone, APB, AXI4-Lite, Avalon,
  TileLink-UL ship this way; adding another protocol is ~50 lines of
  table, see docs/PROTOCOLS.md),
* :mod:`repro.bridge.matrix` — the derived N x N bridge matrix
  (spec diff -> store-and-forward conversion plan),
* :mod:`repro.platforms` — configuration validation and elaboration,
* :mod:`repro.check` / :mod:`repro.obs.energy` — monitor rule ids and
  per-beat energy coefficients, cross-checked by the
  registry-completeness lint (:mod:`repro.check.registry_lint`).

The five legacy fabrics (STBus T1/T2/T3 as one hand-written engine,
AHB, AXI, TLM) are *re-expressed* as registry entries whose ``engine``
field points at the existing classes — their timing code is untouched,
which is what keeps the golden corpus bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

#: One bus-interface signal: ``(name, min_bits, max_bits)`` — the
#: processor_ci_connector table idiom.  Width-parameterised signals
#: (data paths, byte strobes) span a range; control wires pin both ends.
Signal = Tuple[str, int, int]


@dataclass(frozen=True)
class ProtocolSpec:
    """Everything the generic engine, bridge matrix, monitors and energy
    model need to know about one bus protocol.

    ``engine`` selects the timing model: ``"stbus"`` / ``"ahb"`` /
    ``"axi"`` / ``"tlm"`` keep the hand-written classes; ``"generic"``
    runs :class:`~repro.interconnect.generic.GenericFabric`, which is
    parameterised entirely by this spec.
    """

    #: Registry key; also the ``Fabric.protocol`` label of generic
    #: fabrics (legacy engines keep their historical labels).
    name: str
    #: Human-readable protocol name for docs and CLI tables.
    title: str
    #: Protocol family ("stbus", "amba", "open").
    family: str
    #: Timing engine: "stbus" | "ahb" | "axi" | "tlm" | "generic".
    engine: str
    #: ``PlatformConfig.protocol`` value that elaborates this spec
    #: (``None`` for specs not selectable as a platform protocol —
    #: the TLM tier is chosen via ``abstraction="tlm"`` instead).
    platform_key: Optional[str]
    #: Bus-interface signal table, initiator perspective.
    signals: Tuple[Signal, ...]
    #: Physical/logical channels the protocol multiplexes traffic over.
    channels: Tuple[str, ...]
    #: Handshake style, e.g. "req/gnt", "valid/ready", "cyc/stb/ack".
    handshake: str
    #: Split transactions: the request path frees during target latency.
    split: bool
    #: Posted writes may complete at target acceptance.
    posted_writes: bool
    #: Address phase may overlap the previous data phase.
    pipelined: bool
    #: More than one transaction in flight on the fabric at once.
    multi_outstanding: bool
    #: Response beats of different packets may interleave.
    response_interleave: bool
    #: Longest burst one transfer may carry (0 = unbounded; 1 = a
    #: single-beat protocol — bursts are serialised into transfers).
    max_burst_beats: int
    #: Per-transfer request-phase overhead cycles (APB SETUP phase,
    #: Wishbone cycle assertion).
    setup_cycles: int = 0
    #: Per-beat response handshake overhead cycles (classic Wishbone
    #: ack turnaround).
    resp_overhead_cycles: int = 0
    #: ``EnergyConfig`` field holding this protocol's pJ-per-beat
    #: coefficient (the completeness lint verifies the field exists).
    energy_coefficient: str = "stbus_t2_pj_per_beat"
    #: Rule id the checker attaches to beat-ordering violations (must
    #: agree with ``repro.check.monitors``; the lint verifies).
    beat_rule: str = "fabric.beat_order"
    #: May this protocol terminate a bridge?  The TLM tier opts out:
    #: its node serves analytic service models and never drains a
    #: bridge's target-side FIFO.
    bridgeable: bool = True
    #: One-line rationale / reference for docs.
    notes: str = ""

    def __post_init__(self) -> None:
        if self.engine not in ("stbus", "ahb", "axi", "tlm", "generic"):
            raise ValueError(f"unknown engine {self.engine!r}")
        if self.max_burst_beats < 0:
            raise ValueError("max_burst_beats must be >= 0")
        if self.setup_cycles < 0 or self.resp_overhead_cycles < 0:
            raise ValueError("cycle overheads must be >= 0")

    @property
    def fabric_label(self) -> str:
        """The ``Fabric.protocol`` label instances of this spec carry.

        Legacy engines keep their historical labels (all three STBus
        types report ``"stbus"``); generic fabrics use the spec name.
        """
        if self.engine == "generic":
            return self.name
        return {"stbus": "stbus", "ahb": "ahb",
                "axi": "axi", "tlm": "tlm"}[self.engine]

    @property
    def single_beat(self) -> bool:
        """Bursts must be serialised into one-beat transfers."""
        return self.max_burst_beats == 1

    def wire_bits(self, data_width_bytes: int = 4) -> int:
        """Physical wires one port of this protocol needs, in bits.

        Control signals (pinned ``min == max``) count their fixed width.
        Width-parameterised signals (data paths, byte strobes) are tabled
        at their narrowest 32-bit-data instance; an instance with a wider
        data path scales them proportionally, clamped to the table's
        ``max_bits``.  This is the area term of the DSE wire-cost model
        (:mod:`repro.dse.cost`): purely spec-derived, so every registered
        protocol gets a cost without hand-written per-protocol numbers.
        """
        if data_width_bytes < 1:
            raise ValueError("data_width_bytes must be >= 1")
        scale = max(1.0, data_width_bytes * 8 / 32)
        total = 0
        for _name, lo, hi in self.signals:
            total += hi if hi == lo else min(hi, int(lo * scale))
        return total


#: The registry.  Ordered: legacy engines first, generic entries after.
PROTOCOLS: Dict[str, ProtocolSpec] = {}


def register_protocol(spec: ProtocolSpec) -> ProtocolSpec:
    """Add ``spec`` to the registry (name must be unused)."""
    if spec.name in PROTOCOLS:
        raise ValueError(f"protocol {spec.name!r} already registered")
    PROTOCOLS[spec.name] = spec
    return spec


def get_spec(name: str) -> ProtocolSpec:
    """Look up a registered protocol by name."""
    try:
        return PROTOCOLS[name]
    except KeyError:
        raise ValueError(f"unknown protocol {name!r}; registered: "
                         f"{sorted(PROTOCOLS)}") from None


def spec_for_fabric(fabric) -> ProtocolSpec:
    """The spec describing a live fabric instance.

    Generic fabrics carry their spec directly; STBus nodes (shared-bus
    and crossbar) resolve through ``bus_type``; the remaining legacy
    engines resolve through their protocol label.
    """
    spec = getattr(fabric, "spec", None)
    if spec is not None:
        return spec
    bus_type = getattr(fabric, "bus_type", None)
    if bus_type is not None:
        return PROTOCOLS[f"stbus_t{int(bus_type)}"]
    protocol = getattr(fabric, "protocol", None)
    if protocol in PROTOCOLS:
        return PROTOCOLS[protocol]
    raise ValueError(f"no registered spec for fabric "
                     f"{getattr(fabric, 'name', fabric)!r} "
                     f"(protocol {protocol!r})")


def platform_protocols() -> Tuple[str, ...]:
    """Valid ``PlatformConfig.protocol`` values, registry-derived."""
    seen = []
    for spec in PROTOCOLS.values():
        if spec.platform_key is not None and spec.platform_key not in seen:
            seen.append(spec.platform_key)
    return tuple(seen)


def spec_for_platform(platform_key: str,
                      stbus_type: int = 3) -> ProtocolSpec:
    """The spec behind a ``PlatformConfig.protocol`` value.

    The STBus platform key fans out over three specs; ``stbus_type``
    (the cluster/central ``StbusType``) picks which one.  Other keys map
    one-to-one.
    """
    if platform_key == "stbus":
        return get_spec(f"stbus_t{int(stbus_type)}")
    for spec in PROTOCOLS.values():
        if spec.platform_key == platform_key:
            return spec
    raise ValueError(f"unknown platform protocol {platform_key!r}; "
                     f"valid: {sorted(platform_protocols())}")


def generic_specs() -> Tuple[ProtocolSpec, ...]:
    """Specs served by the shared generic engine."""
    return tuple(s for s in PROTOCOLS.values() if s.engine == "generic")


def bridgeable_specs() -> Tuple[ProtocolSpec, ...]:
    """Specs that may terminate a bridge (one entry per fabric label)."""
    out, seen = [], set()
    for spec in PROTOCOLS.values():
        if spec.bridgeable and spec.name not in seen:
            out.append(spec)
            seen.add(spec.name)
    return tuple(out)


def bridge_pair_unsupported(source: ProtocolSpec,
                            dest: ProtocolSpec) -> Optional[str]:
    """Why a ``source -> dest`` bridge cannot exist (``None`` = fine).

    The port abstraction makes most pairings mechanical; the genuinely
    nonsensical ones are bridges into or out of a non-bridgeable
    protocol (TLM: its node never drains a bridge's target-side FIFO,
    so the pairing silently deadlocks the first forwarded read).
    """
    if not source.bridgeable:
        return (f"source protocol {source.name!r} is not bridgeable"
                f" ({source.notes or 'no bus-level target side'})")
    if not dest.bridgeable:
        return (f"destination protocol {dest.name!r} is not bridgeable"
                f" ({dest.notes or 'no bus-level initiator side'})")
    return None


# ---------------------------------------------------------------------------
# signal-table shorthands
# ---------------------------------------------------------------------------
def _sig(name: str, lo: int, hi: Optional[int] = None) -> Signal:
    return (name, lo, hi if hi is not None else lo)


_STBUS_SIGNALS = (
    _sig("req", 1), _sig("gnt", 1), _sig("opc", 8), _sig("add", 32),
    _sig("data", 32, 128), _sig("be", 4, 16),
    _sig("r_req", 1), _sig("r_gnt", 1), _sig("r_opc", 8),
    _sig("r_data", 32, 128),
)
_STBUS_T2_EXTRA = (_sig("src", 8), _sig("tid", 8), _sig("pri", 4))

_AHB_SIGNALS = (
    _sig("hbusreq", 1), _sig("hgrant", 1), _sig("haddr", 32),
    _sig("htrans", 2), _sig("hwrite", 1), _sig("hsize", 3),
    _sig("hburst", 3), _sig("hwdata", 32, 64), _sig("hrdata", 32, 64),
    _sig("hready", 1), _sig("hresp", 2),
)

_AXI_SIGNALS = (
    _sig("arvalid", 1), _sig("arready", 1), _sig("araddr", 32),
    _sig("arid", 4, 8), _sig("arlen", 8), _sig("arsize", 3),
    _sig("awvalid", 1), _sig("awready", 1), _sig("awaddr", 32),
    _sig("awid", 4, 8), _sig("awlen", 8),
    _sig("wvalid", 1), _sig("wready", 1), _sig("wdata", 32, 128),
    _sig("wstrb", 4, 16), _sig("wlast", 1),
    _sig("rvalid", 1), _sig("rready", 1), _sig("rdata", 32, 128),
    _sig("rid", 4, 8), _sig("rresp", 2), _sig("rlast", 1),
    _sig("bvalid", 1), _sig("bready", 1), _sig("bid", 4, 8),
    _sig("bresp", 2),
)

_WISHBONE_SIGNALS = (
    _sig("cyc_o", 1), _sig("stb_o", 1), _sig("we_o", 1),
    _sig("adr_o", 32), _sig("sel_o", 4, 8),
    _sig("dat_o", 32, 64), _sig("dat_i", 32, 64),
    _sig("ack_i", 1), _sig("err_i", 1), _sig("stall_i", 1),
)

_APB_SIGNALS = (
    _sig("psel", 1), _sig("penable", 1), _sig("pwrite", 1),
    _sig("paddr", 32), _sig("pwdata", 32), _sig("prdata", 32),
    _sig("pready", 1), _sig("pslverr", 1),
)

_AXI4LITE_SIGNALS = (
    _sig("arvalid", 1), _sig("arready", 1), _sig("araddr", 32),
    _sig("awvalid", 1), _sig("awready", 1), _sig("awaddr", 32),
    _sig("wvalid", 1), _sig("wready", 1), _sig("wdata", 32, 64),
    _sig("wstrb", 4, 8),
    _sig("rvalid", 1), _sig("rready", 1), _sig("rdata", 32, 64),
    _sig("rresp", 2),
    _sig("bvalid", 1), _sig("bready", 1), _sig("bresp", 2),
)

_AVALON_SIGNALS = (
    _sig("chipselect", 1), _sig("read", 1), _sig("write", 1),
    _sig("address", 32), _sig("byteenable", 4, 8),
    _sig("writedata", 32, 64), _sig("readdata", 32, 64),
    _sig("waitrequest", 1), _sig("readdatavalid", 1),
    _sig("burstcount", 4, 8),
)

_TILELINK_SIGNALS = (
    _sig("a_valid", 1), _sig("a_ready", 1), _sig("a_opcode", 3),
    _sig("a_address", 32), _sig("a_size", 4), _sig("a_mask", 4, 8),
    _sig("a_data", 32, 64),
    _sig("d_valid", 1), _sig("d_ready", 1), _sig("d_opcode", 3),
    _sig("d_data", 32, 64), _sig("d_error", 1),
)


# ---------------------------------------------------------------------------
# legacy engines, re-expressed as registry entries
# ---------------------------------------------------------------------------
register_protocol(ProtocolSpec(
    name="stbus_t1", title="STBus Type 1", family="stbus", engine="stbus",
    platform_key="stbus", signals=_STBUS_SIGNALS,
    channels=("request", "response"), handshake="req/gnt",
    split=False, posted_writes=False, pipelined=False,
    multi_outstanding=False, response_interleave=False, max_burst_beats=0,
    energy_coefficient="stbus_t1_pj_per_beat",
    beat_rule="stbus.packet_order",
    notes="low cost; the node is held end to end per transaction"))

register_protocol(ProtocolSpec(
    name="stbus_t2", title="STBus Type 2", family="stbus", engine="stbus",
    platform_key="stbus", signals=_STBUS_SIGNALS + _STBUS_T2_EXTRA,
    channels=("request", "response"), handshake="req/gnt",
    split=True, posted_writes=True, pipelined=True,
    multi_outstanding=True, response_interleave=False, max_burst_beats=0,
    energy_coefficient="stbus_t2_pj_per_beat",
    beat_rule="stbus.packet_order",
    notes="split + pipelined, posted writes, packet-atomic responses"))

register_protocol(ProtocolSpec(
    name="stbus_t3", title="STBus Type 3", family="stbus", engine="stbus",
    platform_key="stbus", signals=_STBUS_SIGNALS + _STBUS_T2_EXTRA,
    channels=("request", "response"), handshake="req/gnt",
    split=True, posted_writes=True, pipelined=True,
    multi_outstanding=True, response_interleave=True, max_burst_beats=0,
    energy_coefficient="stbus_t3_pj_per_beat",
    beat_rule="stbus.packet_order",
    notes="adds shaped packets and out-of-order response interleaving"))

register_protocol(ProtocolSpec(
    name="ahb", title="AMBA AHB", family="amba", engine="ahb",
    platform_key="ahb", signals=_AHB_SIGNALS,
    channels=("bus",), handshake="hbusreq/hgrant + hready",
    split=False, posted_writes=False, pipelined=True,
    multi_outstanding=False, response_interleave=False, max_burst_beats=0,
    energy_coefficient="ahb_pj_per_beat", beat_rule="ahb.data_order",
    notes="single data link, address pipelining, non-posted writes"))

register_protocol(ProtocolSpec(
    name="axi", title="AMBA AXI", family="amba", engine="axi",
    platform_key="axi", signals=_AXI_SIGNALS,
    channels=("ar", "aw", "w", "r", "b"), handshake="valid/ready",
    split=True, posted_writes=False, pipelined=True,
    multi_outstanding=True, response_interleave=True, max_burst_beats=0,
    energy_coefficient="axi_pj_per_beat", beat_rule="axi.id_order",
    notes="five independent channels, per-beat R re-arbitration"))

register_protocol(ProtocolSpec(
    name="tlm", title="Analytic TLM tier", family="tlm", engine="tlm",
    platform_key=None, signals=(),
    channels=("transport",), handshake="function call",
    split=True, posted_writes=True, pipelined=True,
    multi_outstanding=True, response_interleave=True, max_burst_beats=0,
    energy_coefficient="tlm_pj_per_beat",
    beat_rule="tlm.completion_order", bridgeable=False,
    notes="serves analytic service models only; never drains a bridge "
          "target FIFO, so bridging to or from it deadlocks"))


# ---------------------------------------------------------------------------
# pure spec entries served by the generic engine
# ---------------------------------------------------------------------------
register_protocol(ProtocolSpec(
    name="wishbone", title="Wishbone B4 (classic)", family="open",
    engine="generic", platform_key="wishbone", signals=_WISHBONE_SIGNALS,
    channels=("bus",), handshake="cyc/stb/ack",
    split=False, posted_writes=False, pipelined=False,
    multi_outstanding=False, response_interleave=False, max_burst_beats=0,
    setup_cycles=1, resp_overhead_cycles=1,
    energy_coefficient="wishbone_pj_per_beat",
    beat_rule="wishbone.ack_order",
    notes="classic cycles: cyc assertion + one ack turnaround per beat"))

register_protocol(ProtocolSpec(
    name="apb", title="AMBA APB", family="amba",
    engine="generic", platform_key="apb", signals=_APB_SIGNALS,
    channels=("bus",), handshake="psel/penable/pready",
    split=False, posted_writes=False, pipelined=False,
    multi_outstanding=False, response_interleave=False, max_burst_beats=1,
    setup_cycles=1,
    energy_coefficient="apb_pj_per_beat", beat_rule="apb.access_order",
    notes="two-phase SETUP/ACCESS, one beat per transfer, no bursts"))

register_protocol(ProtocolSpec(
    name="axi4lite", title="AMBA AXI4-Lite", family="amba",
    engine="generic", platform_key="axi4lite", signals=_AXI4LITE_SIGNALS,
    channels=("ar", "aw", "w", "r", "b"), handshake="valid/ready",
    split=True, posted_writes=False, pipelined=True,
    multi_outstanding=True, response_interleave=True, max_burst_beats=1,
    energy_coefficient="axi4lite_pj_per_beat",
    beat_rule="axi4lite.channel_order",
    notes="AXI channels without bursts or IDs; every beat is a transfer"))

register_protocol(ProtocolSpec(
    name="avalon", title="Avalon-MM", family="open",
    engine="generic", platform_key="avalon", signals=_AVALON_SIGNALS,
    channels=("bus",), handshake="waitrequest",
    split=True, posted_writes=True, pipelined=True,
    multi_outstanding=True, response_interleave=False, max_burst_beats=0,
    energy_coefficient="avalon_pj_per_beat",
    beat_rule="avalon.readdata_order",
    notes="pipelined reads via readdatavalid, posted writes, bursts"))

register_protocol(ProtocolSpec(
    name="tilelink", title="TileLink-UL", family="open",
    engine="generic", platform_key="tilelink", signals=_TILELINK_SIGNALS,
    channels=("a", "d"), handshake="valid/ready",
    split=True, posted_writes=False, pipelined=True,
    multi_outstanding=True, response_interleave=True, max_burst_beats=1,
    energy_coefficient="tilelink_pj_per_beat", beat_rule="tilelink.d_order",
    notes="uncached-lightweight: single-beat A/D messages, every write "
          "acked on D"))


__all__ = [
    "PROTOCOLS",
    "ProtocolSpec",
    "Signal",
    "bridge_pair_unsupported",
    "bridgeable_specs",
    "generic_specs",
    "get_spec",
    "platform_protocols",
    "register_protocol",
    "spec_for_fabric",
    "spec_for_platform",
]
