"""Transaction-level (approximately-timed) interconnect model.

The paper's virtual platform is *multi-abstraction*: "IPTGs will generate
bus transactions at different abstraction levels (transaction-level, bus
cycle-accurate) according to what is specified in a per-IP configuration
file" (Section 3.1).  The cycle-accurate models in ``stbus``/``ahb``/
``axi`` simulate every beat; this module provides the fast
transaction-level tier: per transaction, the fabric charges an *analytic*
request-channel occupancy, target service window and response drain — a
handful of kernel events instead of one per beat.

Intended use: early design-space exploration at 10-50x the simulation
speed, cross-validated against the cycle-accurate tier (see
``tests/test_tlm.py``); switch individual experiments to cycle accuracy
once candidates are short-listed — the flow the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..core.clock import Clock
from ..core.component import Component
from ..core.kernel import Simulator
from ..interconnect.arbiter import Arbiter, MessageLockStall
from ..interconnect.base import Fabric
from ..interconnect.types import AddressRange, Transaction


class ServiceModel:
    """Analytic timing of one target: subclass and implement estimate()."""

    def estimate(self, txn: Transaction) -> "ServiceEstimate":
        raise NotImplementedError


@dataclass(frozen=True)
class ServiceEstimate:
    """Timing of one access at a target, relative to service start (ps)."""

    #: Delay from service start to the first response data.
    first_data_ps: int
    #: Total target occupancy (the next access starts after this).
    occupancy_ps: int

    def __post_init__(self) -> None:
        if self.first_data_ps < 0 or self.occupancy_ps <= 0:
            raise ValueError("service estimate must be positive")
        if self.first_data_ps > self.occupancy_ps:
            raise ValueError("first data cannot come after occupancy ends")


class SramServiceModel(ServiceModel):
    """Analytic model of :class:`~repro.memory.onchip.OnChipMemory`."""

    def __init__(self, clock: Clock, wait_states: int = 1,
                 width_bytes: int = 8,
                 access_latency_cycles: int = 0) -> None:
        self.clock = clock
        self.wait_states = wait_states
        self.width_bytes = width_bytes
        self.access_latency_cycles = access_latency_cycles

    def estimate(self, txn: Transaction) -> ServiceEstimate:
        words = max(1, -(-txn.total_bytes // self.width_bytes))
        cycles = words * (1 + self.wait_states)
        latency = self.access_latency_cycles + 1 + self.wait_states
        return ServiceEstimate(
            first_data_ps=self.clock.to_ps(latency),
            occupancy_ps=self.clock.to_ps(self.access_latency_cycles + cycles))


class SdramServiceModel(ServiceModel):
    """Coarse analytic model of the LMI + SDRAM path.

    ``first_read_cycles`` is the headline 11-cycle figure; throughput is
    approximated with an average row-hit mix (``row_hit_fraction``).
    """

    def __init__(self, clock: Clock, first_read_cycles: int = 11,
                 width_bytes: int = 8, beats_per_clock: int = 2,
                 row_hit_fraction: float = 0.6,
                 row_miss_penalty_cycles: int = 6) -> None:
        if not 0.0 <= row_hit_fraction <= 1.0:
            raise ValueError("row_hit_fraction out of [0, 1]")
        self.clock = clock
        self.first_read_cycles = first_read_cycles
        self.width_bytes = width_bytes
        self.beats_per_clock = beats_per_clock
        self.row_hit_fraction = row_hit_fraction
        self.row_miss_penalty_cycles = row_miss_penalty_cycles

    def estimate(self, txn: Transaction) -> ServiceEstimate:
        words = max(1, -(-txn.total_bytes // self.width_bytes))
        data_cycles = max(1, -(-words // self.beats_per_clock))
        miss_overhead = (1.0 - self.row_hit_fraction) \
            * self.row_miss_penalty_cycles
        first = self.first_read_cycles + miss_overhead
        return ServiceEstimate(
            first_data_ps=int(self.clock.to_ps(1) * first),
            occupancy_ps=int(self.clock.to_ps(1) * (first + data_cycles)))


class _TlmTarget:
    """Bookkeeping for one analytically-modelled target."""

    __slots__ = ("name", "address_range", "model", "free_at_ps", "served")

    def __init__(self, name: str, address_range: AddressRange,
                 model: ServiceModel) -> None:
        self.name = name
        self.address_range = address_range
        self.model = model
        self.free_at_ps = 0
        self.served = 0


class TlmNode(Fabric):
    """Approximately-timed shared interconnect.

    Reuses the :class:`Fabric` initiator ports (so IPTGs, CPUs and bridges
    plug in unchanged) but replaces per-beat channel processes with one
    dispatcher that charges analytic times:

    * request channel: ``request_cycles(txn)`` serialised cycles;
    * target: the registered :class:`ServiceModel`'s window, serialised
      per target (single-ported);
    * response channel: one (width-adjusted) cycle per beat, serialised
      across transactions.
    """

    protocol = "tlm"

    def __init__(self, sim: Simulator, name: str, clock: Clock,
                 data_width_bytes: int = 8,
                 arbiter: Optional[Arbiter] = None,
                 parent: Optional[Component] = None) -> None:
        super().__init__(sim, name, clock, data_width_bytes=data_width_bytes,
                         arbiter=arbiter, parent=parent)
        self.tlm_targets: List[_TlmTarget] = []
        self._resp_free_at_ps = 0
        self.req_channel = self.channel("request")
        self.resp_channel = self.channel("response")
        self.process(self._dispatch(), name="dispatch")

    # ------------------------------------------------------------------
    def add_tlm_target(self, name: str, address_range: AddressRange,
                       model: ServiceModel) -> _TlmTarget:
        """Register an analytically-modelled target."""
        for existing in self.tlm_targets:
            if existing.address_range.overlaps(address_range):
                raise ValueError(f"{name} overlaps {existing.name}")
        target = _TlmTarget(name, address_range, model)
        self.tlm_targets.append(target)
        return target

    def snapshot_state(self, encoder):
        state = super().snapshot_state(encoder)
        state["resp_free_at_ps"] = self._resp_free_at_ps
        state["tlm_targets"] = {
            target.name: {"free_at_ps": target.free_at_ps,
                          "served": target.served}
            for target in self.tlm_targets
        }
        return state

    def tlm_route(self, address: int) -> _TlmTarget:
        for target in self.tlm_targets:
            if target.address_range.contains(address):
                return target
        raise ValueError(f"{self.name}: no TLM target decodes {address:#x}")

    # ------------------------------------------------------------------
    def _dispatch(self):
        clk = self.clock
        while True:
            candidates = self.request_candidates()
            if not candidates:
                yield self._wait_request_work()
                continue
            try:
                port, txn = self.arbiter.select(candidates)
            except MessageLockStall:
                yield clk.edge()
                continue
            self.pop_granted(port, txn)
            request_cycles = self.request_cycles(txn)
            yield clk.edges(request_cycles)
            self.req_channel.add_busy(clk.to_ps(request_cycles))
            self._schedule_completion(txn)

    def _schedule_completion(self, txn: Transaction) -> None:
        """Charge the analytic target + response times via timeouts."""
        now = self.sim.now
        target = self.tlm_route(txn.address)
        estimate = target.model.estimate(txn)
        start = max(now, target.free_at_ps)
        target.free_at_ps = start + estimate.occupancy_ps
        target.served += 1
        txn.mark_accepted(now)
        if txn.is_write and txn.posted:
            # Posted writes produce no response beats (as in the CA
            # fabrics, which complete them at acceptance).
            txn.complete(now)
            return
        if self._energy is not None:
            # The TLM node drains responses analytically instead of
            # calling ``deliver_beat`` per beat; charge the same beat
            # population in one step (reads: the data burst, non-posted
            # writes: the single acknowledgement cell).
            self._energy.bus_beats(self, txn, txn.beats if txn.is_read else 1)
        first_data = start + estimate.first_data_ps
        drain = txn.beats * self.bus_cycles_for_beat(txn.beat_bytes) \
            * self.clock.period_ps
        delivery_start = max(start + estimate.occupancy_ps,
                             self._resp_free_at_ps, first_data)
        done = delivery_start + (drain if txn.is_read else
                                 self.clock.period_ps)
        self._resp_free_at_ps = done
        self.resp_channel.add_busy(done - delivery_start)
        if txn.is_read:
            self.sim.timeout(first_data - now).add_callback(
                lambda _e, t=txn: self._mark_first_data(t))
        self.sim.timeout(done - now).add_callback(
            lambda _e, t=txn: t.complete(self.sim.now))

    def _mark_first_data(self, txn: Transaction) -> None:
        if txn.t_first_data is None:
            txn.t_first_data = self.sim.now
