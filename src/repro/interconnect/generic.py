"""The shared spec-driven fabric engine.

:class:`GenericFabric` is one timing model parameterised entirely by a
:class:`~repro.interconnect.protocols.ProtocolSpec`: request arbitration
and transfer costs, burst serialisation for single-beat protocols,
posted-write and split behaviour, packet-atomic vs interleaved response
streaming.  Wishbone, APB, AXI4-Lite, Avalon-MM and TileLink-UL are all
instances of this class — adding another protocol is a registry entry,
not a new fabric model (docs/PROTOCOLS.md walks through it).

The structure deliberately mirrors :class:`~repro.interconnect.stbus
.StbusNode` (request process + response process over the shared
:class:`~repro.interconnect.base.Fabric` port machinery), so devices,
bridges, monitors, the energy model and the snapshot encoder see the
same contracts they already handle.  The legacy fabrics keep their own
hand-written engines: their cycle behaviour is pinned by the golden
corpus and is not re-derived from specs.

Timing rules, all spec-driven:

request channel
    A granted transfer occupies ``setup_cycles`` + one cell per
    (width-adjusted) data beat for writes, or a single address cell for
    reads.  Single-beat protocols (``max_burst_beats == 1``) serialise a
    burst into one transfer per beat, each paying its own setup — the
    APB SETUP phase, the per-message TileLink A-channel cost.  Without
    split support the engine holds the fabric until the transaction
    fully completes (the Wishbone ``cyc`` envelope, the APB access).

response channel
    One width-adjusted cell per beat plus ``resp_overhead_cycles``
    handshake turnaround (classic Wishbone ack registration); write
    acknowledgements cost one cell.  ``response_interleave`` selects
    per-beat switching between packets; packet-atomic protocols only
    start a packet the prefetch FIFO can sustain, exactly like the
    STBus rule.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..core.clock import Clock
from ..core.component import Component
from ..core.kernel import Simulator
from .arbiter import Arbiter, MessageLockStall
from .base import Fabric, TargetPort
from .protocols import ProtocolSpec, get_spec
from .types import ResponseBeat, Transaction


class GenericFabric(Fabric):
    """One interconnect layer whose protocol semantics come from a spec."""

    def __init__(self, sim: Simulator, name: str, clock: Clock,
                 spec: ProtocolSpec,
                 data_width_bytes: int = 4,
                 arbiter: Optional[Arbiter] = None,
                 parent: Optional[Component] = None) -> None:
        if isinstance(spec, str):
            spec = get_spec(spec)
        if spec.engine != "generic":
            raise ValueError(
                f"{spec.name!r} is served by the hand-written {spec.engine!r}"
                f" engine, not GenericFabric")
        super().__init__(sim, name, clock, data_width_bytes=data_width_bytes,
                         arbiter=arbiter, parent=parent)
        self.spec = spec
        #: Instance attribute shadowing the class-level label: monitors,
        #: energy resolution and bridge plans all key on the spec name.
        self.protocol = spec.name
        self.req_channel = self.channel("request")
        self.resp_channel = self.channel("response")
        #: Extra transfers created by serialising bursts on single-beat
        #: protocols (zero on burst-capable specs).
        self.burst_segments = sim.metrics.counter(f"{name}.burst_segments")
        self.process(self._request_process(), name="req")
        self.process(self._response_process(), name="resp")

    # ------------------------------------------------------------------
    # request channel
    # ------------------------------------------------------------------
    def _transfers(self, txn: Transaction) -> int:
        """Bus transfers one transaction needs (burst serialisation)."""
        limit = self.spec.max_burst_beats
        if limit and txn.beats > limit:
            return -(-txn.beats // limit)
        return 1

    def request_cycles(self, txn: Transaction) -> int:
        """Request-channel occupancy of the whole (serialised) transfer."""
        spec = self.spec
        transfers = self._transfers(txn)
        if txn.is_read:
            # One address cell per transfer, plus per-transfer setup.
            return transfers * (spec.setup_cycles + 1)
        cells = txn.beats * self.bus_cycles_for_beat(txn.beat_bytes)
        return transfers * spec.setup_cycles + cells

    def _eligible_requests(self):
        """Grant candidates; split specs skip targets with no FIFO room
        (granting them would block the channel during target latency)."""
        candidates = self.request_candidates()
        if not self.spec.split:
            return candidates
        ready = []
        for port, txn in candidates:
            target = self.try_route(txn.address)
            # Unmapped addresses stay eligible: the grant becomes a
            # decode-error response (or a wiring error, per policy).
            if target is None or len(target.request_fifo._items) \
                    < target.request_fifo.capacity:
                ready.append((port, txn))
        return ready

    def _request_process(self):
        clk = self.clock
        lt = self._lt
        while True:
            candidates = self._eligible_requests()
            if not candidates:
                if any(p.pending._items for p in self.initiators):
                    if lt:
                        # LT: every decoded target is full — sleep until
                        # one drains instead of polling each cycle.
                        yield self._wait_request_work()
                        if not clk.at_edge():
                            yield clk.edge()
                    else:
                        yield clk.edge()
                else:
                    yield self._wait_request_work()
                continue
            try:
                port, txn = self.arbiter.select(candidates)
            except MessageLockStall:  # pragma: no cover - plain arbiters
                yield clk.edge()
                continue
            self.pop_granted(port, txn)
            yield from self._transfer_request(txn)

    def _transfer_request(self, txn: Transaction):
        clk = self.clock
        spec = self.spec
        target = self.try_route(txn.address)
        if target is None:
            yield clk.edges(1)  # the decode stage samples the address
            self.decode_failed(txn)
            return
        transfers = self._transfers(txn)
        if transfers > 1:
            self.burst_segments.add(transfers - 1)
        cycles = self.request_cycles(txn)
        target.notify_request_state("storing")
        yield clk.edges(cycles)
        self.req_channel.add_busy(clk.to_ps(cycles))
        is_posted = txn.is_write and txn.posted and spec.posted_writes
        txn.meta["needs_ack"] = txn.is_write and not is_posted
        if not (self._lt and target.request_fifo.try_put(txn)):
            yield target.request_fifo.put(txn)
        target.notify_request_state("idle")
        target.accepted.add()
        txn.mark_accepted(self.sim.now)
        if self._checks is not None:
            self._checks.note_accept(self, txn)
        if is_posted:
            txn.complete(self.sim.now)
        if not spec.split:
            # The handshake envelope (Wishbone cyc, APB access) holds the
            # fabric until the transaction fully completes.
            if not txn.ev_done.triggered:
                yield txn.ev_done

    # ------------------------------------------------------------------
    # response channel
    # ------------------------------------------------------------------
    def _response_process(self):
        clk = self.clock
        spec = self.spec
        current: Optional[Tuple[TargetPort, Transaction]] = None
        while True:
            beat = self._pick_beat(current)
            if beat is None:
                if current is not None:
                    # Packet atomicity: the in-flight packet's next beat
                    # is not buffered yet — the channel idles this cycle.
                    yield clk.edge()
                else:
                    yield self._wait_response_work()
                continue
            target, item = beat
            taken = target.response_fifo.try_get()
            if taken is not item:  # pragma: no cover - single consumer
                raise RuntimeError("response FIFO raced")
            if item.is_write_ack:
                cycles = 1
            else:
                cycles = (self.bus_cycles_for_beat(item.txn.beat_bytes)
                          + spec.resp_overhead_cycles)
            yield clk.edges(cycles)
            self.resp_channel.add_busy(clk.to_ps(cycles))
            self.deliver_beat(item)
            current = None if item.is_last else (target, item.txn)

    def _pick_beat(self, current):
        """Next response beat to forward (see ``StbusNode._pick_beat``)."""
        candidates = self.response_candidates()
        if current is not None:
            target, txn = current
            beats = target.response_fifo._items
            if beats and beats[0].txn is txn:
                return target, beats[0]
            if not self.spec.response_interleave:
                return None
            candidates = [(t, b) for t, b in candidates
                          if not (t is target and b.txn is txn)]
        elif not self.spec.response_interleave:
            candidates = [(t, b) for t, b in candidates
                          if self._packet_streamable(t, b)]
        if not candidates:
            return None
        return min(candidates, key=lambda cand: cand[0].name)

    @staticmethod
    def _packet_streamable(target: TargetPort, beat: ResponseBeat) -> bool:
        """Packet-atomic start rule: the prefetch FIFO must be able to
        sustain the packet (fully buffered, or full and draining)."""
        if beat.is_write_ack:
            return True
        remaining = beat.txn.beats - beat.index
        fifo = target.response_fifo
        return fifo.level >= min(remaining, fifo.capacity)

    # ------------------------------------------------------------------
    # checkpoint state
    # ------------------------------------------------------------------
    def snapshot_state(self, encoder):
        state = super().snapshot_state(encoder)
        state["protocol"] = self.spec.name
        state["burst_segments"] = self.burst_segments.value
        return state


__all__ = ["GenericFabric"]
