"""AMBA AHB layer model.

"The AMBA AHB system backbone consists of a shared communication channel ...
only one [data link] can be active at any time ... Transaction pipelining is
supported to provide for higher throughput but not as a means of allowing
multiple outstanding transactions ... the non-posted paradigm for write
transactions is implicitly assumed.  The SystemC model of the AHB
interconnect we developed does not implement split transactions."
(Section 3.2)

The model is therefore a *single* process that serves one transaction end to
end: grant, address phase, data phase(s), and — because there is no split
support — it holds the layer for the entire target latency, exposing every
wait state as an idle bus cycle.

The one optimisation AHB does have is captured too: address pipelining.
"AMBA AHB can hide bus handover overhead by changing the HGRANTx signals when
the penultimate address in a burst has been sampled" (Section 4.1.2), so
back-to-back transactions pay no handover cycle.  This is why the
many-to-one pattern is "the best operating condition for AMBA AHB".
"""

from __future__ import annotations

from typing import Optional

from ..core.clock import Clock
from ..core.component import Component
from ..core.kernel import Simulator
from .arbiter import Arbiter, MessageLockStall
from .base import Fabric
from .types import Transaction


class AhbLayer(Fabric):
    """A single AHB layer (shared bus, one active transfer at a time)."""

    protocol = "ahb"

    def __init__(self, sim: Simulator, name: str, clock: Clock,
                 data_width_bytes: int = 4,
                 arbiter: Optional[Arbiter] = None,
                 parent: Optional[Component] = None) -> None:
        super().__init__(sim, name, clock, data_width_bytes=data_width_bytes,
                         arbiter=arbiter, parent=parent)
        self.bus = self.channel("bus")
        #: Back-to-back transfers whose address phase overlapped the
        #: previous data phase (the AHB pipelining win, visible in stats).
        self.pipelined_handovers = sim.metrics.counter(
            f"{name}.pipelined_handovers")
        self.process(self._bus_process(), name="bus")

    def snapshot_state(self, encoder):
        state = super().snapshot_state(encoder)
        state["pipelined_handovers"] = self.pipelined_handovers.value
        return state

    def _bus_process(self):
        clk = self.clock
        pipelined = False  # True when the previous transfer just ended
        while True:
            candidates = self.request_candidates()
            if not candidates:
                pipelined = False  # the bus went idle; pipelining is lost
                yield self._wait_request_work()
                continue
            try:
                port, txn = self.arbiter.select(candidates)
            except MessageLockStall:
                yield clk.edge()
                continue
            self.pop_granted(port, txn)
            yield from self._serve(txn, pipelined)
            pipelined = True

    def _serve(self, txn: Transaction, pipelined: bool):
        """Drive one full transaction while holding the layer."""
        clk = self.clock
        target = self.try_route(txn.address)
        # Address phase: free when overlapped with the previous transfer's
        # final data beat (HGRANT raised at the penultimate address).
        if not pipelined:
            yield clk.edge()
            self.bus.add_busy(clk.period_ps, transfers=0)
        else:
            self.pipelined_handovers.add()
        if target is None:
            # The decoder's default slave responds with an HRESP error.
            yield clk.edge()
            self.decode_failed(txn)
            return
        txn.meta["needs_ack"] = txn.is_write  # non-posted paradigm
        target.notify_request_state("storing")
        if txn.is_write:
            # Write data is driven on the (single) data link, one
            # width-adjusted cycle per beat, before the target commits it.
            data_cycles = txn.beats * self.bus_cycles_for_beat(txn.beat_bytes)
            yield clk.edges(data_cycles)
            self.bus.add_busy(clk.to_ps(data_cycles), transfers=txn.beats)
        # Hand the transaction to the target; a full target FIFO shows up as
        # slave wait states that stall the whole layer.
        yield target.request_fifo.put(txn)
        target.notify_request_state("idle")
        target.accepted.add()
        txn.mark_accepted(self.sim.now)
        if self._checks is not None:
            self._checks.note_accept(self, txn)
        # No split support: hold the layer until every response beat (read
        # data or write acknowledgement) has been received.
        while True:
            beat = None
            if not target.response_fifo.is_empty:
                head = target.response_fifo.peek()
                if head.txn is txn:
                    beat = target.response_fifo.try_get()
                else:  # pragma: no cover - serial layer, single txn in flight
                    raise RuntimeError(
                        f"AHB {self.name}: foreign beat {head!r} during {txn!r}")
            if beat is None:
                # Slave wait state: the layer idles but stays held.
                yield clk.edge()
                continue
            cycles = self.bus_cycles_for_beat(txn.beat_bytes)
            if beat.is_write_ack:
                cycles = 1
            yield clk.edges(cycles)
            self.bus.add_busy(clk.to_ps(cycles))
            self.deliver_beat(beat)
            if beat.is_last:
                break
