"""Arbitration policies.

"The resource sharing mechanism of the communication architecture is the
focus of many works" — the paper's related-work section lists priority-based
policies, TDMA, token passing and lottery-style bandwidth allocation, and the
platform itself uses *message-based* arbitration in STBus nodes ("packets are
grouped in messages and arbitration rounds in the nodes occur at the message
granularity") to generate memory-controller-friendly traffic.

All arbiters share one tiny interface: :meth:`Arbiter.select` receives the
list of current candidates as ``(source_key, transaction)`` pairs and returns
the winning pair.  Arbiters may keep state (round-robin pointers, message
locks) that is updated by the call itself.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

from .types import Transaction

#: A request candidate: (source key, transaction at the head of its queue).
Candidate = Tuple[object, Transaction]


class Arbiter:
    """Base class; subclasses implement :meth:`select`."""

    def select(self, candidates: Sequence[Candidate]) -> Candidate:
        raise NotImplementedError

    def _require(self, candidates: Sequence[Candidate]) -> None:
        if not candidates:
            raise ValueError("arbitration requested with no candidates")


class FixedPriority(Arbiter):
    """Grant the candidate with the highest transaction priority.

    Ties break on the order sources were connected (their key order in the
    candidate list), which models hard-wired priority inputs.
    """

    def select(self, candidates: Sequence[Candidate]) -> Candidate:
        self._require(candidates)
        best = candidates[0]
        for candidate in candidates[1:]:
            if candidate[1].priority > best[1].priority:
                best = candidate
        return best


class RoundRobin(Arbiter):
    """Classic rotating-priority arbiter.

    The source granted last becomes the lowest priority for the next round.
    Sources are tracked by key, so the arbiter tolerates sources appearing
    and disappearing between rounds.
    """

    def __init__(self) -> None:
        self._order: List[object] = []

    def select(self, candidates: Sequence[Candidate]) -> Candidate:
        self._require(candidates)
        for key, _txn in candidates:
            if key not in self._order:
                self._order.append(key)
        by_key: Dict[object, Candidate] = {key: cand for key, cand in
                                           ((c[0], c) for c in candidates)}
        for key in self._order:
            if key in by_key:
                winner = by_key[key]
                self._order.remove(key)
                self._order.append(key)
                return winner
        # Unreachable: every candidate key was added to _order above.
        raise AssertionError("round-robin bookkeeping out of sync")


class LeastRecentlyGranted(Arbiter):
    """Grant the source that has waited longest since its last grant."""

    def __init__(self) -> None:
        self._last_grant: Dict[object, int] = {}
        self._tick = 0

    def select(self, candidates: Sequence[Candidate]) -> Candidate:
        self._require(candidates)
        winner = min(candidates,
                     key=lambda cand: self._last_grant.get(cand[0], -1))
        self._tick += 1
        self._last_grant[winner[0]] = self._tick
        return winner


class WeightedLottery(Arbiter):
    """Lottery-style probabilistic bandwidth allocation (LOTTERYBUS [1]).

    Each source holds a configurable number of tickets; a seeded RNG makes
    runs reproducible.  Unknown sources get ``default_tickets``.
    """

    def __init__(self, tickets: Optional[Dict[object, int]] = None,
                 default_tickets: int = 1, seed: int = 1) -> None:
        if default_tickets < 1:
            raise ValueError("default_tickets must be >= 1")
        self.tickets = dict(tickets or {})
        self.default_tickets = default_tickets
        self._rng = random.Random(seed)

    def select(self, candidates: Sequence[Candidate]) -> Candidate:
        self._require(candidates)
        weights = [max(1, self.tickets.get(key, self.default_tickets))
                   for key, _txn in candidates]
        total = sum(weights)
        draw = self._rng.randrange(total)
        for candidate, weight in zip(candidates, weights):
            draw -= weight
            if draw < 0:
                return candidate
        return candidates[-1]  # pragma: no cover - float-free, unreachable


class MessageArbiter(Arbiter):
    """Message-granularity wrapper around any inner policy.

    Once a source wins with a packet that belongs to a multi-packet message
    (``message_id`` set, ``message_last`` clear), the arbiter stays *locked*
    to that source until the message's final packet has been granted.  This
    keeps optimisable access sequences together all the way to the memory
    controller, exactly as the platform's STBus nodes do.

    If the locked source temporarily has nothing to offer, the lock holds and
    other candidates wait (the node idles), which is the conservative
    interpretation of message atomicity; :attr:`release_when_absent` relaxes
    this for ablation studies.
    """

    def __init__(self, inner: Optional[Arbiter] = None,
                 release_when_absent: bool = False) -> None:
        self.inner = inner if inner is not None else RoundRobin()
        self.release_when_absent = release_when_absent
        self._locked_key: Optional[object] = None
        self._locked_message: Optional[int] = None

    @property
    def locked(self) -> bool:
        """True while a message lock is in force."""
        return self._locked_key is not None

    def break_lock(self) -> None:
        """Forcibly release the message lock.

        Real nodes bound how long a message may hold the bus; fabrics call
        this after a configurable number of stalled arbitration rounds so a
        delayed packet can never wedge the node.
        """
        self._locked_key = None
        self._locked_message = None

    def select(self, candidates: Sequence[Candidate]) -> Candidate:
        self._require(candidates)
        if self._locked_key is not None:
            for candidate in candidates:
                key, txn = candidate
                if key == self._locked_key and txn.message_id == self._locked_message:
                    self._update_lock(candidate)
                    return candidate
            if not self.release_when_absent:
                # Nothing from the locked source: report "no grant" by raising
                # a dedicated signal the caller turns into an idle cycle.
                raise MessageLockStall(self._locked_key)
            self._locked_key = None
            self._locked_message = None
        winner = self.inner.select(candidates)
        self._update_lock(winner)
        return winner

    def _update_lock(self, winner: Candidate) -> None:
        _key, txn = winner
        if txn.message_id is not None and not txn.message_last:
            self._locked_key = winner[0]
            self._locked_message = txn.message_id
        else:
            self._locked_key = None
            self._locked_message = None


class MessageLockStall(Exception):
    """Raised by :class:`MessageArbiter` when the locked source is absent.

    Fabric request-channel processes catch this and idle for a cycle.
    """

    def __init__(self, locked_key: object) -> None:
        super().__init__(f"message lock held by {locked_key!r}")
        self.locked_key = locked_key


def make_arbiter(policy: str, **kwargs) -> Arbiter:
    """Factory keyed by policy name (used by platform configuration files).

    ``policy`` may carry a ``message:`` prefix to wrap the base policy in a
    :class:`MessageArbiter`, e.g. ``"message:round_robin"``.
    """
    wrapped = False
    if policy.startswith("message:"):
        wrapped = True
        policy = policy[len("message:"):]
    makers = {
        "fixed_priority": FixedPriority,
        "round_robin": RoundRobin,
        "lru": LeastRecentlyGranted,
        "lottery": WeightedLottery,
    }
    if policy not in makers:
        raise ValueError(f"unknown arbitration policy {policy!r}; "
                         f"choose from {sorted(makers)}")
    arbiter = makers[policy](**kwargs)
    if wrapped:
        arbiter = MessageArbiter(arbiter)
    return arbiter
