"""STBus packet/opcode level protocol details.

The behavioural node model in :mod:`repro.interconnect.stbus` times
*transactions*; this module captures the layer below — the operation
encoding and request/response packet composition the STBus specification
defines — and the node derives its channel occupancies from it, so the
cycle counts used throughout the platform are grounded in actual packet
structure rather than ad-hoc constants.

STBus operations are sized loads/stores (LD1...LD64 / ST1...ST64, the
size in bytes).  A *request packet* is a sequence of cells on the request
channel: loads need a single address/opcode cell regardless of size;
stores carry their data, one cell per bus-width chunk.  A *response
packet* carries one data cell per bus-width chunk for loads and a single
acknowledge cell for (non-posted) stores.  Type 3 additionally allows
*shaped* packets — per-cell byte enables so a packet touches only the
lanes it needs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Tuple

from .types import Opcode, Transaction

#: Operation sizes (bytes) the STBus opcode repertoire encodes.
VALID_SIZES = (1, 2, 4, 8, 16, 32, 64)


class StbusOpcode(enum.Enum):
    """The sized load/store opcode repertoire."""

    LD1 = ("load", 1)
    LD2 = ("load", 2)
    LD4 = ("load", 4)
    LD8 = ("load", 8)
    LD16 = ("load", 16)
    LD32 = ("load", 32)
    LD64 = ("load", 64)
    ST1 = ("store", 1)
    ST2 = ("store", 2)
    ST4 = ("store", 4)
    ST8 = ("store", 8)
    ST16 = ("store", 16)
    ST32 = ("store", 32)
    ST64 = ("store", 64)

    @property
    def is_load(self) -> bool:
        return self.value[0] == "load"

    @property
    def size_bytes(self) -> int:
        return self.value[1]

    @classmethod
    def encode(cls, is_load: bool, size_bytes: int) -> "StbusOpcode":
        """The opcode for one operation of ``size_bytes``."""
        if size_bytes not in VALID_SIZES:
            raise ValueError(
                f"no STBus opcode for size {size_bytes}; "
                f"valid sizes: {VALID_SIZES}")
        prefix = "LD" if is_load else "ST"
        return cls[f"{prefix}{size_bytes}"]


def operations_for(txn: Transaction) -> List[Tuple[StbusOpcode, int]]:
    """Decompose a transaction into sized STBus operations.

    Each burst beat becomes one operation of the beat size; the result is
    a list of ``(opcode, address)`` pairs.  (A smarter encoder could fuse
    beats into larger opcodes — that is exactly the *opcode merging* the
    LMI performs downstream, which is why the generators do not.)
    """
    opcode = StbusOpcode.encode(txn.is_read, txn.beat_bytes)
    return [(opcode, txn.address + i * txn.beat_bytes)
            for i in range(txn.beats)]


@dataclass(frozen=True)
class RequestPacket:
    """The request-channel footprint of one transaction."""

    opcode: StbusOpcode
    address: int
    #: Cells on the request channel (1 for loads; data cells for stores).
    cells: int
    #: Source label (Type >= 2): lets targets route responses back.
    source: str = ""
    #: Priority label (Type >= 2).
    priority: int = 0
    #: Shaped packet (Type 3): byte enables restrict active lanes.
    shaped: bool = False

    def __post_init__(self) -> None:
        if self.cells < 1:
            raise ValueError("a packet has at least one cell")


@dataclass(frozen=True)
class ResponsePacket:
    """The response-channel footprint of one transaction."""

    opcode: StbusOpcode
    cells: int
    shaped: bool = False

    def __post_init__(self) -> None:
        if self.cells < 1:
            raise ValueError("a packet has at least one cell")


def _chunks(total_bytes: int, bus_width_bytes: int) -> int:
    return max(1, -(-total_bytes // bus_width_bytes))


def request_packet(txn: Transaction, bus_width_bytes: int,
                   shaped: bool = False) -> RequestPacket:
    """Compose the request packet of ``txn`` on a bus of the given width."""
    opcode = StbusOpcode.encode(txn.is_read, txn.beat_bytes)
    if txn.is_read:
        cells = 1  # a single opcode/address cell requests the whole burst
    else:
        cells = _chunks(txn.total_bytes, bus_width_bytes)
    return RequestPacket(opcode=opcode, address=txn.address, cells=cells,
                         source=txn.initiator, priority=txn.priority,
                         shaped=shaped)


def response_packet(txn: Transaction, bus_width_bytes: int,
                    shaped: bool = False) -> ResponsePacket:
    """Compose the response packet of ``txn`` on a bus of the given width."""
    opcode = StbusOpcode.encode(txn.is_read, txn.beat_bytes)
    if txn.is_read:
        cells = _chunks(txn.total_bytes, bus_width_bytes)
    else:
        cells = 1  # store acknowledge
    return ResponsePacket(opcode=opcode, cells=cells, shaped=shaped)
