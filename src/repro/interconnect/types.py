"""Transactions, bursts, messages and address ranges.

These are the protocol-neutral data carriers exchanged between initiators,
interconnect fabrics, bridges and targets.  Each fabric imposes its own
*timing* on them; the carriers themselves only hold payload description and
bookkeeping (timestamps, completion events) used by the statistics system.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from ..core.events import Event
from ..core.kernel import Simulator

_txn_ids = itertools.count(1)


class Opcode(enum.Enum):
    """Transaction direction.

    STBus opcodes additionally encode the size (LD4/LD8/.../ST32...); we keep
    the size in :attr:`Transaction.beats` x :attr:`Transaction.beat_bytes`
    and only distinguish direction, which is what the timing models need.
    """

    READ = "read"
    WRITE = "write"


class ProtocolKind(enum.Enum):
    """The communication protocol family a port speaks.

    The authoritative per-protocol semantics live in the declarative
    registry (:mod:`repro.interconnect.protocols`); this enum only tags
    the coarse families used by legacy call sites.
    """

    STBUS = "stbus"
    AHB = "ahb"
    AXI = "axi"
    WISHBONE = "wishbone"
    APB = "apb"
    AXI4LITE = "axi4lite"
    AVALON = "avalon"
    TILELINK = "tilelink"


class StbusType(enum.IntEnum):
    """STBus protocol types, in increasing order of capability.

    * ``T1`` — low cost, no split/pipelining.
    * ``T2`` — compound operations, source/priority labels, posted writes,
      full split and pipelined transaction support.
    * ``T3`` — adds shaped request/response packets and out-of-order support.
    """

    T1 = 1
    T2 = 2
    T3 = 3


@dataclass(frozen=True)
class AddressRange:
    """A decoded slave address window ``[base, base + size)``."""

    base: int
    size: int

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError(f"address range size must be positive: {self.size}")
        if self.base < 0:
            raise ValueError(f"negative base address {self.base:#x}")

    @property
    def end(self) -> int:
        """First address past the window."""
        return self.base + self.size

    def contains(self, address: int) -> bool:
        return self.base <= address < self.end

    def overlaps(self, other: "AddressRange") -> bool:
        return self.base < other.end and other.base < self.end

    def __repr__(self) -> str:
        return f"AddressRange({self.base:#x}..{self.end:#x})"


@dataclass
class Transaction:
    """One bus transaction (a burst of ``beats`` data beats).

    A transaction is created by an initiator, routed by one or more fabrics
    (possibly crossing bridges, which re-issue a child transaction on the far
    side), served by a target, and completed back at the initiator.

    Timestamps are recorded by whoever performs the step; ``None`` means the
    step has not happened (yet).  All times are kernel picoseconds.
    """

    initiator: str
    opcode: Opcode
    address: int
    beats: int
    beat_bytes: int = 4
    priority: int = 0
    posted: bool = False
    #: Message grouping for STBus message-based arbitration: packets of the
    #: same message are kept together through arbitration rounds.
    message_id: Optional[int] = None
    message_last: bool = True
    tid: int = field(default_factory=lambda: next(_txn_ids))
    #: Free-form per-layer annotations (bridge routing, cache info, ...).
    meta: Dict[str, Any] = field(default_factory=dict)
    #: Set when the transaction completed with a bus error (decode error,
    #: target fault).  The transaction still *completes* — error responses
    #: travel the same response path as data (STBus r_opc semantics).
    error: bool = False

    # -- timestamps (ps) ------------------------------------------------
    t_created: Optional[int] = None
    t_issued: Optional[int] = None
    t_granted: Optional[int] = None
    t_accepted: Optional[int] = None
    t_first_data: Optional[int] = None
    t_done: Optional[int] = None

    # -- completion plumbing --------------------------------------------
    ev_accepted: Optional[Event] = None
    ev_done: Optional[Event] = None

    def __post_init__(self) -> None:
        if self.beats < 1:
            raise ValueError(f"burst must have >= 1 beat, got {self.beats}")
        if self.beat_bytes not in (1, 2, 4, 8, 16, 32):
            raise ValueError(f"unsupported beat width {self.beat_bytes} bytes")
        if self.address < 0:
            raise ValueError(f"negative address {self.address:#x}")

    # ------------------------------------------------------------------
    @property
    def is_read(self) -> bool:
        return self.opcode is Opcode.READ

    @property
    def is_write(self) -> bool:
        return self.opcode is Opcode.WRITE

    @property
    def total_bytes(self) -> int:
        return self.beats * self.beat_bytes

    @property
    def end_address(self) -> int:
        return self.address + self.total_bytes

    def bind(self, sim: Simulator) -> "Transaction":
        """Attach completion events and stamp creation time.

        Called exactly once, by the initiator-side port when the transaction
        enters the system.
        """
        if self.ev_done is not None:
            raise RuntimeError(f"transaction {self.tid} already bound")
        self.t_created = sim.now
        self.ev_accepted = Event(sim, name=f"txn{self.tid}.accepted")
        self.ev_done = Event(sim, name=f"txn{self.tid}.done")
        spans = sim._spans
        if spans is not None:
            spans.register(self)
        return self

    def mark_accepted(self, time_ps: int) -> None:
        """Record acceptance by the fabric/target and release the issuer."""
        if self.t_accepted is None:
            self.t_accepted = time_ps
        event = self.ev_accepted
        if event is not None and not event.triggered:
            if event.sim.lt_enabled:
                event.succeed_inline(self)
            else:
                event.succeed(self)

    def complete(self, time_ps: int) -> None:
        """Record completion and wake whoever waits on ``ev_done``."""
        self.t_done = time_ps
        event = self.ev_done
        if event is not None and not event.triggered:
            if event.sim.lt_enabled:
                event.succeed_inline(self)
            else:
                event.succeed(self)

    def complete_with_error(self, time_ps: int) -> None:
        """Complete the transaction as failed (bus error response)."""
        self.error = True
        self.complete(time_ps)

    @property
    def latency_ps(self) -> Optional[int]:
        """End-to-end latency, once complete."""
        if self.t_done is None or self.t_created is None:
            return None
        return self.t_done - self.t_created

    def child(self, **overrides: Any) -> "Transaction":
        """A derived transaction for re-issue on the far side of a bridge.

        The child shares payload description but gets fresh events and id;
        ``meta['parent']`` points back for statistics correlation.
        """
        fields = dict(
            initiator=self.initiator,
            opcode=self.opcode,
            address=self.address,
            beats=self.beats,
            beat_bytes=self.beat_bytes,
            priority=self.priority,
            posted=self.posted,
            message_id=self.message_id,
            message_last=self.message_last,
        )
        fields.update(overrides)
        kid = Transaction(**fields)
        kid.meta["parent"] = self
        return kid

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Txn {self.tid} {self.opcode.value} {self.initiator} "
                f"@{self.address:#x} x{self.beats}b{self.beat_bytes}>")


@dataclass
class ResponseBeat:
    """One beat of response data travelling target -> initiator.

    Targets emit these into their response FIFOs as data becomes available;
    fabric response channels forward them, one bus cycle each.  For writes
    that need confirmation (non-posted), a single beat with ``index == -1``
    carries the write acknowledgement.  ``error`` marks an error response
    cell (the initiator's transaction completes failed).
    """

    txn: Transaction
    index: int
    is_last: bool
    error: bool = False

    @property
    def is_write_ack(self) -> bool:
        return self.index == -1


def make_message(sim: Simulator, initiator: str, opcode: Opcode, address: int,
                 packets: int, beats: int, beat_bytes: int = 4,
                 priority: int = 0, posted: bool = False) -> list:
    """Build a *message*: a list of packets arbitration should keep together.

    STBus nodes arbitrate at message granularity so that sequences which the
    memory controller can optimise (e.g. consecutive bursts of a DMA stream)
    reach it without interleaving.  All packets share a ``message_id``; only
    the final one has ``message_last`` set.
    """
    if packets < 1:
        raise ValueError(f"message needs >= 1 packet, got {packets}")
    message_id = next(_txn_ids)
    txns = []
    for i in range(packets):
        txn = Transaction(
            initiator=initiator,
            opcode=opcode,
            address=address + i * beats * beat_bytes,
            beats=beats,
            beat_bytes=beat_bytes,
            priority=priority,
            posted=posted,
            message_id=message_id,
            message_last=(i == packets - 1),
        )
        txn.bind(sim)
        txns.append(txn)
    return txns
