"""STBus crossbar node.

The paper sizes bridges against "an STBus node with 5x3 crossbar topology
at 64 bits": STBus nodes are configurable from shared-bus to full crossbar.
:class:`~repro.interconnect.stbus.StbusNode` models the shared-bus
instance (one request + one response channel); this class models the
crossbar instance — per-target request paths and per-initiator response
lanes, so independent initiator->target flows proceed concurrently.

In the many-to-one, memory-centric scenario a crossbar buys nothing (one
target = one request path); in many-to-many it removes the shared-channel
contention that Section 4.1.1 charges against the shared-bus STBus —
which is exactly why video-processor-class SoCs with many embedded
memories deploy crossbars.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..core.clock import Clock
from ..core.component import Component
from ..core.kernel import Simulator
from ..core.sync import Semaphore, WorkSignal
from .arbiter import Arbiter, MessageArbiter, MessageLockStall, RoundRobin
from .base import Fabric, TargetPort
from .stbus import StbusNode
from .types import StbusType, Transaction


class StbusCrossbar(StbusNode):
    """Full-crossbar STBus node.

    Inherits the protocol-type feature gates (split support, posted
    writes, response shaping) from :class:`StbusNode` and replaces the two
    shared channel processes with:

    * one request engine per target — initiators contending for *different*
      targets are served in parallel;
    * one response relay per target, serialised per *initiator lane* — two
      targets can stream to two initiators simultaneously, but a single
      initiator still receives one beat per cycle.
    """

    protocol = "stbus-xbar"

    def __init__(self, sim: Simulator, name: str, clock: Clock,
                 data_width_bytes: int = 4,
                 bus_type: StbusType = StbusType.T3,
                 arbiter: Optional[Arbiter] = None,
                 message_arbitration: bool = True,
                 parent: Optional[Component] = None) -> None:
        # Skip StbusNode.__init__ (it spawns the shared-bus processes);
        # initialise the Fabric base directly, then add crossbar state.
        Fabric.__init__(self, sim, name, clock,
                        data_width_bytes=data_width_bytes,
                        arbiter=arbiter, parent=parent)
        self.bus_type = StbusType(bus_type)
        self._message_arbitration = message_arbitration
        self.req_channel = self.channel("request")   # aggregate accounting
        self.resp_channel = self.channel("response")
        self._target_arbiters: Dict[str, Arbiter] = {}
        self._lanes: Dict[str, Semaphore] = {}
        self.lock_breaks = sim.metrics.counter(f"{name}.lock_breaks")
        self.process(self._decode_guard(), name="decode_guard")

    def snapshot_state(self, encoder):
        state = super().snapshot_state(encoder)
        state["target_arbiters"] = {
            name: encoder.arbiter(arbiter)
            for name, arbiter in self._target_arbiters.items()}
        state["lanes"] = {name: lane.available
                          for name, lane in self._lanes.items()}
        return state

    # ------------------------------------------------------------------
    def add_target(self, name: str, address_range, request_depth: int = 1,
                   response_depth: int = 2) -> TargetPort:
        port = super().add_target(name, address_range,
                                  request_depth=request_depth,
                                  response_depth=response_depth)
        arbiter: Arbiter = RoundRobin()
        if self._message_arbitration:
            arbiter = MessageArbiter(arbiter)
        self._target_arbiters[name] = arbiter
        self.process(self._request_engine(port, arbiter),
                     name=f"req[{name}]")
        self.process(self._response_engine(port), name=f"resp[{name}]")
        return port

    def _lane(self, initiator: str) -> Semaphore:
        if initiator not in self._lanes:
            self._lanes[initiator] = Semaphore(self.sim, 1,
                                               name=f"lane.{initiator}")
        return self._lanes[initiator]

    def _decode_guard(self):
        """Catch unmapped-address heads no target engine will ever claim."""
        clk = self.clock
        while True:
            handled = False
            for ip in self.initiators:
                if ip.pending.is_empty:
                    continue
                txn = ip.pending.peek()
                if self.try_route(txn.address) is None:
                    self.pop_granted(ip, txn)
                    yield clk.edges(1)
                    self.decode_failed(txn)
                    handled = True
            if not handled:
                yield self._wait_request_work()

    # ------------------------------------------------------------------
    # per-target request engine
    # ------------------------------------------------------------------
    def _candidates_for_target(self, port: TargetPort):
        out = []
        for ip in self.initiators:
            if ip.pending.is_empty:
                continue
            txn = ip.pending.peek()
            if self.try_route(txn.address) is port:
                out.append((ip, txn))
        return out

    def _has_any_for_target(self, port: TargetPort) -> bool:
        return bool(self._candidates_for_target(port))

    def _request_engine(self, port: TargetPort, arbiter: Arbiter):
        clk = self.clock
        stalled = 0
        while True:
            candidates = self._candidates_for_target(port)
            if not candidates or (self.supports_split
                                  and port.request_fifo.is_full):
                if candidates:
                    yield clk.edge()  # backpressured: poll
                else:
                    yield self._wait_request_work()
                continue
            try:
                ip, txn = arbiter.select(candidates)
            except MessageLockStall:
                stalled += 1
                if (stalled >= self.MAX_LOCK_STALL_ROUNDS
                        and isinstance(arbiter, MessageArbiter)):
                    arbiter.break_lock()
                    self.lock_breaks.add()
                yield clk.edge()
                continue
            stalled = 0
            self.pop_granted(ip, txn)
            yield from self._transfer_to(port, txn)

    def _transfer_to(self, port: TargetPort, txn: Transaction):
        clk = self.clock
        cycles = self.request_cycles(txn)
        port.notify_request_state("storing")
        yield clk.edges(cycles)
        self.req_channel.add_busy(clk.to_ps(cycles))
        is_posted = txn.is_write and txn.posted and self.posted_writes
        txn.meta["needs_ack"] = txn.is_write and not is_posted
        yield port.request_fifo.put(txn)
        port.notify_request_state("idle")
        port.accepted.add()
        txn.mark_accepted(self.sim.now)
        if is_posted:
            txn.complete(self.sim.now)
        if not self.supports_split and not txn.ev_done.triggered:
            yield txn.ev_done

    # ------------------------------------------------------------------
    # per-target response relay (serialised per initiator lane)
    # ------------------------------------------------------------------
    def _response_engine(self, port: TargetPort):
        clk = self.clock
        while True:
            beat = yield port.response_fifo.get()
            lane = self._lane(beat.txn.initiator)
            yield lane.acquire()
            cycles = self.bus_cycles_for_beat(beat.txn.beat_bytes)
            if beat.is_write_ack:
                cycles = 1
            yield clk.edges(cycles)
            self.resp_channel.add_busy(clk.to_ps(cycles))
            self.deliver_beat(beat)
            lane.release()

    # The shared-bus response picker is not used by the crossbar.
    def _pick_beat(self, current):  # pragma: no cover - defensive
        raise NotImplementedError("crossbar uses per-target response engines")
