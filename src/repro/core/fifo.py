"""FIFO queues — the universal buffering primitive of the platform model.

Every buffering resource the paper talks about is one of these: the prefetch
FIFOs at STBus target interfaces, the request/response queues inside bridges
(the "asynchronous FIFOs" of Fig. 2), and the input/output FIFOs of the LMI
memory controller whose occupancy Fig. 6 dissects.

Two flavours:

:class:`Fifo`
    Zero-latency bounded queue with blocking ``put``/``get`` events.  All
    *timing* is imposed by the surrounding processes (which pace themselves
    with clock edges); the FIFO only models capacity and ordering.

:class:`CdcFifo`
    A clock-domain-crossing FIFO: items become visible to the reader only
    ``latency_ps`` after they were written, modelling synchroniser delay in
    bridges between clock domains.

Both emit level-change notifications so the statistics system can integrate
occupancy over time without per-cycle sampling.
"""

from __future__ import annotations

from collections import deque
from heapq import heappush
from typing import Any, Callable, Deque, Generic, List, Optional, Tuple, TypeVar

from .events import Event, PRIORITY_NORMAL, completed_event
from .kernel import Simulator

T = TypeVar("T")

#: Signature of a level watcher: ``fn(time_ps, old_level, new_level)``.
LevelWatcher = Callable[[int, int, int], None]


class Fifo(Generic[T]):
    """Bounded FIFO with blocking, event-based access.

    ``put(item)`` returns an event that triggers once the item has been
    accepted; ``get()`` returns an event that triggers with the item.  Both
    complete immediately (at the current simulation time) when possible.
    Waiters are served strictly in arrival order, so the queue discipline is
    fair and deterministic.
    """

    def __init__(self, sim: Simulator, capacity: int, name: str = "fifo") -> None:
        if capacity < 1:
            raise ValueError(f"FIFO capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.name = name
        self.capacity = capacity
        # Precomputed event labels keep f-strings out of put()/get().
        self._put_name = name + ".put"
        self._get_name = name + ".get"
        self._items: Deque[T] = deque()
        self._put_waiters: Deque[Tuple[Event, T]] = deque()
        self._get_waiters: Deque[Event] = deque()
        self._watchers: List[LevelWatcher] = []
        # Occupancy accounting (time-weighted) -------------------------
        self._last_change_ps = sim.now
        self._level_time: dict = {}
        #: Highest occupancy ever reached (even transiently within one
        #: timestamp, which the time-weighted histogram cannot see).
        self.high_water = 0
        #: Loosely-timed flag, captured once (select-once discipline).
        self._lt = sim.lt_enabled
        #: Invariant checker, captured once at construction (select-once
        #: discipline; ``None`` outside a ``repro.check.checked()`` session).
        self._checks = getattr(sim, "_checks", None)
        if self._checks is not None:
            self._checks.register_fifo(self)

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def level(self) -> int:
        """Number of items currently stored."""
        return len(self._items)

    @property
    def is_empty(self) -> bool:
        return not self._items

    @property
    def is_full(self) -> bool:
        return len(self._items) >= self.capacity

    @property
    def free(self) -> int:
        """Number of free slots."""
        return self.capacity - len(self._items)

    def peek(self) -> T:
        """The item ``get`` would return next (FIFO is not modified)."""
        if not self._items:
            raise LookupError(f"peek() on empty FIFO {self.name!r}")
        return self._items[0]

    def snapshot(self) -> Tuple[T, ...]:
        """A copy of the stored items, head first.

        The LMI optimisation engine uses this for *lookahead* over queued
        transactions without consuming them.
        """
        return tuple(self._items)

    # ------------------------------------------------------------------
    # blocking access
    # ------------------------------------------------------------------
    def put(self, item: T) -> Event:
        """Event completing once ``item`` is stored."""
        sim = self.sim
        if len(self._items) < self.capacity and not self._put_waiters:
            if self._lt:
                # LT: immediate acceptance costs no scheduled event.
                self._store(item)
                return completed_event(sim, name=self._put_name)
            event = Event(sim, name=self._put_name)
            self._store(item)
            # Inlined event.succeed(): the event is fresh, so the
            # double-trigger guard cannot fire; mirror kernel._enqueue.
            event._value = None
            sim._sequence = sequence = sim._sequence + 1
            heappush(sim._queue, (sim._now, PRIORITY_NORMAL, sequence, event))
            return event
        event = Event(sim, name=self._put_name)
        self._put_waiters.append((event, item))
        return event

    def get(self) -> Event:
        """Event completing with the next item."""
        sim = self.sim
        if self._items:
            if self._lt:
                return completed_event(sim, self._take(), name=self._get_name)
            event = Event(sim, name=self._get_name)
            event._value = self._take()
            sim._sequence = sequence = sim._sequence + 1
            heappush(sim._queue, (sim._now, PRIORITY_NORMAL, sequence, event))
            return event
        event = Event(sim, name=self._get_name)
        self._get_waiters.append(event)
        return event

    # ------------------------------------------------------------------
    # non-blocking access
    # ------------------------------------------------------------------
    def try_put(self, item: T) -> bool:
        """Store ``item`` if space is available right now; report success."""
        if self.is_full or self._put_waiters:
            return False
        self._store(item)
        return True

    def try_get(self) -> Optional[T]:
        """Take the next item if one is available right now, else ``None``."""
        if not self._items:
            return None
        return self._take()

    def remove(self, item: T) -> None:
        """Remove a specific stored item (out-of-order extraction).

        The LMI optimisation engine pulls row-hit transactions out of the
        middle of its input FIFO; STBus Type-3 targets may likewise retire
        shaped packets out of order.
        """
        before = len(self._items)
        self._items.remove(item)  # raises ValueError when absent
        self._level_changed(before)
        self._admit_waiting_puts()

    # ------------------------------------------------------------------
    # telemetry
    # ------------------------------------------------------------------
    def watch(self, fn: LevelWatcher) -> None:
        """Call ``fn(time_ps, old_level, new_level)`` on every level change."""
        self._watchers.append(fn)

    def occupancy_histogram(self, until_ps: Optional[int] = None) -> dict:
        """Time spent (ps) at each occupancy level, including the open
        interval up to ``until_ps`` (default: now)."""
        if until_ps is None:
            until_ps = self.sim.now
        hist = dict(self._level_time)
        open_span = until_ps - self._last_change_ps
        if open_span > 0:
            hist[self.level] = hist.get(self.level, 0) + open_span
        return hist

    def mean_occupancy(self, until_ps: Optional[int] = None) -> float:
        """Time-weighted mean number of stored items."""
        hist = self.occupancy_histogram(until_ps)
        total = sum(hist.values())
        if total == 0:
            return float(self.level)
        return sum(level * span for level, span in hist.items()) / total

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _store(self, item: T) -> None:
        items = self._items
        before = len(items)
        if before >= self.capacity:
            self._bounds_violation("overflow", before)
        items.append(item)
        if before >= self.high_water:
            self.high_water = before + 1
        # Inlined _level_changed(): store/take run twice per transferred
        # item, so the accounting is flattened and the (usually empty)
        # waiter scans are guarded instead of unconditionally called.
        now = self.sim._now
        span = now - self._last_change_ps
        if span > 0:
            level_time = self._level_time
            level_time[before] = level_time.get(before, 0) + span
            self._last_change_ps = now
        if self._watchers:
            for fn in self._watchers:
                fn(now, before, len(items))
        if self._get_waiters:
            self._serve_waiting_gets()

    def _take(self) -> T:
        items = self._items
        before = len(items)
        if not items:
            self._bounds_violation("underflow", 0)
        item = items.popleft()
        now = self.sim._now
        span = now - self._last_change_ps
        if span > 0:
            level_time = self._level_time
            level_time[before] = level_time.get(before, 0) + span
            self._last_change_ps = now
        if self._watchers:
            for fn in self._watchers:
                fn(now, before, len(items))
        if self._put_waiters:
            self._admit_waiting_puts()
        return item

    def _bounds_violation(self, kind: str, level: int) -> None:
        """Cold path: an occupancy bound was broken.  The public API makes
        this unreachable (``put``/``get`` block first), so a hit means a
        caller bypassed the blocking discipline — report it with the
        component path and simulation time instead of a bare assertion."""
        from ..check.violations import InvariantViolation, Violation

        violation = Violation(
            component=self.name, time_ps=self.sim._now, rule=f"fifo.{kind}",
            message=f"{kind} at level {level} (capacity {self.capacity})")
        checks = self._checks
        if checks is not None:
            checks.violations.append(violation)
        raise InvariantViolation(violation)

    def _serve_waiting_gets(self) -> None:
        sim = self.sim
        if self._lt:
            # LT: hand items to waiters synchronously (trampolined).  The
            # _take() is eager, so the loop condition re-checks consistent
            # state even when the resumed consumer touches this FIFO again.
            while self._get_waiters and self._items:
                self._get_waiters.popleft().succeed_inline(self._take())
            return
        while self._get_waiters and self._items:
            waiter = self._get_waiters.popleft()
            # Inlined waiter.succeed(...): waiters are fresh pending events.
            waiter._value = self._take()
            sim._sequence = sequence = sim._sequence + 1
            heappush(sim._queue, (sim._now, PRIORITY_NORMAL, sequence, waiter))

    def _admit_waiting_puts(self) -> None:
        sim = self.sim
        if self._lt:
            while self._put_waiters and not self.is_full:
                event, item = self._put_waiters.popleft()
                self._store(item)
                event.succeed_inline()
            return
        while self._put_waiters and not self.is_full:
            event, item = self._put_waiters.popleft()
            self._store(item)
            event._value = None
            sim._sequence = sequence = sim._sequence + 1
            heappush(sim._queue, (sim._now, PRIORITY_NORMAL, sequence, event))

    def _level_changed(self, old_level: int) -> None:
        now = self.sim.now
        span = now - self._last_change_ps
        if span > 0:
            self._level_time[old_level] = self._level_time.get(old_level, 0) + span
        self._last_change_ps = now
        new_level = len(self._items)
        for fn in self._watchers:
            fn(now, old_level, new_level)

    def __len__(self) -> int:
        return len(self._items)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Fifo {self.name} {self.level}/{self.capacity}>"


class CdcFifo(Fifo[T]):
    """FIFO whose items only become readable ``latency_ps`` after writing.

    Models the synchroniser latency of the asynchronous FIFOs inside bridges
    (Fig. 2 of the paper).  Capacity is still enforced at write time, exactly
    like a real dual-clock FIFO whose write pointer advances immediately.
    """

    def __init__(self, sim: Simulator, capacity: int, latency_ps: int,
                 name: str = "cdc_fifo") -> None:
        super().__init__(sim, capacity, name=name)
        if latency_ps < 0:
            raise ValueError(f"negative CDC latency {latency_ps}")
        self.latency_ps = latency_ps
        self._cdc_name = name + ".cdc"
        #: Items written but not yet visible, as (ready_time, item).
        self._in_flight: Deque[Tuple[int, T]] = deque()

    def put(self, item: T) -> Event:
        if self._total_level() < self.capacity and not self._put_waiters:
            self._launch(item)
            if self._lt:
                return completed_event(self.sim, name=f"{self.name}.put")
            event = Event(self.sim, name=f"{self.name}.put")
            event.succeed()
            return event
        event = Event(self.sim, name=f"{self.name}.put")
        self._put_waiters.append((event, item))
        return event

    def try_put(self, item: T) -> bool:
        if self._total_level() >= self.capacity or self._put_waiters:
            return False
        self._launch(item)
        return True

    @property
    def is_full(self) -> bool:
        return self._total_level() >= self.capacity

    def _total_level(self) -> int:
        return len(self._items) + len(self._in_flight)

    def _launch(self, item: T) -> None:
        if self.latency_ps == 0:
            self._store(item)
            return
        ready = self.sim.now + self.latency_ps
        self._in_flight.append((ready, item))
        # Pooled: the synchroniser wakeup is internal and never outlives
        # _land, so the kernel can recycle it like a clock-edge wait.
        self.sim.pooled_timeout(self.latency_ps,
                                name=self._cdc_name).add_callback(self._land)

    def _land(self, _event: Event) -> None:
        now = self.sim.now
        while self._in_flight and self._in_flight[0][0] <= now:
            __, item = self._in_flight.popleft()
            self._store(item)

    def _admit_waiting_puts(self) -> None:
        while self._put_waiters and self._total_level() < self.capacity:
            event, item = self._put_waiters.popleft()
            self._launch(item)
            if self._lt:
                event.succeed_inline()
            else:
                event.succeed()
