"""Simulation core: kernel, events, clocks, FIFOs, statistics.

This package is the substrate every platform model is built on — the Python
equivalent of the SystemC backbone the paper's virtual platform uses.
"""

from .clock import Clock
from .component import Component
from .events import (
    AllOf,
    AnyOf,
    Event,
    EventError,
    Interrupt,
    Process,
    Timeout,
    completed_event,
    PRIORITY_LOW,
    PRIORITY_NORMAL,
    PRIORITY_URGENT,
)
from .fifo import CdcFifo, Fifo
from .kernel import MS, NS, US, SimulationError, Simulator
from .statistics import (
    ChannelUtilization,
    Counter,
    Gauge,
    LatencySummary,
    PhasedStates,
    TimeWeightedStates,
)
from .sync import Barrier, Semaphore

__all__ = [
    "AllOf",
    "AnyOf",
    "Barrier",
    "CdcFifo",
    "ChannelUtilization",
    "Clock",
    "completed_event",
    "Component",
    "Counter",
    "Event",
    "EventError",
    "Fifo",
    "Gauge",
    "Interrupt",
    "LatencySummary",
    "MS",
    "NS",
    "PhasedStates",
    "PRIORITY_LOW",
    "PRIORITY_NORMAL",
    "PRIORITY_URGENT",
    "Process",
    "Semaphore",
    "SimulationError",
    "Simulator",
    "TimeWeightedStates",
    "Timeout",
    "US",
]
