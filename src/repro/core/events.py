"""Event primitives for the discrete-event simulation kernel.

The kernel is deliberately simpy-like: simulation activity is expressed as
Python generator *processes* that ``yield`` :class:`Event` objects.  A process
is suspended until the yielded event *triggers*, at which point the event's
value is sent back into the generator (or its exception is thrown into it).

Events move through three states:

``pending``
    Created but not yet triggered.  Callbacks may be attached.
``triggered``
    A value (or failure) has been decided and the event is queued for
    processing by the simulator at a definite time.
``processed``
    The simulator has invoked all callbacks.  Attaching a callback to a
    processed event invokes it immediately.

All ordering in the kernel is deterministic: events scheduled for the same
simulation time are processed in ``(time, priority, sequence)`` order, where
``sequence`` is a per-simulator monotonically increasing integer.

Performance note: this module is the simulator's innermost layer — every
simulated transaction decomposes into dozens of these objects.  The hot
constructors (:class:`Timeout`, :meth:`Event.succeed`) therefore schedule
straight onto the simulator heap instead of going through
``Simulator._enqueue``, and :class:`Process` resumption appends its callback
directly.  Cold paths (``fail``, ``interrupt``, process completion) keep the
method-call layering for clarity.
"""

from __future__ import annotations

from heapq import heappush
from typing import TYPE_CHECKING, Any, Callable, Generator, Iterable, List, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from .kernel import Simulator

#: Scheduling priorities.  Lower numbers are processed first at equal times.
PRIORITY_URGENT = 0
PRIORITY_NORMAL = 1
PRIORITY_LOW = 2

#: Sentinel for "no value decided yet".
_PENDING = object()


class EventError(RuntimeError):
    """Raised on misuse of an event (double trigger, yield of non-event...)."""


class Event:
    """A happening at a point in simulated time.

    Processes wait on events by yielding them; arbitrary code can observe
    them through :meth:`add_callback`.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_processed", "name")

    def __init__(self, sim: "Simulator", name: str = "") -> None:
        self.sim = sim
        self.name = name
        #: Callbacks run when the event is processed; ``None`` afterwards.
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._ok = True
        self._processed = False

    # ------------------------------------------------------------------
    # state inspection
    # ------------------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once a value or failure has been decided."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self._processed

    @property
    def ok(self) -> bool:
        """True when the event succeeded (only meaningful once triggered)."""
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value.  Raises if the event is still pending."""
        if self._value is _PENDING:
            raise EventError(f"event {self!r} has not been triggered")
        return self._value

    # ------------------------------------------------------------------
    # triggering
    # ------------------------------------------------------------------
    def succeed(self, value: Any = None, priority: int = PRIORITY_NORMAL) -> "Event":
        """Trigger the event successfully with ``value`` at the current time."""
        if self._value is not _PENDING:
            raise EventError(f"event {self!r} already triggered")
        self._ok = True
        self._value = value
        sim = self.sim
        sim._sequence = sequence = sim._sequence + 1
        heappush(sim._queue, (sim._now, priority, sequence, self))
        return self

    def succeed_inline(self, value: Any = None) -> "Event":
        """Trigger the event *and run its callbacks* at the current time,
        without touching the event queue.

        The loosely-timed mode's same-timestamp handoff: work notifications,
        credit grants, FIFO waiter service and transaction completions that
        would each cost one scheduled event in CA resolve as plain function
        calls.  Callbacks drain through the simulator's inline trampoline in
        FIFO order, so arbitrarily long handoff chains execute iteratively —
        a callback that inline-succeeds further events only appends to the
        queue of the already-running drain.

        State is decided eagerly: ``triggered`` is True on return even when
        an outer drain still owns the callback execution.  Never called on
        cycle-accurate paths, where the queue round-trip *is* the modelled
        delta-cycle ordering.
        """
        if self._value is not _PENDING:
            raise EventError(f"event {self!r} already triggered")
        self._ok = True
        self._value = value
        self.sim._dispatch_inline(self)
        return self

    def fail(self, exception: BaseException, priority: int = PRIORITY_NORMAL) -> "Event":
        """Trigger the event as failed; waiters get ``exception`` thrown."""
        if self.triggered:
            raise EventError(f"event {self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self.sim._enqueue(self, 0, priority)
        return self

    # ------------------------------------------------------------------
    # observation
    # ------------------------------------------------------------------
    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Run ``callback(event)`` when the event is processed.

        If the event has already been processed the callback runs
        immediately (synchronously).
        """
        if self.callbacks is None:
            callback(self)
        else:
            self.callbacks.append(callback)

    def _run_callbacks(self) -> None:
        callbacks, self.callbacks = self.callbacks, None
        self._processed = True
        if callbacks:
            for callback in callbacks:
                callback(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "processed" if self._processed else (
            "triggered" if self.triggered else "pending")
        label = f" {self.name!r}" if self.name else ""
        return f"<{type(self).__name__}{label} {state}>"


def completed_event(sim: "Simulator", value: Any = None,
                    name: str = "") -> Event:
    """An :class:`Event` born in the *processed* state, carrying ``value``.

    Yielding one resumes the process **synchronously** — :class:`Process`
    treats a processed event (``callbacks is None``) as already happened
    and continues the generator inline, without a trip through the event
    queue.  This is the loosely-timed mode's zero-cost completion: an
    operation that succeeded immediately (a FIFO slot was free, a credit
    was available) hands back a completed event instead of scheduling a
    same-timestamp wakeup.  Never used on cycle-accurate paths, where the
    queue round-trip *is* the modelled arbitration point.
    """
    event = Event(sim, name=name)
    event._value = value
    event._processed = True
    event.callbacks = None
    return event


class Timeout(Event):
    """An event that triggers ``delay`` time units in the future.

    Timeouts self-schedule at construction; they cannot be cancelled (simply
    ignore the wakeup instead, or use a fresh :class:`Event`).
    """

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: int, value: Any = None,
                 priority: int = PRIORITY_NORMAL, name: str = "") -> None:
        if delay < 0:
            raise ValueError(f"negative timeout delay {delay}")
        # Flattened Event.__init__ + Simulator._enqueue: a Timeout per clock
        # edge wait makes this the most-executed constructor in the system.
        self.sim = sim
        self.name = name
        self.callbacks = []
        self._value = value
        self._ok = True
        self._processed = False
        self.delay = delay
        sim._sequence = sequence = sim._sequence + 1
        heappush(sim._queue, (sim._now + delay, priority, sequence, self))


class _PooledTimeout(Timeout):
    """A :class:`Timeout` owned by its simulator's reuse pool.

    Only created through :meth:`Simulator.pooled_timeout`.  After the kernel
    has run its callbacks the instance is returned to the pool and may be
    re-armed for a later wait, so holders must not inspect it once a new
    wait could have been issued (clock-edge waits are yielded and dropped,
    which is exactly the safe pattern).  Wrapping one in a
    :class:`Condition` pins it out of the pool, so ``all_of``/``any_of``
    over clock edges stay sound.
    """

    __slots__ = ("_pinned",)

    def __init__(self, sim: "Simulator", delay: int, value: Any = None,
                 priority: int = PRIORITY_NORMAL, name: str = "") -> None:
        super().__init__(sim, delay, value=value, priority=priority, name=name)
        self._pinned = False


class Process(Event):
    """A running generator.  The process *is* an event: it triggers when the
    generator returns (value = return value) or raises (failure).
    """

    __slots__ = ("generator", "_send", "_throw", "_target", "_resume_cb")

    def __init__(self, sim: "Simulator", generator: Generator[Event, Any, Any],
                 name: str = "", immediate: bool = False) -> None:
        if not hasattr(generator, "send"):
            raise TypeError(f"process body must be a generator, got {generator!r}")
        super().__init__(sim, name=name or getattr(generator, "__name__", "process"))
        self.generator = generator
        # Pre-bound: _resume runs once per processed event in busy models.
        self._send = generator.send
        self._throw = generator.throw
        #: The event this process currently waits on (None when running/finished).
        self._target: Optional[Event] = None
        self._resume_cb = self._resume
        if immediate:
            # LT-only (per-transaction workers spawned mid-run): prime the
            # generator synchronously via the inline trampoline instead of
            # paying a scheduled init event.
            bootstrap = Event(sim, name=f"{self.name}.init")
            bootstrap.callbacks.append(self._resume_cb)
            bootstrap.succeed_inline()
            return
        # Kick-start on the next kernel step at the current time.
        bootstrap = Event(sim, name=f"{self.name}.init")
        bootstrap._ok = True
        bootstrap._value = None
        sim._enqueue(bootstrap, 0, PRIORITY_URGENT)
        bootstrap.add_callback(self._resume_cb)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw an :class:`Interrupt` into the process at the current time."""
        if self.triggered:
            raise EventError(f"cannot interrupt finished process {self!r}")
        wakeup = Event(self.sim, name=f"{self.name}.interrupt")
        wakeup._ok = False
        wakeup._value = Interrupt(cause)
        self.sim._enqueue(wakeup, 0, PRIORITY_URGENT)
        wakeup.add_callback(self._resume_cb)

    # ------------------------------------------------------------------
    def _resume(self, trigger: Event) -> None:
        """Advance the generator with the trigger's outcome."""
        if self._value is not _PENDING:
            # Interrupted-then-completed race; nothing to resume.
            return
        self._target = None
        event: Optional[Event]
        try:
            if trigger._ok:
                event = self._send(trigger._value)
            else:
                event = self._throw(trigger._value)
        except StopIteration as stop:
            self._ok = True
            self._value = stop.value
            sim = self.sim
            if sim.lt_enabled:
                sim._dispatch_inline(self)
            else:
                sim._enqueue(self, 0, PRIORITY_NORMAL)
            return
        except BaseException as exc:  # noqa: BLE001 - propagate as failure
            self._ok = False
            self._value = exc
            self.sim._enqueue(self, 0, PRIORITY_NORMAL)
            if not self.callbacks:
                # Nobody is watching: re-raise so errors never pass silently.
                raise
            return
        if not isinstance(event, Event):
            raise EventError(
                f"process {self.name!r} yielded non-event {event!r}")
        self._target = event
        # Inline add_callback: one call per process step adds up.
        callbacks = event.callbacks
        if callbacks is None:
            self._resume_cb(event)
        else:
            callbacks.append(self._resume_cb)


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`."""

    @property
    def cause(self) -> Any:
        return self.args[0] if self.args else None


class Condition(Event):
    """Base for composite events (:class:`AllOf` / :class:`AnyOf`)."""

    __slots__ = ("events", "_remaining")

    def __init__(self, sim: "Simulator", events: Iterable[Event]) -> None:
        super().__init__(sim)
        self.events: List[Event] = list(events)
        for event in self.events:
            if event.sim is not sim:
                raise EventError("condition mixes events from different simulators")
            if event.__class__ is _PooledTimeout:
                # _collect reads children after they were processed; pin the
                # event so the pool can never re-arm it under us.
                event._pinned = True
        self._remaining = len(self.events)
        if not self.events:
            self.succeed(self._collect())
        else:
            for event in self.events:
                event.add_callback(self._on_child)

    def _collect(self) -> dict:
        """Mapping of the already-*processed* child events to their values.

        ``processed`` rather than ``triggered``: a :class:`Timeout` carries
        its value from construction (so ``triggered`` is immediately true),
        but it has not *happened* until the kernel processed it.
        """
        return {event: event._value for event in self.events if event.processed}

    def _on_child(self, event: Event) -> None:
        raise NotImplementedError


class AllOf(Condition):
    """Triggers when *all* child events have triggered.

    Fails immediately when any child fails.
    """

    __slots__ = ()

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            self.fail(event._value)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed(self._collect())


class AnyOf(Condition):
    """Triggers when *any* child event triggers (value = dict of done ones)."""

    __slots__ = ()

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            self.fail(event._value)
            return
        self.succeed(self._collect())
