"""Synchronisation primitives built on events.

:class:`Semaphore` implements the credit-based flow control used throughout
the platform: initiator ports limit their *outstanding transactions* with it,
bridges limit in-flight forwarded requests, and IPTG agents use it for
inter-agent synchronisation points.
"""

from __future__ import annotations

from collections import deque
from typing import Deque

from .events import Event, completed_event
from .kernel import Simulator


class Semaphore:
    """A counting semaphore with FIFO-fair, event-based acquisition.

    By default the semaphore is a bounded *credit pool*: releasing more
    tokens than were initially present raises (catching double-release
    bugs in bus-interface credit logic).  Pass ``bounded=False`` for a
    plain counting semaphore (producer/consumer token streams), where
    releases may outnumber the initial tokens.
    """

    def __init__(self, sim: Simulator, tokens: int, name: str = "sem",
                 bounded: bool = True) -> None:
        if tokens < 0:
            raise ValueError(f"semaphore cannot start negative: {tokens}")
        self.sim = sim
        self.name = name
        self.bounded = bounded
        self._tokens = tokens
        self._capacity = tokens
        self._waiters: Deque[Event] = deque()
        #: Loosely-timed flag, captured once (select-once discipline).
        self._lt = sim.lt_enabled

    @property
    def available(self) -> int:
        """Tokens currently free."""
        return self._tokens

    @property
    def in_use(self) -> int:
        """Tokens currently held (bounded semaphores only)."""
        return self._capacity - self._tokens

    def acquire(self) -> Event:
        """Event completing once a token has been granted."""
        if self._tokens > 0 and not self._waiters:
            self._tokens -= 1
            if self._lt:
                # LT: the grant is immediate — no queue round-trip.
                return completed_event(self.sim, name=f"{self.name}.acquire")
            event = Event(self.sim, name=f"{self.name}.acquire")
            event.succeed()
            return event
        event = Event(self.sim, name=f"{self.name}.acquire")
        self._waiters.append(event)
        return event

    def try_acquire(self) -> bool:
        """Take a token if one is free right now."""
        if self._tokens > 0 and not self._waiters:
            self._tokens -= 1
            return True
        return False

    def release(self) -> None:
        """Return a token, handing it straight to the oldest waiter if any."""
        if self._waiters:
            waiter = self._waiters.popleft()
            if self._lt:
                waiter.succeed_inline()
            else:
                waiter.succeed()
        else:
            if self.bounded and self._tokens >= self._capacity:
                raise RuntimeError(
                    f"semaphore {self.name!r} released more than acquired")
            self._tokens += 1


class WorkSignal:
    """Lost-wakeup-proof work notification.

    The naive pattern — trigger an event on ``notify()``, re-arm it in
    ``wait()`` — drops notifications that arrive while the event is
    triggered but every consumer is busy: the consumers then re-arm and
    sleep although work is queued.  ``WorkSignal`` keeps a *dirty* flag that
    survives the re-arm, so a ``wait()`` after a missed ``notify()`` returns
    an already-triggered event and the consumer re-checks immediately.

    Consumers must scan for work after every wake-up (spurious wake-ups are
    possible by design; missed work is not).
    """

    def __init__(self, sim: Simulator, name: str = "work") -> None:
        self.sim = sim
        self.name = name
        self._event = Event(sim, name=name)
        self._dirty = False
        #: Loosely-timed flag, captured once (select-once discipline).
        self._lt = sim.lt_enabled

    def notify(self) -> None:
        """Signal that work may be available."""
        self._dirty = True
        event = self._event
        if not event.triggered:
            if self._lt:
                # LT: hand the wakeup over synchronously (trampolined) —
                # the consumer resumes within the notifier's frame at the
                # same timestamp, costing zero scheduled events.
                event.succeed_inline()
            else:
                event.succeed()

    def wait(self) -> Event:
        """Event that fires when work may be available (possibly now)."""
        if self._lt:
            if self._event._processed:
                self._event = Event(self.sim, name=self.name)
            if self._dirty:
                self._dirty = False
                # A missed notify: resume the consumer synchronously.
                return completed_event(self.sim, name=self.name)
            return self._event
        if self._event.processed:
            self._event = Event(self.sim, name=self.name)
            if self._dirty:
                self._event.succeed()
        self._dirty = False
        return self._event


class Barrier:
    """N-party synchronisation point.

    IPTG multi-agent configurations use barriers to model inter-agent
    dependencies ("inter-agent synchronization points can be set to emulate
    dependencies between them").  All parties block in :meth:`wait` until the
    last one arrives, then everyone is released and the barrier re-arms.
    """

    def __init__(self, sim: Simulator, parties: int, name: str = "barrier") -> None:
        if parties < 1:
            raise ValueError(f"barrier needs >= 1 party, got {parties}")
        self.sim = sim
        self.name = name
        self.parties = parties
        self._waiting: Deque[Event] = deque()
        self.generations = 0

    @property
    def waiting(self) -> int:
        """Parties currently blocked."""
        return len(self._waiting)

    def wait(self) -> Event:
        """Event completing when all parties have arrived."""
        event = Event(self.sim, name=f"{self.name}.wait")
        self._waiting.append(event)
        if len(self._waiting) >= self.parties:
            self.generations += 1
            released, self._waiting = self._waiting, deque()
            for waiter in released:
                waiter.succeed(self.generations)
        return event
