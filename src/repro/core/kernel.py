"""The discrete-event simulation kernel.

A :class:`Simulator` owns the event queue and the notion of *now*.  Time is an
integer number of **picoseconds**: with an integer timebase, clock domains at
arbitrary rational frequencies (400 MHz, 250 MHz, 166 MHz ...) stay exactly
phase-aligned for the whole run and results are bit-reproducible.

Typical usage::

    sim = Simulator()
    clk = sim.clock(freq_mhz=200)

    def producer(sim, fifo):
        for i in range(16):
            yield fifo.put(i)

    sim.process(producer(sim, fifo))
    sim.run()

The kernel itself knows nothing about buses or memories; those live in the
``interconnect``/``memory`` packages and are built from processes, events and
FIFOs.
"""

from __future__ import annotations

import heapq
from itertools import count
from typing import Any, Generator, Iterable, List, Optional, Tuple

from .events import (
    AllOf,
    AnyOf,
    Event,
    EventError,
    Process,
    Timeout,
    PRIORITY_NORMAL,
)

#: One nanosecond expressed in the kernel timebase (picoseconds).
NS = 1_000
#: One microsecond in picoseconds.
US = 1_000_000
#: One millisecond in picoseconds.
MS = 1_000_000_000


class SimulationError(RuntimeError):
    """Raised for kernel-level failures (time running backwards, ...)."""


class Simulator:
    """Deterministic discrete-event simulator with integer time.

    Parameters
    ----------
    trace:
        Optional callable invoked as ``trace(time_ps, event)`` for every
        processed event — handy when debugging models, far too verbose for
        real runs.
    """

    def __init__(self, trace=None) -> None:
        self._now = 0
        self._queue: List[Tuple[int, int, int, Event]] = []
        self._sequence = count()
        self._trace = trace
        self._processed_events = 0
        self._clocks: List[Any] = []

    # ------------------------------------------------------------------
    # time
    # ------------------------------------------------------------------
    @property
    def now(self) -> int:
        """Current simulation time in picoseconds."""
        return self._now

    @property
    def now_ns(self) -> float:
        """Current simulation time in nanoseconds (for reporting only)."""
        return self._now / NS

    @property
    def processed_events(self) -> int:
        """Total number of events processed so far (a determinism probe)."""
        return self._processed_events

    # ------------------------------------------------------------------
    # event factories
    # ------------------------------------------------------------------
    def event(self, name: str = "") -> Event:
        """A fresh untriggered event."""
        return Event(self, name=name)

    def timeout(self, delay: int, value: Any = None,
                priority: int = PRIORITY_NORMAL) -> Timeout:
        """An event triggering ``delay`` picoseconds from now."""
        return Timeout(self, delay, value=value, priority=priority)

    def process(self, generator: Generator[Event, Any, Any],
                name: str = "") -> Process:
        """Register ``generator`` as a process starting at the current time."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event triggering when every event in ``events`` has triggered."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event triggering when the first event in ``events`` triggers."""
        return AnyOf(self, events)

    def clock(self, freq_mhz: Optional[float] = None,
              period_ps: Optional[int] = None, phase_ps: int = 0,
              name: str = "clk"):
        """Create a :class:`~repro.core.clock.Clock` bound to this simulator."""
        from .clock import Clock  # local import to avoid a cycle

        clk = Clock(self, freq_mhz=freq_mhz, period_ps=period_ps,
                    phase_ps=phase_ps, name=name)
        self._clocks.append(clk)
        return clk

    # ------------------------------------------------------------------
    # scheduling / execution
    # ------------------------------------------------------------------
    def _enqueue(self, event: Event, delay: int, priority: int) -> None:
        """Queue a triggered event for processing ``delay`` ps from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        heapq.heappush(
            self._queue, (self._now + delay, priority, next(self._sequence), event))

    def peek(self) -> Optional[int]:
        """Time of the next queued event, or None when the queue is empty."""
        return self._queue[0][0] if self._queue else None

    def step(self) -> None:
        """Process exactly one event."""
        if not self._queue:
            raise SimulationError("step() on an empty event queue")
        when, _priority, _seq, event = heapq.heappop(self._queue)
        if when < self._now:  # pragma: no cover - guarded by _enqueue
            raise SimulationError("event queue time went backwards")
        self._now = when
        self._processed_events += 1
        if self._trace is not None:
            self._trace(when, event)
        event._run_callbacks()

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Run until the queue drains, ``until`` ps is reached, or
        ``max_events`` more events have been processed.

        Returns the simulation time when the run stopped.  ``until`` is a
        *bound*: when the queue drains earlier, ``now`` stays at the last
        event time (so time-weighted statistics are not diluted by a
        trailing idle span nobody simulated).
        """
        budget = max_events if max_events is not None else -1
        while self._queue:
            if until is not None and self._queue[0][0] > until:
                self._now = until
                break
            if budget == 0:
                break
            self.step()
            if budget > 0:
                budget -= 1
        return self._now

    def run_until_idle(self, quiet_ps: int) -> int:
        """Run until no event fires for ``quiet_ps`` consecutive picoseconds.

        Useful for "run to completion" of platforms whose clock processes
        would otherwise keep the queue non-empty forever.  (Our clocks are
        lazy — they only schedule edges someone waits for — so a plain
        :meth:`run` usually suffices; this helper exists for models that
        keep background refresh processes alive.)
        """
        last_activity = self._now
        while self._queue:
            next_time = self._queue[0][0]
            if next_time - last_activity > quiet_ps:
                break
            before = self._processed_events
            self.step()
            if self._processed_events != before:
                last_activity = self._now
        return self._now


__all__ = [
    "Simulator",
    "SimulationError",
    "Event",
    "EventError",
    "Process",
    "Timeout",
    "NS",
    "US",
    "MS",
]
