"""The discrete-event simulation kernel.

A :class:`Simulator` owns the event queue and the notion of *now*.  Time is an
integer number of **picoseconds**: with an integer timebase, clock domains at
arbitrary rational frequencies (400 MHz, 250 MHz, 166 MHz ...) stay exactly
phase-aligned for the whole run and results are bit-reproducible.

Typical usage::

    sim = Simulator()
    clk = sim.clock(freq_mhz=200)

    def producer(sim, fifo):
        for i in range(16):
            yield fifo.put(i)

    sim.process(producer(sim, fifo))
    sim.run()

The kernel itself knows nothing about buses or memories; those live in the
``interconnect``/``memory`` packages and are built from processes, events and
FIFOs.

Hot-path design (see ``docs/PERFORMANCE.md``): :meth:`Simulator.run` selects
one of two pre-bound loop bodies once — traced or untraced — instead of
checking ``trace is None`` per event, pops the heap once per *timestamp
cluster* (all events sharing ``now`` drain in an inner loop with no bound
checks), and recycles clock-edge :class:`Timeout` objects through a pool so
steady-state cycle-accurate models stop allocating on every edge.

Observability hooks (see ``docs/OBSERVABILITY.md``) follow the same
select-once discipline: the only per-run instrumentation points are the
:data:`_new_sim_hooks` list (checked once, at ``Simulator`` construction)
and the :attr:`Simulator._spans` slot (a ``None`` attribute unless a
``repro.obs.capture()`` is active).  Neither is touched inside the event
loops, so a run with tracing disabled executes exactly the PR 1 fast path.
"""

from __future__ import annotations

import heapq
from collections import deque
from functools import partial
from heapq import heappop, heappush
from typing import TYPE_CHECKING, Any, Generator, Iterable, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover
    from ..obs.registry import MetricRegistry

from .events import (
    AllOf,
    AnyOf,
    Event,
    EventError,
    Process,
    Timeout,
    _PooledTimeout,
    PRIORITY_NORMAL,
)

#: One nanosecond expressed in the kernel timebase (picoseconds).
NS = 1_000
#: One microsecond in picoseconds.
US = 1_000_000
#: One millisecond in picoseconds.
MS = 1_000_000_000

#: Upper bound on retained pooled timeouts (a platform rarely has more
#: concurrent edge waits than this; beyond it we just let the GC work).
_POOL_MAX = 512

#: Construction observers: each callable is invoked with every newly built
#: :class:`Simulator`.  Empty by default — ``repro.obs.capture()`` appends a
#: hook here for the duration of a capture so platforms built inside the
#: capture window come up with span recording attached.  The list is only
#: consulted in ``Simulator.__init__``, never on the event hot path.
_new_sim_hooks: List[Any] = []


class SimulationError(RuntimeError):
    """Raised for kernel-level failures (time running backwards, ...)."""


class Simulator:
    """Deterministic discrete-event simulator with integer time.

    Parameters
    ----------
    trace:
        Optional callable invoked as ``trace(time_ps, event)`` for every
        processed event — handy when debugging models, far too verbose for
        real runs.  (With a trace installed the kernel takes its traced
        loop body; never install one for performance measurements.)
    resolution:
        ``"ca"`` (cycle accurate, the default) or ``"lt"`` (loosely
        timed).  The kernel itself runs the same event loop either way;
        the flag is the *announcement* components read once at
        construction (select-once discipline, like :attr:`_spans`) to
        decide whether their contention-free regimes may be fast-forwarded
        analytically.  See ``docs/FAST_SIM.md`` for the accuracy contract.
    """

    def __init__(self, trace=None, resolution: str = "ca") -> None:
        if resolution not in ("ca", "lt"):
            raise ValueError(f"unknown resolution {resolution!r}; "
                             f"expected 'ca' or 'lt'")
        self._now = 0
        self._queue: List[Tuple[int, int, int, Event]] = []
        #: Monotonic scheduling sequence.  A plain integer field: the hot
        #: constructors in ``events.py`` bump it inline rather than paying
        #: for an iterator protocol call per event.
        self._sequence = 0
        self._trace = trace
        self._processed_events = 0
        self._clocks: List[Any] = []
        #: Free list of recyclable :class:`_PooledTimeout` instances.
        self._timeout_pool: List[_PooledTimeout] = []
        # Shadow the `timeout` method with a C-level partial straight onto
        # the constructor: one Python frame less on the single most-called
        # factory in the system (see the method below for the signature).
        self.timeout = partial(Timeout, self)
        #: Transaction-span recorder (``repro.obs.trace.SpanRecorder``) or
        #: ``None``.  Components read this once at construction; model code
        #: guards every mark with an ``is not None`` check per *transaction*
        #: hop, so a run without a capture pays nothing per event.
        self._spans = None
        #: Lazily created hierarchical metric registry (see :attr:`metrics`).
        self._metrics = None
        #: Invariant checker (``repro.check.monitors.SimChecker``) or
        #: ``None``.  Same discipline as :attr:`_spans`: read once at
        #: component construction, guarded per transaction hop, never
        #: consulted inside the event loops.
        self._checks = None
        #: Energy accountant (``repro.obs.energy.EnergyAccountant``) or
        #: ``None``.  Third user of the select-once discipline: components
        #: capture the slot at construction and guard every charge with an
        #: ``is not None`` check per transaction hop; the event loops never
        #: see it.
        self._energy = None
        #: Resolution announcement (see the constructor docstring).  Both
        #: fields are read once per component at construction time and
        #: never inside the event loops.
        self._resolution = resolution
        self.lt_enabled = resolution == "lt"
        #: Inline-trigger trampoline (LT mode only, see
        #: :meth:`~repro.core.events.Event.succeed_inline`): events whose
        #: callbacks run synchronously at the current time queue here so
        #: chained handoffs drain iteratively instead of recursing.
        self._inline_queue: deque = deque()
        self._inline_active = False
        #: Analytic fast-forwards taken so far (LT mode only): every time a
        #: component computed a contention-free stretch in closed form and
        #: advanced time in one step, it bumps this via
        #: :meth:`note_fastforward`.  Stays 0 in CA mode by construction.
        self._lt_fastforwards = 0
        if _new_sim_hooks:
            for hook in tuple(_new_sim_hooks):
                hook(self)

    # ------------------------------------------------------------------
    # time
    # ------------------------------------------------------------------
    @property
    def now(self) -> int:
        """Current simulation time in picoseconds."""
        return self._now

    @property
    def now_ns(self) -> float:
        """Current simulation time in nanoseconds (for reporting only)."""
        return self._now / NS

    @property
    def processed_events(self) -> int:
        """Total number of events processed so far (a determinism probe)."""
        return self._processed_events

    # ------------------------------------------------------------------
    # resolution (cycle-accurate vs loosely-timed)
    # ------------------------------------------------------------------
    @property
    def resolution(self) -> str:
        """Active resolution mode: ``"ca"`` or ``"lt"``."""
        return self._resolution

    @property
    def lt_fastforwards(self) -> int:
        """Analytic fast-forwards taken (always 0 in CA mode)."""
        return self._lt_fastforwards

    def note_fastforward(self, count: int = 1) -> None:
        """Record that a component fast-forwarded a contention-free stretch.

        Called only on LT code paths — never on the CA hot path — so CA
        runs pay nothing for the bookkeeping.
        """
        self._lt_fastforwards += count

    def set_resolution(self, resolution: str) -> None:
        """Switch resolution before any model activity.

        Components capture the flag at construction and the two modes
        schedule different event populations, so flipping it mid-run would
        silently mix timelines.  Only a pristine simulator (no events
        processed, nothing scheduled) may be switched.
        """
        if resolution not in ("ca", "lt"):
            raise ValueError(f"unknown resolution {resolution!r}; "
                             f"expected 'ca' or 'lt'")
        if resolution == self._resolution:
            return
        if self._processed_events or self._queue:
            raise SimulationError(
                "set_resolution() requires a pristine simulator: components "
                "capture the resolution at construction time")
        self._resolution = resolution
        self.lt_enabled = resolution == "lt"

    @property
    def metrics(self) -> "MetricRegistry":
        """The simulator's hierarchical metric registry (created lazily).

        Every component registers its counters, gauges, histograms and
        time-weighted state trackers here by dotted path
        (``repro.obs.registry.MetricRegistry``), so a whole run can be
        dumped, diffed or exported without knowing which components exist.
        """
        registry = self._metrics
        if registry is None:
            from ..obs.registry import MetricRegistry  # deferred: no cycle

            registry = self._metrics = MetricRegistry(self)
        return registry

    # ------------------------------------------------------------------
    # event factories
    # ------------------------------------------------------------------
    def event(self, name: str = "") -> Event:
        """A fresh untriggered event."""
        return Event(self, name=name)

    def timeout(self, delay: int, value: Any = None,
                priority: int = PRIORITY_NORMAL) -> Timeout:
        """An event triggering ``delay`` picoseconds from now.

        (Instances overwrite this with ``partial(Timeout, self)`` in
        ``__init__`` — identical behaviour, one call frame cheaper.  This
        def documents the signature and serves as the fallback.)
        """
        return Timeout(self, delay, value=value, priority=priority)

    def pooled_timeout(self, delay: int, value: Any = None,
                       priority: int = PRIORITY_NORMAL,
                       name: str = "") -> Timeout:
        """A :class:`Timeout` drawn from (and returned to) a reuse pool.

        Behaves exactly like :meth:`timeout` for the canonical wait pattern
        ``yield clk.edge()`` — yield it, forget it.  The kernel reclaims the
        object right after its callbacks ran, so **do not** keep a reference
        across a later wait on the same clock/FIFO: the instance may have
        been re-armed for somebody else's wait by then.  Conditions
        (``all_of``/``any_of``) pin their children automatically and stay
        safe.  Used by :class:`~repro.core.clock.Clock` edge waits and the
        CDC FIFO synchroniser delay, which between them account for most
        events in a cycle-accurate platform run.
        """
        pool = self._timeout_pool
        if pool:
            if delay < 0:
                raise ValueError(f"negative timeout delay {delay}")
            timeout = pool.pop()
            timeout.callbacks = []
            timeout._value = value
            timeout._ok = True
            timeout._processed = False
            timeout.delay = delay
            timeout.name = name
            self._sequence = sequence = self._sequence + 1
            heappush(self._queue, (self._now + delay, priority, sequence, timeout))
            return timeout
        return _PooledTimeout(self, delay, value=value, priority=priority,
                              name=name)

    def process(self, generator: Generator[Event, Any, Any],
                name: str = "", immediate: bool = False) -> Process:
        """Register ``generator`` as a process starting at the current time.

        ``immediate`` is an LT-only hint for processes spawned *mid-run*
        (per-transaction workers): the generator is primed synchronously
        through the inline trampoline instead of via a scheduled init
        event.  Ignored in CA mode, and must not be used for processes
        spawned during elaboration (the body would run before the rest of
        the component finished constructing).
        """
        return Process(self, generator, name=name,
                       immediate=immediate and self.lt_enabled)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event triggering when every event in ``events`` has triggered."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event triggering when the first event in ``events`` triggers."""
        return AnyOf(self, events)

    def clock(self, freq_mhz: Optional[float] = None,
              period_ps: Optional[int] = None, phase_ps: int = 0,
              name: str = "clk"):
        """Create a :class:`~repro.core.clock.Clock` bound to this simulator."""
        from .clock import Clock  # local import to avoid a cycle

        clk = Clock(self, freq_mhz=freq_mhz, period_ps=period_ps,
                    phase_ps=phase_ps, name=name)
        self._clocks.append(clk)
        return clk

    # ------------------------------------------------------------------
    # scheduling / execution
    # ------------------------------------------------------------------
    def _enqueue(self, event: Event, delay: int, priority: int) -> None:
        """Queue a triggered event for processing ``delay`` ps from now.

        Cold-path entry point.  The hot constructors (``Timeout.__init__``,
        ``Event.succeed``) push onto ``_queue`` directly with the same
        ``(time, priority, sequence, event)`` entry shape — keep the two in
        sync when changing either.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        self._sequence = sequence = self._sequence + 1
        heapq.heappush(
            self._queue, (self._now + delay, priority, sequence, event))

    def _dispatch_inline(self, event: Event) -> None:
        """Run a *triggered* event's callbacks through the inline trampoline.

        LT-only (see :meth:`Event.succeed_inline`): the event bypasses the
        heap entirely.  Re-entrant calls — a callback dispatching further
        inline events — append to the already-draining queue, so handoff
        chains of any length execute iteratively in FIFO order.
        """
        pending = self._inline_queue
        pending.append(event)
        if not self._inline_active:
            self._inline_active = True
            try:
                while pending:
                    pending.popleft()._run_callbacks()
            finally:
                self._inline_active = False

    def peek(self) -> Optional[int]:
        """Time of the next queued event, or None when the queue is empty."""
        return self._queue[0][0] if self._queue else None

    def _reclaim(self, event: Event) -> None:
        """Return a processed pooled timeout to the free list."""
        if not event._pinned and len(self._timeout_pool) < _POOL_MAX:
            self._timeout_pool.append(event)

    def step(self) -> None:
        """Process exactly one event."""
        if not self._queue:
            raise SimulationError("step() on an empty event queue")
        when, _priority, _seq, event = heapq.heappop(self._queue)
        if when < self._now:  # pragma: no cover - guarded by _enqueue
            raise SimulationError("event queue time went backwards")
        self._now = when
        self._processed_events += 1
        if self._trace is not None:
            self._trace(when, event)
        event._run_callbacks()
        if event.__class__ is _PooledTimeout:
            self._reclaim(event)

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Run until the queue drains, ``until`` ps is reached, or
        ``max_events`` more events have been processed.

        Returns the simulation time when the run stopped.  ``until`` is a
        *bound*: when the queue drains earlier, ``now`` stays at the last
        event time (so time-weighted statistics are not diluted by a
        trailing idle span nobody simulated).
        """
        if max_events is not None:
            return self._run_budgeted(until, max_events)
        if self._trace is not None:
            return self._run_traced(until)
        return self._run_fast(until)

    def _run_fast(self, until: Optional[int]) -> int:
        """The untraced hot loop: batch every event sharing a timestamp.

        The heap top is inspected once per *cluster*; inside a cluster the
        inner loop pops, runs callbacks inline and recycles pooled timeouts
        with no bound/trace checks.  Events a callback schedules for the
        current timestamp join the live cluster in correct
        priority-then-sequence order because the heap invariant holds across
        pushes.
        """
        queue = self._queue
        pop = heappop
        pooled = _PooledTimeout
        pool = self._timeout_pool
        pool_append = pool.append
        while queue:
            when = queue[0][0]
            if until is not None and when > until:
                self._now = until
                break
            self._now = when
            processed = 0
            while queue and queue[0][0] == when:
                event = pop(queue)[3]
                processed += 1
                # Inlined Event._run_callbacks().
                callbacks = event.callbacks
                event.callbacks = None
                event._processed = True
                if callbacks:
                    for callback in callbacks:
                        callback(event)
                # Inlined _reclaim().
                if event.__class__ is pooled and not event._pinned \
                        and len(pool) < _POOL_MAX:
                    pool_append(event)
            self._processed_events += processed
        return self._now

    def _run_traced(self, until: Optional[int]) -> int:
        """Same clustering as :meth:`_run_fast`, plus the per-event trace."""
        queue = self._queue
        pop = heappop
        trace = self._trace
        while queue:
            when = queue[0][0]
            if until is not None and when > until:
                self._now = until
                break
            self._now = when
            processed = 0
            while queue and queue[0][0] == when:
                event = pop(queue)[3]
                processed += 1
                trace(when, event)
                event._run_callbacks()
                if event.__class__ is _PooledTimeout:
                    self._reclaim(event)
            self._processed_events += processed
        return self._now

    def _run_budgeted(self, until: Optional[int], max_events: int) -> int:
        """Clustered loop that additionally stops after ``max_events``.

        Same batching as :meth:`_run_fast` with a per-event budget check;
        used for both bounded debugging runs and watchdog-bounded platform
        runs, so it must stay fast too.
        """
        budget = max_events
        queue = self._queue
        pop = heappop
        trace = self._trace
        pooled = _PooledTimeout
        while queue and budget > 0:
            when = queue[0][0]
            if until is not None and when > until:
                self._now = until
                break
            self._now = when
            processed = 0
            while budget > 0 and queue and queue[0][0] == when:
                budget -= 1
                event = pop(queue)[3]
                processed += 1
                if trace is not None:
                    trace(when, event)
                event._run_callbacks()
                if event.__class__ is pooled:
                    self._reclaim(event)
            self._processed_events += processed
        return self._now

    def run_until_idle(self, quiet_ps: int) -> int:
        """Run until no event fires for *more than* ``quiet_ps`` picoseconds.

        The boundary is inclusive: an event (or burst) landing exactly at
        ``last_activity + quiet_ps`` is still processed and restarts the
        quiet window; the run only stops when the next queued event lies
        strictly beyond it.  Useful for "run to completion" of platforms
        whose clock processes would otherwise keep the queue non-empty
        forever.  (Our clocks are lazy — they only schedule edges someone
        waits for — so a plain :meth:`run` usually suffices; this helper
        exists for models that keep background refresh processes alive.)
        """
        last_activity = self._now
        while self._queue:
            if self._queue[0][0] > last_activity + quiet_ps:
                break
            self.step()
            last_activity = self._now
        return self._now


__all__ = [
    "Simulator",
    "SimulationError",
    "Event",
    "EventError",
    "Process",
    "Timeout",
    "NS",
    "US",
    "MS",
]
