"""Statistics collection system.

The paper stresses that its modelling effort "was completed by ... setting up
a statistics collection system", and Section 5 shows why: macroscopic
conclusions (who is the bottleneck — interconnect or memory controller?) come
from fine-grain signals like the cycle-by-cycle state of the LMI bus
interface.

Everything here integrates *durations between state changes* rather than
sampling every cycle, so the cost is proportional to activity, not to
simulated time.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

from .kernel import Simulator


class Counter:
    """A named monotonically increasing counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def add(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Counter {self.name}={self.value}>"


class Gauge:
    """A named instantaneous value with high/low watermark tracking.

    Counters only go up; gauges move both ways (FIFO levels, outstanding
    transaction counts, credit balances).  The watermarks make transient
    extremes visible after the fact — a FIFO that momentarily filled is
    invisible in a time-weighted mean but decisive for sizing it.
    """

    __slots__ = ("name", "value", "high_water", "low_water")

    def __init__(self, name: str, initial: int = 0) -> None:
        self.name = name
        self.value = initial
        self.high_water = initial
        self.low_water = initial

    def set(self, value) -> None:
        self.value = value
        if value > self.high_water:
            self.high_water = value
        elif value < self.low_water:
            self.low_water = value

    def add(self, delta) -> None:
        self.set(self.value + delta)

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<Gauge {self.name}={self.value} "
                f"[{self.low_water}..{self.high_water}]>")


class TimeWeightedStates:
    """Integrates the time spent in each of a set of named states.

    This is the primitive behind the Fig. 6 breakdown (FIFO full / storing /
    idle-no-request / empty).  Call :meth:`set_state` whenever the observed
    condition changes; query :meth:`breakdown` for fractions over a window.
    """

    def __init__(self, sim: Simulator, initial: str = "idle") -> None:
        self.sim = sim
        self._state = initial
        self._since = sim.now
        self._durations: Dict[str, int] = {}
        #: Epoch marks allow splitting the run into phases (Fig. 6 shows two
        #: working regimes of the same application lifetime).
        self._epochs: List[int] = [sim.now]

    @property
    def state(self) -> str:
        return self._state

    def set_state(self, state: str) -> None:
        """Enter ``state`` at the current time (no-op when unchanged)."""
        if state == self._state:
            return
        now = self.sim.now
        span = now - self._since
        if span > 0:
            self._durations[self._state] = self._durations.get(self._state, 0) + span
        self._state = state
        self._since = now

    def mark_epoch(self) -> None:
        """Remember the current time as a phase boundary."""
        self._epochs.append(self.sim.now)

    def durations(self, until_ps: Optional[int] = None) -> Dict[str, int]:
        """Absolute time (ps) per state, including the open interval."""
        if until_ps is None:
            until_ps = self.sim.now
        result = dict(self._durations)
        open_span = until_ps - self._since
        if open_span > 0:
            result[self._state] = result.get(self._state, 0) + open_span
        return result

    def breakdown(self, until_ps: Optional[int] = None) -> Dict[str, float]:
        """Fraction of elapsed time per state (sums to 1.0)."""
        durations = self.durations(until_ps)
        total = sum(durations.values())
        if total == 0:
            return {}
        return {state: span / total for state, span in durations.items()}


class PhasedStates:
    """Per-phase :class:`TimeWeightedStates` — one breakdown per phase.

    ``begin_phase(name)`` closes the current phase and opens a new one; the
    result is an ordered mapping phase name -> state breakdown, exactly the
    structure of Fig. 6 ("two working regimes ... out of the MPSoC
    application lifetime").
    """

    def __init__(self, sim: Simulator, initial: str = "idle",
                 first_phase: str = "phase0") -> None:
        self.sim = sim
        self._initial_state = initial
        self._phases: List[tuple] = []  # (name, TimeWeightedStates)
        self._current_state = initial
        self.begin_phase(first_phase)

    def begin_phase(self, name: str) -> None:
        tracker = TimeWeightedStates(self.sim, initial=self._current_state)
        self._phases.append((name, tracker))

    def set_state(self, state: str) -> None:
        self._current_state = state
        self._phases[-1][1].set_state(state)

    @property
    def state(self) -> str:
        return self._current_state

    def breakdowns(self) -> Dict[str, Dict[str, float]]:
        """Phase name -> state fraction mapping, phases in creation order."""
        result: Dict[str, Dict[str, float]] = {}
        for i, (name, tracker) in enumerate(self._phases):
            if i + 1 < len(self._phases):
                until = self._phases[i + 1][1]._epochs[0]
            else:
                until = self.sim.now
            result[name] = tracker.breakdown(until_ps=until)
        return result


class LatencySummary:
    """Streaming summary of a latency population (all samples retained)."""

    def __init__(self, name: str = "latency") -> None:
        self.name = name
        self.samples: List[int] = []

    def add(self, value: int) -> None:
        if value < 0:
            raise ValueError(f"negative latency sample {value}")
        self.samples.append(value)

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def mean(self) -> float:
        return sum(self.samples) / len(self.samples) if self.samples else math.nan

    @property
    def minimum(self) -> int:
        return min(self.samples) if self.samples else 0

    @property
    def maximum(self) -> int:
        return max(self.samples) if self.samples else 0

    def percentile(self, p: float) -> float:
        """Linear-interpolated percentile, ``p`` in [0, 100]."""
        if not self.samples:
            return math.nan
        if not 0 <= p <= 100:
            raise ValueError(f"percentile out of range: {p}")
        ordered = sorted(self.samples)
        if len(ordered) == 1:
            return float(ordered[0])
        rank = (p / 100) * (len(ordered) - 1)
        low = int(rank)
        frac = rank - low
        if low + 1 >= len(ordered):
            return float(ordered[-1])
        return ordered[low] * (1 - frac) + ordered[low + 1] * frac


class ChannelUtilization:
    """Busy-time accounting for a bus channel.

    Channels report each occupied cycle (or busy interval); utilisation is
    busy time over elapsed time — the paper's "ratio of bus busy cycles over
    execution time".
    """

    def __init__(self, sim: Simulator, name: str = "channel") -> None:
        self.sim = sim
        self.name = name
        self.busy_ps = 0
        self.transfers = 0
        self._start_ps = sim.now

    def add_busy(self, duration_ps: int, transfers: int = 1) -> None:
        if duration_ps < 0:
            raise ValueError("negative busy duration")
        self.busy_ps += duration_ps
        self.transfers += transfers

    def utilization(self, until_ps: Optional[int] = None) -> float:
        """Fraction of elapsed time the channel was occupied."""
        if until_ps is None:
            until_ps = self.sim.now
        elapsed = until_ps - self._start_ps
        if elapsed <= 0:
            return 0.0
        return self.busy_ps / elapsed

    def reset(self) -> None:
        """Restart accounting from the current time."""
        self.busy_ps = 0
        self.transfers = 0
        self._start_ps = self.sim.now
