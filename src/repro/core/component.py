"""Base class for structural model components.

A :class:`Component` is anything with a name, a simulator, optionally a clock
domain, and zero or more processes: bus nodes, bridges, memories, traffic
generators, CPU models.  The class only provides plumbing — hierarchy
tracking, process registration with readable names, and a hook for the
statistics system — so that model code stays focused on behaviour.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, List, Optional

from .events import Event, Process
from .kernel import Simulator

if TYPE_CHECKING:  # pragma: no cover
    from .clock import Clock


class Component:
    """A named piece of the platform hierarchy."""

    def __init__(self, sim: Simulator, name: str,
                 clock: Optional["Clock"] = None,
                 parent: Optional["Component"] = None) -> None:
        self.sim = sim
        self.name = name
        self.clock = clock
        self.parent = parent
        self.children: List[Component] = []
        self.processes: List[Process] = []
        if parent is not None:
            parent.children.append(self)

    # ------------------------------------------------------------------
    @property
    def path(self) -> str:
        """Hierarchical path, e.g. ``platform.n8.arbiter``."""
        if self.parent is None:
            return self.name
        return f"{self.parent.path}.{self.name}"

    def process(self, generator: Generator[Event, Any, Any],
                name: str = "") -> Process:
        """Register a process owned by this component."""
        label = f"{self.path}.{name}" if name else self.path
        proc = self.sim.process(generator, name=label)
        self.processes.append(proc)
        return proc

    def iter_tree(self):
        """Yield this component and all descendants, depth first."""
        yield self
        for child in self.children:
            yield from child.iter_tree()

    def find(self, path: str) -> "Component":
        """Look up a descendant by dotted relative path."""
        node: Component = self
        for part in path.split("."):
            for child in node.children:
                if child.name == part:
                    node = child
                    break
            else:
                raise KeyError(f"no component {part!r} under {node.path!r}")
        return node

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.path}>"
