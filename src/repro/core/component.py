"""Base class for structural model components.

A :class:`Component` is anything with a name, a simulator, optionally a clock
domain, and zero or more processes: bus nodes, bridges, memories, traffic
generators, CPU models.  The class only provides plumbing — hierarchy
tracking, process registration with readable names, a hook for the
statistics system, and the checkpoint state protocol — so that model code
stays focused on behaviour.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Generator, Iterator, List, Optional

from .events import Event, Process
from .kernel import Simulator

if TYPE_CHECKING:  # pragma: no cover
    from ..snapshot.state import StateEncoder
    from .clock import Clock


class Component:
    """A named piece of the platform hierarchy."""

    def __init__(self, sim: Simulator, name: str,
                 clock: Optional["Clock"] = None,
                 parent: Optional["Component"] = None) -> None:
        self.sim = sim
        self.name = name
        self.clock = clock
        self.parent = parent
        self.children: List[Component] = []
        self.processes: List[Process] = []
        if parent is not None:
            parent.children.append(self)

    # ------------------------------------------------------------------
    @property
    def path(self) -> str:
        """Hierarchical path, e.g. ``platform.n8.arbiter``."""
        if self.parent is None:
            return self.name
        return f"{self.parent.path}.{self.name}"

    def process(self, generator: Generator[Event, Any, Any],
                name: str = "", immediate: bool = False) -> Process:
        """Register a process owned by this component.

        ``immediate`` is the LT-only mid-run spawn hint of
        :meth:`~repro.core.kernel.Simulator.process`.
        """
        label = f"{self.path}.{name}" if name else self.path
        proc = self.sim.process(generator, name=label, immediate=immediate)
        self.processes.append(proc)
        return proc

    def iter_tree(self) -> Iterator["Component"]:
        """Yield this component and all descendants, depth first."""
        yield self
        for child in self.children:
            yield from child.iter_tree()

    def find(self, path: str) -> "Component":
        """Look up a descendant by dotted relative path."""
        node: Component = self
        for part in path.split("."):
            for child in node.children:
                if child.name == part:
                    node = child
                    break
            else:
                raise KeyError(f"no component {part!r} under {node.path!r}")
        return node

    # ------------------------------------------------------------------
    # checkpoint state protocol
    # ------------------------------------------------------------------
    def snapshot_state(self, encoder: "StateEncoder") -> Dict[str, Any]:
        """Architectural state of this component at the current instant.

        Components override this to expose whatever distinguishes two runs
        at the same simulation time: FIFO contents, in-flight transactions,
        arbiter pointers, RNG stream positions, cache tags.  Values may be
        plain JSON types, floats, :class:`~repro.interconnect.types.Transaction`
        / ``ResponseBeat`` objects, enums, or nested containers of those —
        ``encoder`` canonicalises them (and provides ``digest()`` for bulky
        state).  Return ``{}`` (the default) when the component carries no
        state of its own; such components are omitted from the tree.
        """
        return {}

    def restore_state(self, state: Dict[str, Any],
                      encoder: "StateEncoder") -> None:
        """Adopt (or verify) stored checkpoint state for this component.

        Resume works by deterministic re-execution: the platform is
        re-elaborated and fast-forwarded to the checkpoint instant, so by
        the time this hook runs the component should already *be* in the
        stored state.  The default therefore re-captures
        :meth:`snapshot_state` and verifies it bit for bit against
        ``state``, raising :class:`~repro.snapshot.StateMismatch` on any
        divergence.  Components whose state can instead be directly
        installed may override this to do so.
        """
        from ..snapshot.checkpoint import StateMismatch
        from ..snapshot.state import diff_states

        actual = encoder.encode(self.snapshot_state(encoder))
        if actual != state:
            diffs = diff_states(state, actual, prefix=self.path)
            raise StateMismatch(
                f"component {self.path!r} diverged from checkpoint", diffs)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.path}>"
