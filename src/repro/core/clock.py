"""Clock domains.

Industrial MPSoC platforms are heavily multi-clock: in the reference platform
the ST220 runs at 400 MHz, the central STBus node at 250 MHz, peripheral
clusters and the LMI memory controller at their own rates.  A :class:`Clock`
converts between cycles and kernel picoseconds and hands out *edge events*.

The one invariant every bus model relies on: :meth:`Clock.edge` resolves to
the **next strictly future** rising edge.  A process woken at an edge that
immediately yields ``clock.edge()`` therefore advances exactly one period —
there is no way to observe the same edge twice.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from .events import Timeout, PRIORITY_NORMAL

if TYPE_CHECKING:  # pragma: no cover
    from .kernel import Simulator

#: Picoseconds per second, used to convert frequencies to integer periods.
_PS_PER_S = 1_000_000_000_000


class Clock:
    """A periodic rising-edge source.

    Parameters
    ----------
    freq_mhz:
        Frequency in MHz.  Mutually exclusive with ``period_ps``.
    period_ps:
        Period in integer picoseconds.
    phase_ps:
        Offset of the first rising edge from time zero.
    """

    def __init__(self, sim: "Simulator", freq_mhz: Optional[float] = None,
                 period_ps: Optional[int] = None, phase_ps: int = 0,
                 name: str = "clk") -> None:
        if (freq_mhz is None) == (period_ps is None):
            raise ValueError("specify exactly one of freq_mhz / period_ps")
        if period_ps is None:
            period_ps = round(_PS_PER_S / (freq_mhz * 1_000_000))
        if period_ps <= 0:
            raise ValueError(f"non-positive clock period {period_ps}")
        if phase_ps < 0:
            raise ValueError(f"negative clock phase {phase_ps}")
        self.sim = sim
        self.name = name
        self.period_ps = int(period_ps)
        self.phase_ps = int(phase_ps)
        # Event labels are precomputed: an f-string per edge wait is pure
        # overhead on the hottest allocation site in the simulator.
        self._edge_name = name + ".edge"
        self._delay_name = name + ".delay"

    # ------------------------------------------------------------------
    @property
    def freq_mhz(self) -> float:
        """Nominal frequency in MHz (derived from the integer period)."""
        return _PS_PER_S / self.period_ps / 1_000_000

    def cycle_index(self, time_ps: Optional[int] = None) -> int:
        """Number of rising edges at or before ``time_ps`` (default: now)."""
        if time_ps is None:
            time_ps = self.sim.now
        if time_ps < self.phase_ps:
            return 0
        return (time_ps - self.phase_ps) // self.period_ps + 1

    def next_edge_time(self, time_ps: Optional[int] = None) -> int:
        """Absolute time of the next strictly-future rising edge."""
        if time_ps is None:
            time_ps = self.sim.now
        if time_ps < self.phase_ps:
            return self.phase_ps
        since = (time_ps - self.phase_ps) % self.period_ps
        return time_ps + (self.period_ps - since)

    def at_edge(self, time_ps: Optional[int] = None) -> bool:
        """True when ``time_ps`` (default now) falls exactly on a rising edge."""
        if time_ps is None:
            time_ps = self.sim.now
        return time_ps >= self.phase_ps and (
            (time_ps - self.phase_ps) % self.period_ps == 0)

    # ------------------------------------------------------------------
    # events
    # ------------------------------------------------------------------
    def edge(self, priority: int = PRIORITY_NORMAL) -> Timeout:
        """Event firing at the next strictly-future rising edge.

        The returned timeout comes from the simulator's reuse pool: yield
        it (or attach a callback) and forget it.  Holding one across a
        later edge wait is not supported — see
        :meth:`~repro.core.kernel.Simulator.pooled_timeout`.
        """
        sim = self.sim
        now = sim._now
        phase = self.phase_ps
        # Inlined next_edge_time(): one frame less per edge wait, and edge
        # waits are most of what a cycle-accurate platform schedules.
        if now < phase:
            delay = phase - now
        else:
            period = self.period_ps
            delay = period - (now - phase) % period
        return sim.pooled_timeout(delay, priority=priority,
                                  name=self._edge_name)

    def edges(self, n: int, priority: int = PRIORITY_NORMAL) -> Timeout:
        """Event firing ``n`` rising edges from now (``n`` >= 1).

        Pooled, like :meth:`edge`."""
        if n < 1:
            raise ValueError(f"edges() needs n >= 1, got {n}")
        sim = self.sim
        target = self.next_edge_time() + (n - 1) * self.period_ps
        return sim.pooled_timeout(target - sim._now, priority=priority,
                                  name=self._edge_name)

    def delay(self, cycles: int) -> Timeout:
        """Event firing exactly ``cycles`` periods from *now* (not aligned).

        Use :meth:`edges` for edge-aligned waits; this is for modelling
        latencies quoted in cycles that start mid-cycle (e.g. combinational
        paths crossing a node).  Pooled, like :meth:`edge`.
        """
        if cycles < 0:
            raise ValueError(f"negative cycle delay {cycles}")
        return self.sim.pooled_timeout(cycles * self.period_ps,
                                       name=self._delay_name)

    def to_ps(self, cycles: int) -> int:
        """Convert a cycle count to picoseconds."""
        return cycles * self.period_ps

    def to_cycles(self, duration_ps: int) -> float:
        """Convert a picosecond duration to (possibly fractional) cycles."""
        return duration_ps / self.period_ps

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Clock {self.name} {self.freq_mhz:.1f} MHz>"
