"""Stall diagnosis for stuck simulations.

When a platform fails to drain (a transaction never completes and the
event queue runs dry), the symptom is silent.  :func:`diagnose` walks a
component tree and reports, per component, every live process and the
event it is blocked on, plus the fill state of every FIFO reachable from
the component's attributes — usually enough to spot the wedged handshake
immediately (it is how the message-lock and lost-wakeup deadlocks in this
code base were found).
"""

from __future__ import annotations

from typing import List

from .component import Component
from .fifo import Fifo


def _fifos_of(obj) -> List[Fifo]:
    """FIFOs directly reachable from ``obj``'s attributes."""
    found = []
    for value in vars(obj).values():
        if isinstance(value, Fifo):
            found.append(value)
    return found


def diagnose(root: Component) -> str:
    """A human-readable stall report for ``root``'s component tree."""
    lines = [f"stall diagnosis of {root.path!r} at t={root.sim.now} ps",
             f"event queue: {'empty' if root.sim.peek() is None else 'non-empty'}"]
    for component in root.iter_tree():
        entries = []
        for proc in component.processes:
            if not proc.is_alive:
                continue
            target = proc._target
            where = repr(target) if target is not None else "(running)"
            entries.append(f"    process {proc.name}: waiting on {where}")
        for fifo in _fifos_of(component):
            state = "empty" if fifo.is_empty else (
                "FULL" if fifo.is_full else f"{fifo.level}/{fifo.capacity}")
            waiters = ""
            if fifo._put_waiters:
                waiters += f" [{len(fifo._put_waiters)} blocked put(s)]"
            if fifo._get_waiters:
                waiters += f" [{len(fifo._get_waiters)} blocked get(s)]"
            entries.append(f"    fifo {fifo.name}: {state}{waiters}")
        if entries:
            lines.append(f"  {component.path}:")
            lines.extend(entries)
    return "\n".join(lines)


def incomplete_transactions(transactions) -> List:
    """Filter a transaction population down to the never-completed ones."""
    return [txn for txn in transactions if txn.t_done is None]


def stall_summary(root: Component, transactions) -> str:
    """Diagnosis plus the stuck-transaction list (the usual entry point)."""
    stuck = incomplete_transactions(transactions)
    lines = [f"{len(stuck)} transaction(s) never completed"]
    for txn in stuck[:10]:
        lines.append(f"  {txn!r} issued={txn.t_issued} "
                     f"granted={txn.t_granted} accepted={txn.t_accepted}")
    if len(stuck) > 10:
        lines.append(f"  ... and {len(stuck) - 10} more")
    lines.append(diagnose(root))
    return "\n".join(lines)
