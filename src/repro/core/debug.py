"""Stall diagnosis for stuck simulations.

When a platform fails to drain (a transaction never completes and the
event queue runs dry), the symptom is silent.  :func:`diagnose` walks a
component tree and reports, per component, every live process and the
event it is blocked on, plus the fill state of every FIFO reachable from
the component's attributes — usually enough to spot the wedged handshake
immediately (it is how the message-lock and lost-wakeup deadlocks in this
code base were found).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional

from .component import Component
from .events import Event
from .fifo import Fifo
from .kernel import Simulator


def _fifos_of(obj: object) -> List[Fifo]:
    """FIFOs directly reachable from ``obj``'s attributes."""
    found = []
    for value in vars(obj).values():
        if isinstance(value, Fifo):
            found.append(value)
    return found


def _scheduled_wakes(sim: Simulator) -> Dict[int, int]:
    """Earliest scheduled fire time per queued event, keyed by ``id()``."""
    table: Dict[int, int] = {}
    for when, _priority, _sequence, event in sim._queue:
        known = table.get(id(event))
        if known is None or when < known:
            table[id(event)] = when
    return table


def _wake_time(event: Event, table: Dict[int, int]) -> Optional[int]:
    """When ``event`` will fire, if anything scheduled leads to it.

    Composite conditions (``AllOf``/``AnyOf``) are resolved through their
    child events: the earliest scheduled child is reported, which is exact
    for *any-of* and a lower bound for *all-of* — either way it proves the
    wait is drainable, which is what separates slow-drain from deadlock.
    """
    when = table.get(id(event))
    if when is not None:
        return when
    children = getattr(event, "events", None)
    if children:
        child_times = [_wake_time(child, table) for child in children]
        known = [t for t in child_times if t is not None]
        if known:
            return min(known)
    return None


def diagnose(root: Component) -> str:
    """A human-readable stall report for ``root``'s component tree.

    Every blocked process shows its scheduled wake time when one exists
    ("no scheduled wake" is the deadlock signature), and every FIFO shows
    its high-water mark so undersized buffers stand out even after they
    drained.
    """
    lines = [f"stall diagnosis of {root.path!r} at t={root.sim.now} ps",
             f"event queue: {'empty' if root.sim.peek() is None else 'non-empty'}"]
    wakes = _scheduled_wakes(root.sim)
    for component in root.iter_tree():
        entries = []
        for proc in component.processes:
            if not proc.is_alive:
                continue
            target = proc._target
            if target is None:
                entries.append(f"    process {proc.name}: (running)")
                continue
            when = _wake_time(target, wakes)
            fate = (f"wakes at t={when} ps" if when is not None
                    else "no scheduled wake")
            entries.append(
                f"    process {proc.name}: waiting on {target!r} ({fate})")
        for fifo in _fifos_of(component):
            state = "empty" if fifo.is_empty else (
                "FULL" if fifo.is_full else f"{fifo.level}/{fifo.capacity}")
            waiters = ""
            if fifo._put_waiters:
                waiters += f" [{len(fifo._put_waiters)} blocked put(s)]"
            if fifo._get_waiters:
                waiters += f" [{len(fifo._get_waiters)} blocked get(s)]"
            entries.append(f"    fifo {fifo.name}: {state}{waiters} "
                           f"high_water={fifo.high_water}")
        if entries:
            lines.append(f"  {component.path}:")
            lines.extend(entries)
    return "\n".join(lines)


def incomplete_transactions(transactions: Iterable[Any]) -> List[Any]:
    """Filter a transaction population down to the never-completed ones."""
    return [txn for txn in transactions if txn.t_done is None]


def stall_summary(root: Component, transactions: Iterable[Any]) -> str:
    """Diagnosis plus the stuck-transaction list (the usual entry point)."""
    stuck = incomplete_transactions(transactions)
    lines = [f"{len(stuck)} transaction(s) never completed"]
    for txn in stuck[:10]:
        lines.append(f"  {txn!r} issued={txn.t_issued} "
                     f"granted={txn.t_granted} accepted={txn.t_accepted}")
    if len(stuck) > 10:
        lines.append(f"  ... and {len(stuck) - 10} more")
    lines.append(diagnose(root))
    return "\n".join(lines)
