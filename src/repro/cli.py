"""Command-line interface.

::

    python -m repro list                         # available experiments
    python -m repro run fig5 --scale 0.5         # run one, print the figure
    python -m repro run all --jobs 4             # the whole evaluation, parallel
    python -m repro run fig5 --trace out.json    # ... with a Perfetto trace
    python -m repro platform my_platform.json    # simulate a config file
    python -m repro sweep my_sweep.json --jobs 4 # design-space sweep file
    python -m repro dse my_dse.json --jobs 4     # Pareto search over a space
    python -m repro trace fig5                   # lifecycle trace + hop table
    python -m repro stats fig6 --json out.json   # flat metric dump
    python -m repro stats fig5 --energy          # + per-component energy
    python -m repro stats my_platform.json --energy  # config files work too
    python -m repro protocols                    # bus-protocol registry table
    python -m repro protocols --plan axi apb     # derived bridge conversion plan
    python -m repro bench                        # kernel perf -> BENCH_kernel.json
    python -m repro check fig5 --strict          # run under invariant monitors
    python -m repro check my_platform.json --diff # + fast-vs-reference diff

Each experiment prints the paper-style report and the outcome of its shape
checks; the process exits non-zero if any claim fails, so the CLI is
usable in CI.  ``trace``/``stats`` (and the ``--trace`` flag) run the
experiment under an observability capture — see ``docs/OBSERVABILITY.md``.
``--jobs``/``sweep`` fan independent configurations out across worker
processes with on-disk result caching — see ``docs/PERFORMANCE.md``.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Callable, Dict, List, Optional, Tuple

from . import experiments
from .analysis import format_table

#: name -> (description, runner(scale) -> (data, report_text, failures))
Registry = Dict[str, Tuple[str, Callable]]


def _wrap(module, **fixed):
    def runner(scale: float, jobs: Optional[int] = None):
        data = module.run(traffic_scale=scale, jobs=jobs, **fixed)
        return data, module.report(data), module.check(data)
    return runner


def _wrap_single_layer_m2m():
    def runner(scale: float, jobs: Optional[int] = None):
        transactions = max(8, int(50 * scale))
        data = experiments.single_layer.run_many_to_many(
            transactions=transactions, jobs=jobs)
        return (data, experiments.single_layer.report_many_to_many(data),
                experiments.single_layer.check_many_to_many(data))
    return runner


def _wrap_single_layer_m2o():
    def runner(scale: float, jobs: Optional[int] = None):
        transactions = max(8, int(60 * scale))
        data = experiments.single_layer.run_many_to_one(
            transactions=transactions, jobs=jobs)
        return (data, experiments.single_layer.report_many_to_one(data),
                experiments.single_layer.check_many_to_one(data))
    return runner


def _wrap_arbitration():
    def runner(scale: float, jobs: Optional[int] = None):
        transactions = max(8, int(40 * scale))
        data = experiments.arbitration_study.run(transactions=transactions,
                                                 jobs=jobs)
        return (data, experiments.arbitration_study.report(data),
                experiments.arbitration_study.check(data))
    return runner


def _wrap_segmentation():
    def runner(scale: float, jobs: Optional[int] = None):
        transactions = max(8, int(20 * scale))
        data = experiments.path_segmentation.run(transactions=transactions,
                                                 jobs=jobs)
        return (data, experiments.path_segmentation.report(data),
                experiments.path_segmentation.check(data))
    return runner


def _wrap_io_qos():
    def runner(scale: float, jobs: Optional[int] = None):
        lines = max(10, int(40 * scale))
        data = experiments.io_qos.run(lines=lines, jobs=jobs)
        return (data, experiments.io_qos.report(data),
                experiments.io_qos.check(data))
    return runner


def _wrap_crossbar_dse():
    def runner(scale: float, jobs: Optional[int] = None):
        data = experiments.crossbar_dse.run(traffic_scale=scale, jobs=jobs)
        return (data, experiments.crossbar_dse.report(data),
                experiments.crossbar_dse.check(data))
    return runner


def registry() -> Registry:
    return {
        "s411": ("Section 4.1.1 — many-to-many single layer",
                 _wrap_single_layer_m2m()),
        "s412": ("Section 4.1.2 — many-to-one single layer",
                 _wrap_single_layer_m2o()),
        "fig3": ("Fig. 3 — platform instances, on-chip memory",
                 _wrap(experiments.fig3_platform_instances)),
        "fig4": ("Fig. 4 — distributed vs centralized vs memory speed",
                 _wrap(experiments.fig4_memory_speed)),
        "fig5": ("Fig. 5 — platform instances with LMI + DDR",
                 _wrap(experiments.fig5_lmi_platforms)),
        "fig6": ("Fig. 6 — LMI bus-interface statistics",
                 _wrap(experiments.fig6_lmi_statistics)),
        "ablations": ("Section 6 — guideline ablations",
                      _wrap(experiments.ablations)),
        "arbitration": ("Extension — arbitration policy study",
                        _wrap_arbitration()),
        "segmentation": ("Extension — path segmentation (guideline 5)",
                         _wrap_segmentation()),
        "io_qos": ("Extension — display QoS under DMA contention "
                   "(guideline 4)", _wrap_io_qos()),
        "crossbar_dse": ("Extension — application-specific crossbar "
                         "choice via Pareto search", _wrap_crossbar_dse()),
    }


def cmd_list(_args) -> int:
    rows = [[name, description] for name, (description, __)
            in registry().items()]
    print(format_table(["experiment", "reproduces"], rows))
    return 0


def cmd_run(args) -> int:
    table = registry()
    names = list(table) if args.experiment == "all" else [args.experiment]
    unknown = [n for n in names if n not in table]
    if unknown:
        print(f"unknown experiment(s): {unknown}; try 'list'",
              file=sys.stderr)
        return 2
    if getattr(args, "trace", None) and (args.jobs or 0) > 1:
        print("note: --trace captures only in-process simulators; "
              "running serially", file=sys.stderr)
    session = _start_capture(args)
    status = 0
    # finally: even when a runner raises, the ambient capture hook must
    # be uninstalled (it is process-wide) and the trace file written.
    try:
        for name in names:
            description, runner = table[name]
            print(f"\n### {name}: {description}\n")
            __, report, failures = runner(args.scale, args.jobs)
            print(report)
            if failures:
                status = 1
                print("\nFAILED shape claims:")
                for failure in failures:
                    print(f"  - {failure}")
            else:
                print("\nall shape claims hold")
    finally:
        _finish_capture(args, session)
    return status


def cmd_platform(args) -> int:
    from .core import Simulator
    from .platforms import build_platform
    from .platforms.loader import ConfigError, load_config

    try:
        config = load_config(args.config)
    except ConfigError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.mode:
        config = config.scaled(resolution=args.mode)
    session = _start_capture(args)
    # finally: a failing run must still uninstall the process-wide
    # capture hook and write the trace collected so far.
    try:
        max_ps = int(args.max_us * 1_000_000)
        if args.checkpoint_every:
            from .snapshot import run_with_checkpoints

            result, saved = run_with_checkpoints(
                config, every_ps=int(args.checkpoint_every * 1_000_000),
                out_dir=args.checkpoint_dir, max_ps=max_ps)
            for path in saved:
                print(f"checkpoint: {path}")
        else:
            sim = Simulator()
            platform = build_platform(sim, config)
            result = platform.run(max_ps=max_ps)
    finally:
        _finish_capture(args, session)
    print(f"platform:        {config.label()}")
    print(f"resolution:      {config.resolution}")
    print(f"execution time:  {result.execution_time_ps / 1_000_000:.3f} us")
    print(f"transactions:    {result.transactions}")
    print(f"bytes:           {result.bytes_transferred}")
    print(f"throughput:      {result.throughput_bytes_per_ns:.3f} B/ns")
    if result.energy_total_pj:
        print(f"energy:          {result.energy_total_pj:.1f} pJ "
              f"({result.pj_per_byte:.3f} pJ/B)")
    for key, value in sorted(result.extra.items()):
        print(f"{key + ':':<17}{value:.2f}")
    if args.csv:
        from .analysis import results_to_csv

        results_to_csv(args.csv, [result])
        print(f"\nwrote {args.csv}")
    return 0


def _start_capture(args):
    """Enter an observability capture when ``--trace PATH`` was given."""
    if not getattr(args, "trace", None):
        return None
    from .obs import capture

    manager = capture()
    return manager, manager.__enter__()


def _finish_capture(args, session) -> None:
    """Close the capture and write the Perfetto trace file."""
    if session is None:
        return
    manager, cap = session
    manager.__exit__(None, None, None)
    span_count = cap.write_trace(args.trace)
    print(f"\nwrote {span_count} spans "
          f"({len(cap.completed())} completed transactions) to {args.trace}")


def cmd_trace(args) -> int:
    table = registry()
    if args.experiment not in table:
        print(f"unknown experiment {args.experiment!r}; try 'list'",
              file=sys.stderr)
        return 2
    from .obs import capture

    description, runner = table[args.experiment]
    print(f"### {args.experiment}: {description} (tracing)\n")
    with capture() as cap:
        runner(args.scale)
    out = args.out or f"trace_{args.experiment}.json"
    span_count = cap.write_trace(out)
    completed = len(cap.completed())
    print(f"captured {len(cap.transactions())} transactions "
          f"({completed} completed) across {len(cap.recorders)} simulator(s)")
    print(f"wrote {span_count} spans to {out} "
          f"(load in ui.perfetto.dev or chrome://tracing)\n")
    print(cap.format_summary())
    return 0


def _energy_report(cap) -> str:
    """Aggregate energy breakdown across a capture's accountants.

    Per-component rows are the conserving ledger (they sum to the total);
    the initiator view only covers requester-attributable charges, so it
    is reported without shares.  ``pJ/byte`` divides by the completed
    payload bytes — zero-traffic runs report 0.0 rather than dividing.
    """
    components: Dict[str, float] = {}
    initiators: Dict[str, float] = {}
    total_pj = 0.0
    for accountant in cap.accountants:
        if accountant is None:
            continue
        total_pj += accountant.total_pj
        for name, pj in accountant.component_pj().items():
            components[name] = components.get(name, 0.0) + pj
        for name, pj in accountant.initiator_pj().items():
            initiators[name] = initiators.get(name, 0.0) + pj
    total_bytes = sum(txn.beats * txn.beat_bytes for txn in cap.completed())
    lines = ["### energy breakdown\n"]
    comp_rows = [[name, f"{pj:.1f}",
                  f"{100 * pj / total_pj:.1f}%" if total_pj else "-"]
                 for name, pj in sorted(components.items(),
                                        key=lambda kv: -kv[1])]
    lines.append(format_table(["component", "pJ", "share"], comp_rows))
    if initiators:
        init_rows = [[name, f"{pj:.1f}"]
                     for name, pj in sorted(initiators.items(),
                                            key=lambda kv: -kv[1])]
        lines.append("")
        lines.append(format_table(["initiator", "pJ"], init_rows))
    pj_per_byte = total_pj / total_bytes if total_bytes else 0.0
    lines.append(f"\ntotal energy:  {total_pj:.1f} pJ")
    lines.append(f"payload bytes: {total_bytes}")
    lines.append(f"pJ per byte:   {pj_per_byte:.3f}")
    return "\n".join(lines)


def cmd_stats(args) -> int:
    """Metric dump for an experiment name or a platform config JSON."""
    from .obs import capture, metrics_csv, metrics_json, metrics_text

    table = registry()
    if args.target in table:
        description, runner = table[args.target]
        title = f"{args.target}: {description}"
        with capture(energy=args.energy) as cap:
            runner(args.scale)
    else:
        from .core import Simulator
        from .platforms import build_platform
        from .platforms.loader import ConfigError, load_config

        try:
            config = load_config(args.target)
        except (OSError, ConfigError) as exc:
            print(f"error: {args.target!r} is neither an experiment "
                  f"(try 'list') nor a readable platform config: {exc}",
                  file=sys.stderr)
            return 2
        title = config.label()
        with capture(energy=args.energy) as cap:
            sim = Simulator()
            platform = build_platform(sim, config)
            platform.run(max_ps=int(args.max_us * 1_000_000))
    rows = cap.metrics_snapshot()
    sim_time = max((sim.now for sim in cap.simulators), default=0)
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            handle.write(metrics_json(rows, sim_time_ps=sim_time,
                                      experiment=args.target))
        print(f"wrote {len(rows)} metric rows to {args.json}")
    if args.csv:
        with open(args.csv, "w", encoding="utf-8") as handle:
            handle.write(metrics_csv(rows))
        print(f"wrote {len(rows)} metric rows to {args.csv}")
    if not args.json and not args.csv:
        print(f"### {title} — {len(rows)} metric rows\n")
        print(metrics_text(rows, prefix=args.prefix))
    if args.energy:
        print()
        print(_energy_report(cap))
    return 0


def cmd_sweep(args) -> int:
    import dataclasses

    from .platforms.loader import ConfigError
    from .sweep import SweepCache, SweepError, load_sweep, sweep

    try:
        spec = load_sweep(args.spec)
    except ConfigError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    jobs = args.jobs if args.jobs is not None else spec.jobs
    if args.no_cache:
        cache = False
    elif args.cache_dir:
        cache = SweepCache(args.cache_dir)
    else:
        cache = None  # the default on-disk cache
    try:
        outcomes = sweep(spec.configs, max_ps=spec.max_ps, jobs=jobs,
                         cache=cache, timeout_s=args.timeout)
    except SweepError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    results = [dataclasses.replace(outcome.result, label=label)
               for label, outcome in zip(spec.labels, outcomes)]
    # Energy columns appear when any point carried an enabled energy
    # block; points are then comparable by energy-delay product.
    energy_on = any(result.energy_total_pj for result in results)
    rows = []
    for label, outcome, result in zip(spec.labels, outcomes, results):
        row = [label, result.execution_time_ns, result.transactions,
               result.throughput_bytes_per_ns]
        if energy_on:
            row += [f"{result.energy_total_pj:.0f}",
                    f"{result.energy_delay_product:.3e}"]
        row.append("hit" if outcome.cached else "run")
        rows.append(row)
    headers = (["point", "exec (ns)", "transactions", "B/ns"]
               + (["energy (pJ)", "EDP (pJ*ns)"] if energy_on else [])
               + ["cache"])
    print(format_table(headers, rows))
    hits = sum(1 for outcome in outcomes if outcome.cached)
    print(f"\n{len(outcomes)} point(s), {hits} served from cache, "
          f"jobs={jobs or 1}")
    if energy_on:
        best = min(results, key=lambda r: r.energy_delay_product)
        print(f"best energy-delay product: {best.label} "
              f"({best.energy_delay_product:.3e} pJ*ns)")
    if args.csv:
        from .analysis import results_to_csv

        results_to_csv(args.csv, results)
        print(f"wrote {args.csv}")
    return 0


def cmd_dse(args) -> int:
    """Search a declarative design space and print its Pareto front.

    The spec file names the base platform, the axes (topology, protocol,
    arbitration, FIFO depths, LMI lookahead, dotted config paths), the
    objectives and the optimizer knobs — see docs/DSE.md.  The returned
    front is re-checked by an independent verifier before anything is
    printed; a verification failure exits non-zero.
    """
    from .dse import explore, front_csv, front_json, front_table, load_dse
    from .platforms.loader import ConfigError
    from .sweep import SweepError

    try:
        spec = load_dse(args.spec)
    except ConfigError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    overrides = {"jobs": args.jobs, "seed": args.seed,
                 "screen": args.screen}
    if args.no_cache:
        overrides["cache"] = False
    try:
        outcome = explore(spec, **overrides)
    except ConfigError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except (SweepError, RuntimeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(f"### dse {args.spec} — {outcome.mode} search over "
          f"{outcome.space_size} assignments\n")
    print(front_table(outcome))
    screens = len(outcome.pruned)
    print(f"\n{len(outcome.front)} front member(s) from "
          f"{len(outcome.evaluated)} accurate evaluation(s)"
          + (f"; {screens} candidate(s) pruned from loosely-timed "
             f"screening alone" if screens else "")
          + f"; objectives: {', '.join(outcome.objectives)}")
    print("front verified non-dominated by the independent checker")
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            handle.write(front_json(outcome))
        print(f"wrote {args.json}")
    if args.csv:
        with open(args.csv, "w", encoding="utf-8") as handle:
            handle.write(front_csv(outcome))
        print(f"wrote {args.csv}")
    return 0


def cmd_check(args) -> int:
    """Run a target under the full invariant-monitor suite.

    The target is an experiment name (``repro check fig5``), a platform
    config JSON or a sweep spec JSON (every point is checked serially).
    ``--diff`` additionally runs config targets through the differential
    harness, comparing the fast-path and reference kernels bit for bit.
    """
    from .check import CheckedRun, checked, format_report

    table = registry()
    violations = []
    mismatches: List[str] = []
    if args.target in table:
        if args.diff:
            print("note: --diff applies to config targets; running the "
                  "experiment under monitors only", file=sys.stderr)
        description, runner = table[args.target]
        print(f"### check {args.target}: {description}\n")
        # Serial on purpose: monitors attach to in-process simulators, and
        # the sweep engine already refuses to fan out or serve cache hits
        # while a construction hook is installed.
        with checked() as session:
            runner(args.scale, 1)
        violations = session.finalize()
        print(f"checked {len(session.checkers)} simulator(s)")
    else:
        import json

        from .core import Simulator
        from .platforms import build_platform
        from .platforms.loader import ConfigError, load_config

        try:
            with open(args.target, encoding="utf-8") as handle:
                document = json.load(handle)
        except (OSError, ValueError) as exc:
            print(f"error: {args.target!r} is neither an experiment "
                  f"(try 'list') nor a readable JSON file: {exc}",
                  file=sys.stderr)
            return 2
        max_ps = int(args.max_us * 1_000_000)
        if isinstance(document, dict) and \
                ("points" in document or "grid" in document):
            from .sweep import load_sweep

            spec = load_sweep(args.target)
            targets = list(zip(spec.labels, spec.configs))
            max_ps = spec.max_ps
        else:
            try:
                config = load_config(args.target)
            except ConfigError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
            targets = [(config.label(), config)]
        for label, config in targets:
            if args.diff:
                outcome = CheckedRun(config, max_ps=max_ps)
                violations.extend(outcome.violations)
                mismatches.extend(f"{label}: {m}"
                                  for m in outcome.mismatches)
                print(f"checked {label}: {outcome.fast_events} events, "
                      f"fast vs reference "
                      f"{'identical' if not outcome.mismatches else 'DIVERGED'}")
            else:
                with checked() as session:
                    sim = Simulator()
                    platform = build_platform(sim, config)
                    platform.run(max_ps=max_ps)
                violations.extend(session.finalize())
                print(f"checked {label}: {sim.processed_events} events")
    print()
    if mismatches:
        print("fast path diverged from the reference kernel:")
        for mismatch in mismatches:
            print(f"  {mismatch}")
    print(format_report(violations, limit=args.limit))
    if args.strict and (violations or mismatches):
        return 1
    return 0


def cmd_snapshot(args) -> int:
    """Checkpoint/resume operations and golden-corpus maintenance.

    ``repro snapshot --refresh-golden``       regenerate tests/golden/
    ``repro snapshot --verify-golden``        replay the committed corpus
    ``repro snapshot --summary``              list the committed corpus
    ``repro snapshot take cfg.json [...]``    checkpoint a config mid-run
    ``repro snapshot resume file.ckpt.json``  resume + verify bit-identity
    """
    from .snapshot import (
        SnapshotError,
        corpus_summary,
        load_checkpoint,
        refresh_golden,
        resume_checkpoint,
        save_checkpoint,
        take_checkpoint,
        verify_golden,
    )

    try:
        if args.refresh_golden:
            written = refresh_golden(names=args.only or None)
            for path in written:
                print(f"wrote {path}")
            print(f"{len(written)} golden checkpoint(s) refreshed")
            return 0
        if args.verify_golden:
            failures = verify_golden()
            if failures:
                print(f"{len(failures)} golden replay failure(s):")
                for failure in failures:
                    print(f"  - {failure}")
                return 1
            print("golden corpus replayed bit-identically")
            return 0
        if args.summary:
            print(corpus_summary())
            return 0
        if args.action and not args.target:
            print(f"error: snapshot {args.action} needs a target file",
                  file=sys.stderr)
            return 2
        if args.action == "take":
            from .platforms.loader import ConfigError, load_config

            try:
                config = load_config(args.target)
            except ConfigError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
            at_ps = int(args.at_us * 1_000_000) if args.at_us else None
            outcome = take_checkpoint(config, at_ps=at_ps,
                                      fraction=args.fraction,
                                      max_ps=int(args.max_us * 1_000_000))
            path = save_checkpoint(outcome.checkpoint, args.out)
            print(f"checkpoint at {outcome.checkpoint.at_ps}ps "
                  f"({outcome.checkpoint.events} events) -> {path}")
            print(f"run finished at {outcome.final_time_ps}ps "
                  f"({outcome.final_events} events)")
            return 0
        if args.action == "resume":
            checkpoint = load_checkpoint(args.target)
            outcome = resume_checkpoint(checkpoint)
            print(outcome.format())
            return 0 if outcome.ok else 1
    except SnapshotError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print("nothing to do: pass take/resume or a --*-golden/--summary flag "
          "(see repro snapshot --help)", file=sys.stderr)
    return 2


def cmd_protocols(args) -> int:
    """Inspect the protocol registry and the derived bridge matrix.

    ``repro protocols``                 registry table
    ``repro protocols --matrix``        every derived conversion plan
    ``repro protocols --plan SRC DST``  one pairing's plan (validated)
    """
    from .bridge.matrix import bridge_matrix, conversion_plan
    from .interconnect.protocols import PROTOCOLS
    from .platforms.loader import ConfigError

    if args.plan:
        source, dest = args.plan
        try:
            plan = conversion_plan(source, dest)
        except ConfigError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(plan.describe())
        return 0
    if args.matrix:
        matrix = bridge_matrix()
        for key in sorted(matrix):
            print(matrix[key].describe())
        print(f"\n{len(matrix)} derived pairings")
        return 0
    rows = []
    for name in sorted(PROTOCOLS):
        spec = PROTOCOLS[name]
        caps = [flag for flag, on in (
            ("split", spec.split), ("posted", spec.posted_writes),
            ("pipelined", spec.pipelined),
            ("interleave", spec.response_interleave)) if on]
        if spec.max_burst_beats == 1:
            caps.append("single-beat")
        rows.append([name, spec.title, spec.family, spec.engine,
                     spec.platform_key or "-",
                     ",".join(caps) or "-"])
    print(format_table(
        ["protocol", "title", "family", "engine", "platform", "semantics"],
        rows))
    print(f"\n{len(rows)} registered protocols "
          "(see docs/PROTOCOLS.md to add one)")
    return 0


def _service_endpoint(url: str) -> Tuple[str, int]:
    """Split ``--url http://host:port`` into a client endpoint."""
    from urllib.parse import urlsplit

    split = urlsplit(url if "//" in url else f"http://{url}")
    return split.hostname or "127.0.0.1", split.port or 8458


def cmd_serve(args) -> int:
    """Run the simulation job service in the foreground.

    Accepts config/sweep submissions over HTTP (and optionally a local
    socket), shards them across the worker fleet, dedupes through the
    shared sweep cache and streams progress back — see docs/SERVICE.md.
    """
    import asyncio

    from .service import ServiceConfig, ServiceServer

    if args.no_cache:
        cache = False
    else:
        cache = args.cache_dir  # None = the default on-disk sweep cache
    server = ServiceServer(ServiceConfig(
        host=args.host, port=args.port, socket_path=args.socket,
        fleet=args.workers, quota_units=args.quota,
        slice_ps=int(args.slice_us * 1_000_000),
        use_processes=args.processes, cache=cache))

    async def _serve() -> None:
        await server.start()
        print(f"repro service listening on "
              f"http://{args.host}:{server.port} "
              f"({args.workers} worker(s), quota {args.quota} "
              f"unit(s)/tenant)")
        if args.socket:
            print(f"local-socket queue: {args.socket}")
        try:
            assert server._http_server is not None
            await server._http_server.serve_forever()
        finally:
            await server.stop()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        print("\nservice stopped")
    return 0


def _load_submission_target(path: str) -> Dict:
    """A submit target is a platform config or a sweep spec file."""
    import json

    from .platforms.loader import ConfigError

    try:
        with open(path, encoding="utf-8") as handle:
            document = json.load(handle)
    except (OSError, ValueError) as exc:
        raise ConfigError(f"{path}: not a readable JSON file ({exc})") \
            from exc
    if not isinstance(document, dict):
        raise ConfigError(f"{path}: top level must be an object")
    if "points" in document or "grid" in document or "base" in document:
        return {"sweep": document}
    return {"config": document}


def cmd_submit(args) -> int:
    """Submit a config/sweep file to a running service."""
    from .platforms.loader import ConfigError
    from .service import ServiceClient, ServiceError

    try:
        submission = _load_submission_target(args.spec)
    except ConfigError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    submission["tenant"] = args.tenant
    submission["priority"] = args.priority
    if args.max_us is not None:
        submission["max_us"] = args.max_us
    if args.trace:
        submission["trace"] = True
    if args.preemptible:
        submission["preemptible"] = True
    if args.checkpoint_at_us is not None:
        submission["checkpoint_at_us"] = args.checkpoint_at_us

    host, port = _service_endpoint(args.url)
    client = ServiceClient(host, port)
    try:
        job = client.submit(submission)
        print(f"submitted {job['id']} "
              f"({job['progress']['units']} unit(s), "
              f"priority {job['priority']}, tenant {job['tenant']})")
        if not args.wait:
            return 0
        outcome = client.result(job["id"], wait=True, timeout=args.timeout)
    except ServiceError as exc:
        print(f"error [{exc.kind}]: {exc}", file=sys.stderr)
        return 1
    except OSError as exc:
        print(f"error: cannot reach the service at {args.url}: {exc}",
              file=sys.stderr)
        return 1
    return _print_job_results(outcome)


def _print_job_results(outcome: Dict) -> int:
    rows = []
    for row in outcome["results"]:
        result = row.get("result") or {}
        exec_ns = result.get("execution_time_ps", 0) / 1000
        rows.append([row["label"], row["state"],
                     row.get("cached") or "run",
                     row.get("preemptions", 0),
                     f"{exec_ns:.1f}", result.get("transactions", "-")])
    print(format_table(
        ["unit", "state", "source", "preempts", "exec (ns)", "txns"], rows))
    print(f"\njob {outcome['id']}: {outcome['state']}")
    if outcome.get("error"):
        print(f"error: {outcome['error']}", file=sys.stderr)
    return 0 if outcome["state"] == "done" else 1


def cmd_jobs(args) -> int:
    """Inspect a running service: jobs, results, events, workers."""
    from .service import ServiceClient, ServiceError

    host, port = _service_endpoint(args.url)
    client = ServiceClient(host, port)
    try:
        if args.drain:
            worker = client.drain(args.drain)
            print(f"{worker['name']}: {worker['state']}")
            return 0
        if args.undrain:
            worker = client.undrain(args.undrain)
            print(f"{worker['name']}: {worker['state']}")
            return 0
        if args.workers:
            rows = [[w["name"], w["state"], w["completed"], w["preempted"]]
                    for w in client.workers()]
            print(format_table(
                ["worker", "state", "completed", "preempted"], rows))
            return 0
        if args.job is None:
            rows = [[j["id"], j["tenant"], j["priority"], j["state"],
                     f"{j['progress']['done']}/{j['progress']['units']}"]
                    for j in client.jobs(args.tenant)]
            print(format_table(
                ["job", "tenant", "priority", "state", "done"], rows))
            return 0
        if args.events:
            for event in client.events(args.job, since=args.since):
                detail = {key: value for key, value in event.items()
                          if key not in ("seq", "event", "job")}
                print(f"{event['seq']:>5}  {event['event']:<16} {detail}")
            return 0
        if args.result:
            outcome = client.result(args.job, wait=args.wait,
                                    timeout=args.timeout)
            return _print_job_results(outcome)
        view = client.job(args.job)
        print(f"job {view['id']}: tenant={view['tenant']} "
              f"priority={view['priority']} state={view['state']} "
              f"done={view['progress']['done']}/{view['progress']['units']}")
        for unit in view["units"]:
            print(f"  [{unit['index']}] {unit['label']}: {unit['state']}"
                  + (f" (worker {unit['worker']})" if unit["worker"] else "")
                  + (f" preempted x{unit['preemptions']}"
                     if unit["preemptions"] else ""))
        return 0
    except ServiceError as exc:
        print(f"error [{exc.kind}]: {exc}", file=sys.stderr)
        return 1
    except OSError as exc:
        print(f"error: cannot reach the service at {args.url}: {exc}",
              file=sys.stderr)
        return 1


def cmd_bench(args) -> int:
    from . import bench

    names = args.scenario or None
    try:
        results = bench.run_benchmarks(names=names, repeats=args.repeats,
                                       scale=args.bench_scale,
                                       resolution=args.mode)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    print(bench.format_results(results))
    bench.write_results(args.output, results)
    print(f"\nwrote {args.output}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Memory-centric MPSoC virtual platform (DATE 2007 "
                    "reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments") \
       .set_defaults(func=cmd_list)

    run_parser = sub.add_parser("run", help="run an experiment (or 'all')")
    run_parser.add_argument("experiment")
    run_parser.add_argument("--scale", type=float, default=1.0,
                            help="traffic scale factor (default 1.0)")
    run_parser.add_argument("--trace", metavar="PATH",
                            help="capture transaction lifecycles and write "
                                 "a Perfetto trace_event JSON file")
    run_parser.add_argument("--jobs", type=int, default=None, metavar="N",
                            help="worker processes for multi-config "
                                 "experiments (default $REPRO_JOBS or 1)")
    run_parser.set_defaults(func=cmd_run)

    plat_parser = sub.add_parser("platform",
                                 help="simulate a JSON platform config")
    plat_parser.add_argument("config")
    plat_parser.add_argument("--max-us", type=float, default=20_000.0,
                             help="simulation bound in microseconds")
    plat_parser.add_argument("--mode", choices=("ca", "lt"), default=None,
                             help="simulation resolution: cycle-accurate or "
                                  "loosely-timed fast-forward (overrides the "
                                  "config's 'resolution'; see docs/FAST_SIM.md)")
    plat_parser.add_argument("--csv", help="write the result row to CSV")
    plat_parser.add_argument("--trace", metavar="PATH",
                             help="capture transaction lifecycles and write "
                                  "a Perfetto trace_event JSON file")
    plat_parser.add_argument("--checkpoint-every", type=float, default=None,
                             metavar="US",
                             help="save a resumable checkpoint every US "
                                  "microseconds of simulated time")
    plat_parser.add_argument("--checkpoint-dir", default="checkpoints",
                             metavar="DIR",
                             help="directory for --checkpoint-every files "
                                  "(default ./checkpoints)")
    plat_parser.set_defaults(func=cmd_platform)

    sweep_parser = sub.add_parser(
        "sweep", help="run a design-space sweep file across worker "
                      "processes with result caching")
    sweep_parser.add_argument("spec", help="sweep JSON (base/points/grid; "
                                           "see docs/PERFORMANCE.md)")
    sweep_parser.add_argument("--jobs", type=int, default=None, metavar="N",
                              help="worker processes (default: the file's "
                                   "'jobs', else $REPRO_JOBS, else 1)")
    sweep_parser.add_argument("--timeout", type=float, default=None,
                              metavar="S",
                              help="per-job wall-clock timeout in seconds")
    sweep_parser.add_argument("--csv", metavar="PATH",
                              help="write one result row per point to CSV")
    sweep_parser.add_argument("--no-cache", action="store_true",
                              help="re-simulate every point, bypassing the "
                                   "on-disk result cache")
    sweep_parser.add_argument("--cache-dir", metavar="DIR",
                              help="cache directory (default "
                                   "$REPRO_SWEEP_CACHE or "
                                   "~/.cache/repro/sweeps)")
    sweep_parser.set_defaults(func=cmd_sweep)

    dse_parser = sub.add_parser(
        "dse", help="search a declarative design space and print the "
                    "verified Pareto front")
    dse_parser.add_argument("spec", help="DSE JSON (base/axes/objectives/"
                                         "optimizer; see docs/DSE.md)")
    dse_parser.add_argument("--jobs", type=int, default=None, metavar="N",
                            help="worker processes per evaluation batch "
                                 "(default: the file's optimizer.jobs, "
                                 "else $REPRO_JOBS, else 1)")
    dse_parser.add_argument("--seed", type=int, default=None,
                            help="search seed (default: the file's "
                                 "optimizer.seed, else 1)")
    dse_parser.add_argument("--screen", choices=("auto", "lt", "off"),
                            default=None,
                            help="loosely-timed candidate screening: auto "
                                 "(evolutionary mode only), lt (always) or "
                                 "off (see docs/DSE.md)")
    dse_parser.add_argument("--json", metavar="PATH",
                            help="write the front + search provenance as "
                                 "JSON")
    dse_parser.add_argument("--csv", metavar="PATH",
                            help="write the front's objective rows as CSV")
    dse_parser.add_argument("--no-cache", action="store_true",
                            help="re-simulate every candidate, bypassing "
                                 "the sweep result cache")
    dse_parser.set_defaults(func=cmd_dse)

    trace_parser = sub.add_parser(
        "trace", help="run an experiment under lifecycle tracing and "
                      "report per-hop latencies")
    trace_parser.add_argument("experiment")
    trace_parser.add_argument("--scale", type=float, default=1.0,
                              help="traffic scale factor (default 1.0)")
    trace_parser.add_argument("--out", metavar="PATH",
                              help="trace file (default "
                                   "trace_<experiment>.json)")
    trace_parser.set_defaults(func=cmd_trace)

    stats_parser = sub.add_parser(
        "stats", help="run an experiment (or a platform config JSON) and "
                      "dump the flat metric registry")
    stats_parser.add_argument("target",
                              help="experiment name or platform config JSON")
    stats_parser.add_argument("--scale", type=float, default=1.0,
                              help="traffic scale factor for experiment "
                                   "targets (default 1.0)")
    stats_parser.add_argument("--max-us", type=float, default=20_000.0,
                              help="simulation bound for config targets, "
                                   "in microseconds")
    stats_parser.add_argument("--energy", action="store_true",
                              help="attach the energy accountant and print "
                                   "the per-component / per-initiator "
                                   "breakdown (see docs/OBSERVABILITY.md)")
    stats_parser.add_argument("--json", metavar="PATH",
                              help="write metrics as JSON")
    stats_parser.add_argument("--csv", metavar="PATH",
                              help="write metrics as CSV")
    stats_parser.add_argument("--prefix", default="",
                              help="restrict terminal output to one "
                                   "metric subtree")
    stats_parser.set_defaults(func=cmd_stats)

    check_parser = sub.add_parser(
        "check", help="run a target under the protocol/timing invariant "
                      "monitors and report violations")
    check_parser.add_argument("target",
                              help="experiment name, platform config JSON "
                                   "or sweep spec JSON")
    check_parser.add_argument("--strict", action="store_true",
                              help="exit non-zero on any violation or "
                                   "fast-vs-reference divergence")
    check_parser.add_argument("--diff", action="store_true",
                              help="also run config targets on both kernel "
                                   "paths and compare bit for bit")
    check_parser.add_argument("--scale", type=float, default=1.0,
                              help="traffic scale for experiment targets "
                                   "(default 1.0)")
    check_parser.add_argument("--max-us", type=float, default=20_000.0,
                              help="simulation bound for config targets, "
                                   "in microseconds")
    check_parser.add_argument("--limit", type=int, default=50, metavar="N",
                              help="violations to print before truncating "
                                   "(default 50)")
    check_parser.set_defaults(func=cmd_check)

    snap_parser = sub.add_parser(
        "snapshot", help="take/resume checkpoints and maintain the golden "
                         "regression corpus")
    snap_parser.add_argument("action", nargs="?", choices=["take", "resume"],
                             help="take: checkpoint a platform config "
                                  "mid-run; resume: replay a .ckpt.json "
                                  "and verify bit-identity")
    snap_parser.add_argument("target", nargs="?",
                             help="platform config JSON (take) or "
                                  "checkpoint file (resume)")
    snap_parser.add_argument("--refresh-golden", action="store_true",
                             help="regenerate the committed corpus under "
                                  "tests/golden/ (or $REPRO_GOLDEN_DIR)")
    snap_parser.add_argument("--only", action="append", metavar="NAME",
                             help="with --refresh-golden: refresh only this "
                                  "entry (repeatable)")
    snap_parser.add_argument("--verify-golden", action="store_true",
                             help="replay every committed golden checkpoint "
                                  "and verify bit-identity")
    snap_parser.add_argument("--summary", action="store_true",
                             help="list the committed golden corpus")
    snap_parser.add_argument("--at-us", type=float, default=None,
                             help="checkpoint instant in microseconds "
                                  "(default: --fraction of the run)")
    snap_parser.add_argument("--fraction", type=float, default=0.5,
                             help="checkpoint at this fraction of the run's "
                                  "execution time (default 0.5)")
    snap_parser.add_argument("--max-us", type=float, default=20_000.0,
                             help="simulation bound in microseconds")
    snap_parser.add_argument("--out", default="checkpoints", metavar="PATH",
                             help="checkpoint file or directory for 'take' "
                                  "(default ./checkpoints)")
    snap_parser.set_defaults(func=cmd_snapshot)

    proto_parser = sub.add_parser(
        "protocols", help="show the bus-protocol registry and the derived "
                          "bridge matrix")
    proto_parser.add_argument("--matrix", action="store_true",
                              help="print every derived source->dest "
                                   "conversion plan")
    proto_parser.add_argument("--plan", nargs=2, metavar=("SRC", "DST"),
                              help="print the derived plan for one pairing "
                                   "(validated against the registry)")
    proto_parser.set_defaults(func=cmd_protocols)

    bench_parser = sub.add_parser(
        "bench", help="run the kernel performance scenarios and write "
                      "BENCH_kernel.json")
    bench_parser.add_argument("--scenario", action="append",
                              help="scenario to run (repeatable; default all)")
    bench_parser.add_argument("--repeats", type=int, default=5,
                              help="timed repetitions per scenario "
                                   "(best-of; default 5)")
    bench_parser.add_argument("--bench-scale", type=float, default=1.0,
                              help="workload scale factor (default 1.0; "
                                   "smoke tiers use < 1)")
    bench_parser.add_argument("--mode", choices=("ca", "lt"), default="ca",
                              help="simulation resolution the scenarios run "
                                   "at (default: ca; see docs/FAST_SIM.md)")
    bench_parser.add_argument("--output", default="BENCH_kernel.json",
                              help="result file (default BENCH_kernel.json)")
    bench_parser.set_defaults(func=cmd_bench)

    serve_parser = sub.add_parser(
        "serve", help="run the simulation job service (docs/SERVICE.md)")
    serve_parser.add_argument("--host", default="127.0.0.1",
                              help="bind address (default 127.0.0.1)")
    serve_parser.add_argument("--port", type=int, default=8458,
                              help="HTTP port (default 8458; 0 = ephemeral)")
    serve_parser.add_argument("--socket", default=None, metavar="PATH",
                              help="also serve the JSONL queue on this "
                                   "local socket")
    serve_parser.add_argument("--workers", type=int, default=2,
                              help="worker fleet size (default 2)")
    serve_parser.add_argument("--quota", type=int, default=64,
                              help="per-tenant in-flight unit quota "
                                   "(default 64)")
    serve_parser.add_argument("--slice-us", type=float, default=1.0,
                              help="preemption slice for preemptible jobs, "
                                   "in simulated us (default 1.0)")
    serve_parser.add_argument("--processes", action="store_true",
                              help="offload plain units to a process pool "
                                   "(the sweep executor)")
    serve_parser.add_argument("--cache-dir", default=None, metavar="DIR",
                              help="shared sweep-cache directory "
                                   "(default: .repro_cache)")
    serve_parser.add_argument("--no-cache", action="store_true",
                              help="disable the shared result cache")
    serve_parser.set_defaults(func=cmd_serve)

    submit_parser = sub.add_parser(
        "submit", help="submit a platform config or sweep file to a "
                       "running service")
    submit_parser.add_argument("spec",
                               help="platform config or sweep JSON file")
    submit_parser.add_argument("--url", default="http://127.0.0.1:8458",
                               help="service endpoint "
                                    "(default http://127.0.0.1:8458)")
    submit_parser.add_argument("--tenant", default="cli",
                               help="tenant the job is accounted to "
                                    "(default 'cli')")
    submit_parser.add_argument("--priority", default="normal",
                               choices=("interactive", "normal", "batch"),
                               help="priority lane (default normal)")
    submit_parser.add_argument("--max-us", type=float, default=None,
                               help="simulated-time bound per unit")
    submit_parser.add_argument("--trace", action="store_true",
                               help="capture a Perfetto trace "
                                    "(GET /jobs/<id>/trace)")
    submit_parser.add_argument("--preemptible", action="store_true",
                               help="allow drain-time checkpointing")
    submit_parser.add_argument("--checkpoint-at-us", type=float, default=None,
                               help="force one preemption at this simulated "
                                    "instant (implies --preemptible)")
    submit_parser.add_argument("--wait", action="store_true",
                               help="block until the job finishes and print "
                                    "its results")
    submit_parser.add_argument("--timeout", type=float, default=600.0,
                               help="--wait timeout in seconds (default 600)")
    submit_parser.set_defaults(func=cmd_submit)

    jobs_parser = sub.add_parser(
        "jobs", help="inspect a running service: jobs, results, events, "
                     "workers")
    jobs_parser.add_argument("job", nargs="?", default=None,
                             help="job id to inspect (default: list jobs)")
    jobs_parser.add_argument("--url", default="http://127.0.0.1:8458",
                             help="service endpoint "
                                  "(default http://127.0.0.1:8458)")
    jobs_parser.add_argument("--tenant", default=None,
                             help="filter the job list by tenant")
    jobs_parser.add_argument("--result", action="store_true",
                             help="print the job's per-unit results")
    jobs_parser.add_argument("--wait", action="store_true",
                             help="with --result: block until terminal")
    jobs_parser.add_argument("--timeout", type=float, default=600.0,
                             help="--wait timeout in seconds (default 600)")
    jobs_parser.add_argument("--events", action="store_true",
                             help="print the job's event log")
    jobs_parser.add_argument("--since", type=int, default=0,
                             help="with --events: only events after this "
                                  "sequence number")
    jobs_parser.add_argument("--workers", action="store_true",
                             help="show the worker fleet instead of jobs")
    jobs_parser.add_argument("--drain", default=None, metavar="WORKER",
                             help="drain a worker (preempts its "
                                  "preemptible unit)")
    jobs_parser.add_argument("--undrain", default=None, metavar="WORKER",
                             help="return a drained worker to service")
    jobs_parser.set_defaults(func=cmd_jobs)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Reports are routinely piped into head/less; a closed pipe is
        # not an error. Detach stdout so interpreter shutdown does not
        # raise a second time flushing it.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
