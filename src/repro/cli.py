"""Command-line interface.

::

    python -m repro list                         # available experiments
    python -m repro run fig5 --scale 0.5         # run one, print the figure
    python -m repro run all                      # the whole evaluation
    python -m repro platform my_platform.json    # simulate a config file
    python -m repro bench                        # kernel perf -> BENCH_kernel.json

Each experiment prints the paper-style report and the outcome of its shape
checks; the process exits non-zero if any claim fails, so the CLI is
usable in CI.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional, Tuple

from . import experiments
from .analysis import format_table

#: name -> (description, runner(scale) -> (data, report_text, failures))
Registry = Dict[str, Tuple[str, Callable]]


def _wrap(module, **fixed):
    def runner(scale: float):
        data = module.run(traffic_scale=scale, **fixed)
        return data, module.report(data), module.check(data)
    return runner


def _wrap_single_layer_m2m():
    def runner(scale: float):
        transactions = max(8, int(50 * scale))
        data = experiments.single_layer.run_many_to_many(
            transactions=transactions)
        return (data, experiments.single_layer.report_many_to_many(data),
                experiments.single_layer.check_many_to_many(data))
    return runner


def _wrap_single_layer_m2o():
    def runner(scale: float):
        transactions = max(8, int(60 * scale))
        data = experiments.single_layer.run_many_to_one(
            transactions=transactions)
        return (data, experiments.single_layer.report_many_to_one(data),
                experiments.single_layer.check_many_to_one(data))
    return runner


def _wrap_arbitration():
    def runner(scale: float):
        transactions = max(8, int(40 * scale))
        data = experiments.arbitration_study.run(transactions=transactions)
        return (data, experiments.arbitration_study.report(data),
                experiments.arbitration_study.check(data))
    return runner


def _wrap_segmentation():
    def runner(scale: float):
        transactions = max(8, int(20 * scale))
        data = experiments.path_segmentation.run(transactions=transactions)
        return (data, experiments.path_segmentation.report(data),
                experiments.path_segmentation.check(data))
    return runner


def _wrap_io_qos():
    def runner(scale: float):
        lines = max(10, int(40 * scale))
        data = experiments.io_qos.run(lines=lines)
        return (data, experiments.io_qos.report(data),
                experiments.io_qos.check(data))
    return runner


def registry() -> Registry:
    return {
        "s411": ("Section 4.1.1 — many-to-many single layer",
                 _wrap_single_layer_m2m()),
        "s412": ("Section 4.1.2 — many-to-one single layer",
                 _wrap_single_layer_m2o()),
        "fig3": ("Fig. 3 — platform instances, on-chip memory",
                 _wrap(experiments.fig3_platform_instances)),
        "fig4": ("Fig. 4 — distributed vs centralized vs memory speed",
                 _wrap(experiments.fig4_memory_speed)),
        "fig5": ("Fig. 5 — platform instances with LMI + DDR",
                 _wrap(experiments.fig5_lmi_platforms)),
        "fig6": ("Fig. 6 — LMI bus-interface statistics",
                 _wrap(experiments.fig6_lmi_statistics)),
        "ablations": ("Section 6 — guideline ablations",
                      _wrap(experiments.ablations)),
        "arbitration": ("Extension — arbitration policy study",
                        _wrap_arbitration()),
        "segmentation": ("Extension — path segmentation (guideline 5)",
                         _wrap_segmentation()),
        "io_qos": ("Extension — display QoS under DMA contention "
                   "(guideline 4)", _wrap_io_qos()),
    }


def cmd_list(_args) -> int:
    rows = [[name, description] for name, (description, __)
            in registry().items()]
    print(format_table(["experiment", "reproduces"], rows))
    return 0


def cmd_run(args) -> int:
    table = registry()
    names = list(table) if args.experiment == "all" else [args.experiment]
    unknown = [n for n in names if n not in table]
    if unknown:
        print(f"unknown experiment(s): {unknown}; try 'list'",
              file=sys.stderr)
        return 2
    status = 0
    for name in names:
        description, runner = table[name]
        print(f"\n### {name}: {description}\n")
        __, report, failures = runner(args.scale)
        print(report)
        if failures:
            status = 1
            print("\nFAILED shape claims:")
            for failure in failures:
                print(f"  - {failure}")
        else:
            print("\nall shape claims hold")
    return status


def cmd_platform(args) -> int:
    from .core import Simulator
    from .platforms import build_platform
    from .platforms.loader import load_config

    config = load_config(args.config)
    sim = Simulator()
    platform = build_platform(sim, config)
    result = platform.run(max_ps=args.max_us * 1_000_000)
    print(f"platform:        {config.label()}")
    print(f"execution time:  {result.execution_time_ps / 1_000_000:.3f} us")
    print(f"transactions:    {result.transactions}")
    print(f"bytes:           {result.bytes_transferred}")
    print(f"throughput:      {result.throughput_bytes_per_ns:.3f} B/ns")
    for key, value in sorted(result.extra.items()):
        print(f"{key + ':':<17}{value:.2f}")
    if args.csv:
        from .analysis import results_to_csv

        results_to_csv(args.csv, [result])
        print(f"\nwrote {args.csv}")
    return 0


def cmd_bench(args) -> int:
    from . import bench

    names = args.scenario or None
    try:
        results = bench.run_benchmarks(names=names, repeats=args.repeats,
                                       scale=args.bench_scale)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    print(bench.format_results(results))
    bench.write_results(args.output, results)
    print(f"\nwrote {args.output}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Memory-centric MPSoC virtual platform (DATE 2007 "
                    "reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments") \
       .set_defaults(func=cmd_list)

    run_parser = sub.add_parser("run", help="run an experiment (or 'all')")
    run_parser.add_argument("experiment")
    run_parser.add_argument("--scale", type=float, default=1.0,
                            help="traffic scale factor (default 1.0)")
    run_parser.set_defaults(func=cmd_run)

    plat_parser = sub.add_parser("platform",
                                 help="simulate a JSON platform config")
    plat_parser.add_argument("config")
    plat_parser.add_argument("--max-us", type=float, default=20_000.0,
                             help="simulation bound in microseconds")
    plat_parser.add_argument("--csv", help="write the result row to CSV")
    plat_parser.set_defaults(func=cmd_platform)

    bench_parser = sub.add_parser(
        "bench", help="run the kernel performance scenarios and write "
                      "BENCH_kernel.json")
    bench_parser.add_argument("--scenario", action="append",
                              help="scenario to run (repeatable; default all)")
    bench_parser.add_argument("--repeats", type=int, default=5,
                              help="timed repetitions per scenario "
                                   "(best-of; default 5)")
    bench_parser.add_argument("--bench-scale", type=float, default=1.0,
                              help="workload scale factor (default 1.0; "
                                   "smoke tiers use < 1)")
    bench_parser.add_argument("--output", default="BENCH_kernel.json",
                              help="result file (default BENCH_kernel.json)")
    bench_parser.set_defaults(func=cmd_bench)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
