"""LT-vs-CA accuracy harness: the executable half of ``docs/FAST_SIM.md``.

The loosely-timed (LT) mode fast-forwards contention-free stretches
analytically instead of scheduling them cycle by cycle.  It is only
useful if its deviation from the cycle-accurate (CA) reference is both
small and *bounded by contract*.  This module owns that contract's
numbers — the constants below are quoted verbatim in ``docs/FAST_SIM.md``
and a documentation test asserts the two never drift apart.

:func:`LtRun` runs one configuration twice (CA then LT) and returns an
:class:`LtComparison` whose :meth:`~LtComparison.within_bounds` lists
every violated clause of the contract.  ``benchmarks/lt_gate.py`` applies
it to the golden corpus in CI; ``tests/test_lt_mode.py`` applies it to
randomized configurations.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import List, Optional

from ..analysis.metrics import RunResult
from ..core.kernel import Simulator
from ..platforms.config import PlatformConfig
from ..platforms.reference import build_platform

# ---------------------------------------------------------------------------
# The published accuracy contract (docs/FAST_SIM.md, "The contract").
#
# The contract is layered.  The *universal* clauses hold for any
# configuration: LT never creates, drops or fails work, and never
# processes more events than CA.  The *numeric drift bounds* below are
# validated over the golden corpus — the paper's experiment space — and
# enforced there by ``benchmarks/lt_gate.py``; outside that space LT's
# intra-timestamp reordering can compound through arbitration (measured
# up to ~6% execution-time drift on adversarial randomized STBus
# configurations, worse with the random-pattern CPU in the mix), so
# publication-grade numbers for unusual configs should use ``--mode ca``
# or measure their own drift with :func:`LtRun`.
# ---------------------------------------------------------------------------

#: RunResult fields LT must reproduce *exactly* — fast-forwarding moves
#: events in time, it must never create, drop or fail work.
EXACT_FIELDS = ("transactions", "bytes_transferred")

#: Maximum relative drift of the run's execution time (Fig. 3/4/5 x-axis).
EXECUTION_TIME_DRIFT = 0.01

#: Maximum relative drift of mean and p95 transaction latency.  Looser
#: than execution time: on-chip read batching legitimately moves the
#: instants at which intermediate burst beats surface, which shows up in
#: the latency *tail* (worst measured: 5.4% p95 on the Fig. 4
#: distributed instance) while leaving totals almost untouched.
LATENCY_DRIFT = 0.08

#: Maximum absolute drift of the bus-utilization fraction (0..1 scale).
UTILIZATION_ABS_DRIFT = 0.02

#: Maximum relative drift of total platform energy.  LT charges through
#: the very same per-beat taps as CA (batching moves events, never beat
#: counts), so per-beat energy is exact; what drifts is the
#: time-integrated SDRAM background power (bounded by the execution-time
#: clause) and the command-count-based standby/ACT terms (worst measured:
#: 0.61% on the Fig. 5 instances, where LT's merge timing shifts a couple
#: of ACTIVATE/PRECHARGE pairs).
ENERGY_DRIFT = 0.01

#: Minimum CA-events / LT-events ratio on the STBus reference platform
#: (the ``platform_run`` benchmark scenario).  Deliberately *not* applied
#: to every configuration: AHB/AXI fabrics poll per cycle and stay in the
#: CA-fallback regime (see docs/FAST_SIM.md, "When LT does not help").
MIN_EVENT_SPEEDUP = 5.0


def _relative(lt_value: float, ca_value: float) -> float:
    """Relative deviation, safe around zero denominators."""
    if ca_value == 0:
        return 0.0 if lt_value == 0 else float("inf")
    return abs(lt_value - ca_value) / abs(ca_value)


@dataclass
class LtComparison:
    """CA and LT runs of one configuration, plus the contract verdict."""

    label: str
    ca: RunResult
    lt: RunResult
    ca_events: int
    lt_events: int
    ca_now: int
    lt_now: int
    #: Events the LT run skipped by analytic fast-forwarding.
    lt_fastforwards: int
    #: Contract clauses this pair violates (empty means compliant).
    failures: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    @property
    def event_ratio(self) -> float:
        """CA events per LT event — the deterministic speedup measure."""
        if self.lt_events == 0:
            return float("inf")
        return self.ca_events / self.lt_events

    @property
    def execution_time_drift(self) -> float:
        return _relative(self.lt.execution_time_ps, self.ca.execution_time_ps)

    @property
    def mean_latency_drift(self) -> float:
        return _relative(self.lt.mean_latency_ps, self.ca.mean_latency_ps)

    @property
    def p95_latency_drift(self) -> float:
        return _relative(self.lt.p95_latency_ps, self.ca.p95_latency_ps)

    @property
    def energy_drift(self) -> float:
        return _relative(self.lt.energy_total_pj, self.ca.energy_total_pj)

    @property
    def utilization_drift(self) -> float:
        """Worst absolute per-component utilization deviation."""
        keys = set(self.ca.utilization) | set(self.lt.utilization)
        return max((abs(self.lt.utilization.get(key, 0.0)
                        - self.ca.utilization.get(key, 0.0))
                    for key in keys), default=0.0)

    def describe(self) -> str:
        """One human-readable block per comparison (gate/report output)."""
        lines = [
            f"{self.label}: events ca={self.ca_events} lt={self.lt_events} "
            f"(ratio {self.event_ratio:.2f}x, "
            f"{self.lt_fastforwards} fastforwards)",
            f"  execution_time drift {self.execution_time_drift * 100:.3f}% "
            f"(bound {EXECUTION_TIME_DRIFT * 100:.0f}%)",
            f"  latency drift mean {self.mean_latency_drift * 100:.3f}% "
            f"p95 {self.p95_latency_drift * 100:.3f}% "
            f"(bound {LATENCY_DRIFT * 100:.0f}%)",
            f"  utilization drift {self.utilization_drift:.4f} "
            f"(bound {UTILIZATION_ABS_DRIFT})",
            f"  energy drift {self.energy_drift * 100:.3f}% "
            f"(bound {ENERGY_DRIFT * 100:.0f}%)",
        ]
        if self.failures:
            lines.append("  FAILED contract clauses:")
            lines.extend(f"    - {failure}" for failure in self.failures)
        return "\n".join(lines)


def universal_failures(comparison: LtComparison) -> List[str]:
    """Violations of the clauses that hold for *any* configuration.

    These are the structural guarantees of the LT design: the fast paths
    collapse events, they never change what work gets done, and they can
    only remove scheduling — never add it.
    """
    failures: List[str] = []
    for name in EXACT_FIELDS:
        ca_value = getattr(comparison.ca, name)
        lt_value = getattr(comparison.lt, name)
        if ca_value != lt_value:
            failures.append(f"{name} must be exact: "
                            f"ca={ca_value!r} lt={lt_value!r}")
    if comparison.lt_events > comparison.ca_events:
        failures.append(
            f"LT processed more events than CA: "
            f"lt={comparison.lt_events} ca={comparison.ca_events}")
    return failures


def within_bounds(comparison: LtComparison,
                  min_event_ratio: Optional[float] = None) -> List[str]:
    """Every violated clause of the full (corpus-domain) contract.

    Includes the universal clauses plus the numeric drift bounds, which
    are published for the golden-corpus experiment space.  Apply this to
    corpus entries and corpus-like configurations;
    :func:`universal_failures` is the right check for arbitrary ones.
    ``min_event_ratio`` additionally enforces a speedup floor — pass
    :data:`MIN_EVENT_SPEEDUP` for the STBus reference platform, leave it
    ``None`` for configurations in the CA-fallback regime.
    """
    failures = universal_failures(comparison)
    if comparison.execution_time_drift > EXECUTION_TIME_DRIFT:
        failures.append(
            f"execution_time drift {comparison.execution_time_drift:.4f} "
            f"exceeds {EXECUTION_TIME_DRIFT}")
    if comparison.mean_latency_drift > LATENCY_DRIFT:
        failures.append(
            f"mean latency drift {comparison.mean_latency_drift:.4f} "
            f"exceeds {LATENCY_DRIFT}")
    if comparison.p95_latency_drift > LATENCY_DRIFT:
        failures.append(
            f"p95 latency drift {comparison.p95_latency_drift:.4f} "
            f"exceeds {LATENCY_DRIFT}")
    if comparison.utilization_drift > UTILIZATION_ABS_DRIFT:
        failures.append(
            f"utilization drift {comparison.utilization_drift:.4f} "
            f"exceeds {UTILIZATION_ABS_DRIFT}")
    if comparison.energy_drift > ENERGY_DRIFT:
        failures.append(
            f"energy drift {comparison.energy_drift:.4f} "
            f"exceeds {ENERGY_DRIFT}")
    if (min_event_ratio is not None
            and comparison.event_ratio < min_event_ratio):
        failures.append(
            f"event ratio {comparison.event_ratio:.2f}x below the "
            f"required {min_event_ratio:.2f}x floor")
    return failures


def _run_mode(config: PlatformConfig, resolution: str,
              max_ps: Optional[int]):
    sim = Simulator()
    # Energy accounting is force-enabled on both legs so the energy
    # clause always has data to compare; with both sides instrumented
    # through the same taps this perturbs neither timing nor events.
    platform = build_platform(sim, config.scaled(
        resolution=resolution,
        energy=dataclasses.replace(config.energy, enabled=True)))
    result = platform.run(max_ps=max_ps)
    return sim, result


def LtRun(config: PlatformConfig, max_ps: Optional[int] = 10**9,
          min_event_ratio: Optional[float] = None) -> LtComparison:
    """Run ``config`` at both resolutions and check the accuracy contract.

    The configuration's own ``resolution`` field is overridden for each
    leg, so callers can hand in any config (golden corpus entries,
    randomized ones) without preprocessing.  Returns an
    :class:`LtComparison` with :attr:`~LtComparison.failures` already
    populated — ``.ok`` is the gate condition.
    """
    ca_sim, ca_result = _run_mode(config, "ca", max_ps)
    lt_sim, lt_result = _run_mode(config, "lt", max_ps)
    comparison = LtComparison(
        label=config.label(),
        ca=ca_result,
        lt=lt_result,
        ca_events=ca_sim.processed_events,
        lt_events=lt_sim.processed_events,
        ca_now=ca_sim.now,
        lt_now=lt_sim.now,
        lt_fastforwards=lt_sim.lt_fastforwards,
    )
    comparison.failures = within_bounds(comparison,
                                        min_event_ratio=min_event_ratio)
    return comparison


__all__ = [
    "ENERGY_DRIFT",
    "EXACT_FIELDS",
    "EXECUTION_TIME_DRIFT",
    "LATENCY_DRIFT",
    "LtComparison",
    "LtRun",
    "MIN_EVENT_SPEEDUP",
    "UTILIZATION_ABS_DRIFT",
    "universal_failures",
    "within_bounds",
]
