"""Registry-completeness lint: no protocol ships half-wired.

A :class:`~repro.interconnect.protocols.ProtocolSpec` entry is only the
*declaration* of a fabric; being simulatable also needs the rest of the
stack to know about it.  This lint cross-references every registry entry
against the four places a protocol must be covered:

* an energy coefficient field on
  :class:`~repro.obs.energy.EnergyConfig` (per-beat accounting),
* a beat-ordering rule in the checker's catalogue
  (:func:`repro.check.monitors.covered_protocols`) matching the spec's
  declared ``beat_rule``,
* snapshot coverage — the engine class serialises protocol state
  (overrides ``snapshot_state``),
* a derivable bridge plan to **every** other bridgeable protocol (the
  N x N matrix has no holes).

Run standalone (CI lint job)::

    python -m repro.check.registry_lint

Exit status 1 with one line per missing cell; silent success otherwise.
"""

from __future__ import annotations

from typing import List

from ..interconnect.protocols import PROTOCOLS, ProtocolSpec, bridgeable_specs


def _engine_class(spec: ProtocolSpec) -> type:
    from ..interconnect.ahb import AhbLayer
    from ..interconnect.axi import AxiFabric
    from ..interconnect.generic import GenericFabric
    from ..interconnect.stbus import StbusNode
    from ..interconnect.tlm import TlmNode

    return {"stbus": StbusNode, "ahb": AhbLayer, "axi": AxiFabric,
            "tlm": TlmNode, "generic": GenericFabric}[spec.engine]


def lint_registry() -> List[str]:
    """Every missing cell in the protocol coverage matrix (empty = clean)."""
    from ..interconnect.base import Fabric
    from ..obs.energy import EnergyConfig
    from .monitors import _BEAT_RULE, covered_protocols

    problems: List[str] = []
    energy_defaults = EnergyConfig()
    covered = covered_protocols()
    for name, spec in sorted(PROTOCOLS.items()):
        if not hasattr(energy_defaults, spec.energy_coefficient):
            problems.append(
                f"{name}: EnergyConfig has no coefficient "
                f"{spec.energy_coefficient!r}")
        label = spec.fabric_label
        if label not in covered:
            problems.append(
                f"{name}: checker has no beat rule for protocol label "
                f"{label!r} (repro.check.monitors._BEAT_RULE)")
        elif _BEAT_RULE[label] != spec.beat_rule:
            problems.append(
                f"{name}: checker beat rule {_BEAT_RULE[label]!r} does not "
                f"match the spec's declared {spec.beat_rule!r}")
        engine = _engine_class(spec)
        if engine.snapshot_state is Fabric.snapshot_state:
            problems.append(
                f"{name}: engine {engine.__name__} does not serialise "
                "protocol state (snapshot_state not overridden)")
        if spec.platform_key is not None:
            from ..interconnect.protocols import platform_protocols

            if spec.platform_key not in platform_protocols():
                problems.append(
                    f"{name}: platform key {spec.platform_key!r} is not "
                    "reachable from PlatformConfig.protocol")
    problems.extend(_lint_bridge_matrix())
    return problems


def _lint_bridge_matrix() -> List[str]:
    from ..bridge.matrix import conversion_plan

    problems: List[str] = []
    specs = bridgeable_specs()
    for a in specs:
        for b in specs:
            try:
                conversion_plan(a, b)
            except Exception as exc:  # noqa: BLE001 - report, don't crash
                problems.append(
                    f"bridge matrix hole {a.name} -> {b.name}: {exc}")
    return problems


def main() -> int:
    problems = lint_registry()
    for line in problems:
        print(f"registry-lint: {line}")
    if problems:
        print(f"registry-lint: {len(problems)} missing cell(s)")
        return 1
    print(f"registry-lint: {len(PROTOCOLS)} protocols fully covered "
          f"({len(bridgeable_specs())}^2 bridge matrix, energy, monitors, "
          "snapshot)")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CI
    raise SystemExit(main())
