"""Violation report types for the runtime invariant checkers.

A :class:`Violation` is one broken protocol/timing rule, located in space
(dotted component path), time (kernel picoseconds) and law (rule id).  The
monitors in :mod:`repro.check.monitors` produce them; the CLI renders them;
``--strict`` turns any of them into a non-zero exit.

This module deliberately imports nothing from the rest of ``repro`` so cold
error paths deep in the core (e.g. the FIFO bounds guard) can reach the
report type without creating an import cycle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional


@dataclass(frozen=True)
class Violation:
    """One broken invariant, pinned to a component, a time and a rule."""

    #: Dotted path of the offending component ("central.lmi.req", ...).
    component: str
    #: Simulation time at which the violation was detected, in ps.
    time_ps: int
    #: Stable rule identifier ("fifo.overflow", "sdram.t_ras", ...).
    rule: str
    #: Human-readable explanation with the offending values.
    message: str
    #: The offending transaction (or command tuple), when one exists.
    txn: Optional[Any] = field(default=None, compare=False)

    def format(self) -> str:
        parts = [f"[{self.rule}]", f"t={self.time_ps}ps", self.component,
                 self.message]
        if self.txn is not None:
            parts.append(f"({self.txn!r})")
        return " ".join(parts)


class InvariantViolation(RuntimeError):
    """Raised when a live check trips and the simulation cannot continue
    sanely (e.g. a FIFO pushed past capacity).  Carries the structured
    :class:`Violation` so callers get the component path and sim time even
    from an exception path."""

    def __init__(self, violation: Violation) -> None:
        super().__init__(violation.format())
        self.violation = violation


def format_report(violations: List[Violation], limit: Optional[int] = None) -> str:
    """Plain-text violation report: one line per violation plus a summary."""
    if not violations:
        return "no invariant violations"
    shown = violations if limit is None else violations[:limit]
    lines = [v.format() for v in shown]
    if len(shown) < len(violations):
        lines.append(f"... {len(violations) - len(shown)} more")
    rules = sorted({v.rule for v in violations})
    lines.append(f"{len(violations)} violation(s) across "
                 f"{len(rules)} rule(s): {', '.join(rules)}")
    return "\n".join(lines)


__all__ = ["Violation", "InvariantViolation", "format_report"]
