"""Runtime protocol/timing invariant monitors.

One :class:`SimChecker` attaches to one :class:`~repro.core.kernel.Simulator`
(via ``sim._checks``, a ``None`` slot unless a ``repro.check.checked()``
session is active — the same select-once discipline as ``sim._spans``).
Model code feeds it through four cheap notification points, each guarded by
a single ``is not None`` check per transaction hop:

* ``note_issue``  — :meth:`InitiatorPort.issue` (per-source program order),
* ``note_grant``  — :meth:`Fabric.pop_granted` (the single grant point of
  every fabric: shared-bus STBus, AHB, AXI, crossbar, TLM),
* ``note_accept`` — the three protocol serve paths, right after
  ``mark_accepted`` (request/acceptance pairing),
* ``note_beat``   — :meth:`Fabric.deliver_beat` (live per-transaction beat
  ordering; this is where AXI ID ordering is enforced, since every
  :class:`Transaction` carries a unique id).

Everything else runs in :meth:`SimChecker.finalize`, *after* the
simulation, over the recorded grant/accept histories — the checks never
schedule events or perturb arbitration, so a checked run is bit-identical
to an unchecked one (the differential harness asserts exactly that).

Rule catalogue (see ``docs/CORRECTNESS.md``): ``lifecycle.*``,
``<protocol>.source_order``, ``stbus.split_pairing`` / ``stbus.t1_hold`` /
``stbus.posted_write`` / ``stbus.nonposted`` / ``stbus.packet_order``,
``ahb.serialization`` / ``ahb.pipelining`` / ``ahb.nonposted`` /
``ahb.data_order``, ``axi.handshake`` / ``axi.id_order``,
``bridge.conservation``, ``fifo.*``, ``obs.span_tiling``, ``sdram.*``.
Registry-served generic fabrics (wishbone, apb, axi4lite, avalon,
tilelink) get ``<protocol>.pairing`` / ``<protocol>.serialization`` /
``<protocol>.posted_write`` / ``<protocol>.nonposted`` derived from their
:class:`~repro.interconnect.protocols.ProtocolSpec`, plus the per-spec
beat-ordering rule listed in ``_BEAT_RULE``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from .sdram_audit import SdramCommandLog, audit_sdram
from .violations import Violation

#: Canonical lifecycle stamp order; every non-``None`` pair must be
#: non-decreasing (posted writes legally have ``t_done == t_accepted``).
_STAMP_ORDER = ("t_created", "t_issued", "t_granted", "t_accepted",
                "t_first_data", "t_done")

#: Rule id for beat-ordering violations, per fabric protocol.  A unique
#: transaction id is a unique AXI ID / STBus packet, so in-order beats per
#: transaction *is* the per-ID ordering rule.
_BEAT_RULE = {
    "axi": "axi.id_order",
    "stbus": "stbus.packet_order",
    "stbus-xbar": "stbus.packet_order",
    "ahb": "ahb.data_order",
    "tlm": "tlm.completion_order",
    "wishbone": "wishbone.ack_order",
    "apb": "apb.access_order",
    "axi4lite": "axi4lite.channel_order",
    "avalon": "avalon.readdata_order",
    "tilelink": "tilelink.d_order",
}


def covered_protocols() -> frozenset:
    """Protocol labels the checker has a beat-ordering rule for.

    The registry-completeness lint (:mod:`repro.check.registry_lint`)
    cross-references this against the declarative protocol registry so a
    new fabric cannot ship without monitor coverage.
    """
    return frozenset(_BEAT_RULE)


class SimChecker:
    """All invariant monitors of one simulator, plus their violations."""

    def __init__(self, sim) -> None:
        self.sim = sim
        #: Violations detected *live* (beat ordering, FIFO bounds).
        self.violations: List[Violation] = []
        self.fabrics: List[Any] = []
        self.bridges: List[Any] = []
        self.fifos: List[Any] = []
        self.sdram_logs: List[SdramCommandLog] = []
        #: port -> transactions in issue-call order.
        self._issued: Dict[Any, List[Any]] = {}
        #: fabric -> [(port, txn)] in grant order.
        self._grants: Dict[Any, List[Any]] = {}
        #: port -> transactions in grant order.
        self._port_grants: Dict[Any, List[Any]] = {}
        #: fabric -> transactions in acceptance order.
        self._accepts: Dict[Any, List[Any]] = {}

    # ------------------------------------------------------------------
    # registration (construction time)
    # ------------------------------------------------------------------
    def register_fabric(self, fabric) -> None:
        self.fabrics.append(fabric)

    def register_bridge(self, bridge) -> None:
        self.bridges.append(bridge)

    def register_fifo(self, fifo) -> None:
        self.fifos.append(fifo)

    def sdram_log(self, device) -> SdramCommandLog:
        """Create (and adopt) the command log of one SDRAM device."""
        log = SdramCommandLog(name=device.name, timing=device.timing,
                              period_ps=device.clock.period_ps)
        self.sdram_logs.append(log)
        return log

    # ------------------------------------------------------------------
    # live notification points (model code, guarded by `is not None`)
    # ------------------------------------------------------------------
    def note_issue(self, port, txn) -> None:
        self._issued.setdefault(port, []).append(txn)

    def note_grant(self, fabric, port, txn) -> None:
        self._grants.setdefault(fabric, []).append((port, txn))
        self._port_grants.setdefault(port, []).append(txn)

    def note_accept(self, fabric, txn) -> None:
        self._accepts.setdefault(fabric, []).append(txn)

    def note_beat(self, fabric, beat) -> None:
        """Live beat legality: direction, per-transaction order, last flag."""
        txn = beat.txn
        rule = _BEAT_RULE.get(fabric.protocol, "fabric.beat_order")
        component = f"{fabric.name}.{txn.initiator}"
        now = self.sim.now
        if txn.t_done is not None:
            self._flag(component, now, rule,
                       f"beat index {beat.index} delivered after the "
                       f"transaction completed at {txn.t_done}ps", txn)
        if beat.is_write_ack:
            if txn.is_read:
                self._flag(component, now, rule,
                           "write acknowledgement delivered to a read", txn)
            return
        if txn.is_write:
            self._flag(component, now, rule,
                       f"data beat {beat.index} delivered to a write "
                       "(writes carry data on the request path)", txn)
            return
        expected = txn.meta.get("_chk_beat", 0)
        if beat.index != expected:
            self._flag(component, now, rule,
                       f"data beat {beat.index} arrived out of order "
                       f"(expected beat {expected})", txn)
        txn.meta["_chk_beat"] = beat.index + 1
        should_be_last = beat.index == txn.beats - 1
        if beat.is_last != should_be_last:
            self._flag(component, now, rule,
                       f"is_last={beat.is_last} on beat {beat.index} of a "
                       f"{txn.beats}-beat burst", txn)

    def _flag(self, component: str, time_ps: int, rule: str, message: str,
              txn=None) -> None:
        self.violations.append(Violation(component=component, time_ps=time_ps,
                                         rule=rule, message=message, txn=txn))

    # ------------------------------------------------------------------
    # post-run passes
    # ------------------------------------------------------------------
    def finalize(self, expect_drained: bool = True) -> List[Violation]:
        """Run every post-run pass; return live + computed violations.

        ``expect_drained`` asserts quiescence on top of ordering: every
        issued transaction completed, bridge counters balance, bridge
        request FIFOs are empty.  Pass ``False`` for runs truncated by a
        time bound.
        """
        found = list(self.violations)
        for port, txns in self._issued.items():
            self._check_lifecycle(port, txns, expect_drained, found)
            self._check_source_order(port, txns, found)
        for fabric in self.fabrics:
            spec = getattr(fabric, "spec", None)
            if spec is not None:
                self._check_generic(fabric, spec, expect_drained, found)
            elif fabric.protocol == "stbus":
                self._check_stbus(fabric, expect_drained, found)
            elif fabric.protocol == "ahb":
                self._check_ahb(fabric, expect_drained, found)
            elif fabric.protocol == "axi":
                self._check_axi(fabric, expect_drained, found)
        for bridge in self.bridges:
            self._check_bridge(bridge, expect_drained, found)
        for fifo in self.fifos:
            self._check_fifo_bounds(fifo, found)
        self._check_span_tiling(found)
        for log in self.sdram_logs:
            found.extend(audit_sdram(log))
        return found

    # -- lifecycle ------------------------------------------------------
    def _check_lifecycle(self, port, txns, expect_drained: bool,
                         found: List[Violation]) -> None:
        component = f"{port.fabric.name}.{port.name}"
        for txn in txns:
            prev_name: Optional[str] = None
            prev: Optional[int] = None
            for attr in _STAMP_ORDER:
                t = getattr(txn, attr)
                if t is None:
                    continue
                if prev is not None and t < prev:
                    found.append(Violation(
                        component=component, time_ps=t, rule="lifecycle.order",
                        message=f"{attr}={t}ps precedes {prev_name}="
                                f"{prev}ps", txn=txn))
                prev_name, prev = attr, t
            if expect_drained and txn.t_done is None:
                found.append(Violation(
                    component=component, time_ps=self.sim.now,
                    rule="lifecycle.incomplete",
                    message="transaction never completed (last stamp "
                            f"{prev_name}={prev}ps)", txn=txn))

    # -- per-source ordering -------------------------------------------
    def _check_source_order(self, port, txns, found: List[Violation]) -> None:
        grants = self._port_grants.get(port, [])
        issued_ids = [t.tid for t in txns]
        granted_ids = [t.tid for t in grants]
        if granted_ids != issued_ids[:len(granted_ids)]:
            found.append(Violation(
                component=f"{port.fabric.name}.{port.name}",
                time_ps=self.sim.now,
                rule=f"{port.fabric.protocol}.source_order",
                message=f"grant order {granted_ids[:8]}... is not the issue "
                        f"order {issued_ids[:8]}... (per-source ordering "
                        "broken)"))

    # -- request/acceptance pairing ------------------------------------
    def _routed_grants(self, fabric) -> List[Any]:
        """Granted transactions that decode to a real target (decode
        failures are answered by the default slave, never accepted)."""
        return [txn for _port, txn in self._grants.get(fabric, [])
                if fabric.try_route(txn.address) is not None]

    def _check_pairing(self, fabric, rule: str, expect_drained: bool,
                       found: List[Violation], opcode=None) -> None:
        routed = self._routed_grants(fabric)
        accepts = self._accepts.get(fabric, [])
        if opcode is not None:
            routed = [t for t in routed if t.opcode is opcode]
            accepts = [t for t in accepts if t.opcode is opcode]
        granted_ids = [t.tid for t in routed]
        accepted_ids = [t.tid for t in accepts]
        tag = f" {opcode.value}" if opcode is not None else ""
        if accepted_ids != granted_ids[:len(accepted_ids)]:
            found.append(Violation(
                component=fabric.name, time_ps=self.sim.now, rule=rule,
                message=f"acceptance order{tag} {accepted_ids[:8]}... does "
                        f"not pair with grant order {granted_ids[:8]}..."))
        elif expect_drained and len(accepted_ids) != len(granted_ids):
            found.append(Violation(
                component=fabric.name, time_ps=self.sim.now, rule=rule,
                message=f"{len(granted_ids)} transactions{tag} granted but "
                        f"only {len(accepted_ids)} accepted (request lost "
                        "between grant and target)"))

    # -- STBus ----------------------------------------------------------
    def _check_stbus(self, fabric, expect_drained: bool,
                     found: List[Violation]) -> None:
        self._check_pairing(fabric, "stbus.split_pairing", expect_drained,
                            found)
        if not fabric.supports_split:
            # Type 1: the node is held end to end — no grant may precede
            # the completion of the previous transaction.
            previous = None
            for _port, txn in self._grants.get(fabric, []):
                if previous is not None and (
                        previous.t_done is None
                        or txn.t_granted < previous.t_done):
                    found.append(Violation(
                        component=fabric.name, time_ps=txn.t_granted,
                        rule="stbus.t1_hold",
                        message=f"txn {txn.tid} granted at {txn.t_granted}ps "
                                f"while txn {previous.tid} (done="
                                f"{previous.t_done}) still held the node",
                        txn=txn))
                previous = txn
        for txn in self._accepts.get(fabric, []):
            if not txn.is_write:
                continue
            needs_ack = txn.meta.get("needs_ack")
            if needs_ack is False and txn.t_done != txn.t_accepted:
                found.append(Violation(
                    component=fabric.name, time_ps=txn.t_accepted,
                    rule="stbus.posted_write",
                    message=f"posted write completed at {txn.t_done}ps, not "
                            f"at acceptance ({txn.t_accepted}ps)", txn=txn))
            if needs_ack and txn.t_done is not None \
                    and txn.t_done <= txn.t_accepted:
                found.append(Violation(
                    component=fabric.name, time_ps=txn.t_done,
                    rule="stbus.nonposted",
                    message=f"non-posted write completed at {txn.t_done}ps "
                            f"without waiting for the acknowledgement "
                            f"(accepted {txn.t_accepted}ps)", txn=txn))

    # -- AHB -------------------------------------------------------------
    def _check_ahb(self, fabric, expect_drained: bool,
                   found: List[Violation]) -> None:
        self._check_pairing(fabric, "ahb.pipelining", expect_drained, found)
        # Single data link: one transaction end to end before the next
        # grant (pipelining overlaps address with data, never two datas).
        previous = None
        for _port, txn in self._grants.get(fabric, []):
            if previous is not None and (previous.t_done is None
                                         or txn.t_granted < previous.t_done):
                found.append(Violation(
                    component=fabric.name, time_ps=txn.t_granted,
                    rule="ahb.serialization",
                    message=f"txn {txn.tid} granted at {txn.t_granted}ps "
                            f"while txn {previous.tid} (done="
                            f"{previous.t_done}) still occupied the layer",
                    txn=txn))
            previous = txn
        for txn in self._accepts.get(fabric, []):
            if not txn.is_write:
                continue
            if not txn.meta.get("needs_ack"):
                found.append(Violation(
                    component=fabric.name, time_ps=txn.t_accepted or 0,
                    rule="ahb.nonposted",
                    message="write accepted without the non-posted "
                            "acknowledgement requirement", txn=txn))
            elif txn.t_done is not None and txn.t_done <= txn.t_accepted:
                found.append(Violation(
                    component=fabric.name, time_ps=txn.t_done,
                    rule="ahb.nonposted",
                    message=f"non-posted write completed at {txn.t_done}ps "
                            f"<= acceptance ({txn.t_accepted}ps)", txn=txn))

    # -- AXI -------------------------------------------------------------
    def _check_axi(self, fabric, expect_drained: bool,
                   found: List[Violation]) -> None:
        from ..interconnect.types import Opcode

        # AR and AW are independent serial channels: pairing holds per
        # address channel, not across them.
        self._check_pairing(fabric, "axi.handshake", expect_drained, found,
                            opcode=Opcode.READ)
        self._check_pairing(fabric, "axi.handshake", expect_drained, found,
                            opcode=Opcode.WRITE)
        for txn in self._accepts.get(fabric, []):
            if txn.is_read:
                if txn.t_done is None:
                    continue
                if txn.t_first_data is None:
                    found.append(Violation(
                        component=fabric.name, time_ps=txn.t_done,
                        rule="axi.handshake",
                        message="read completed without any R-channel data "
                                "beat", txn=txn))
                elif not (txn.t_accepted <= txn.t_first_data <= txn.t_done):
                    found.append(Violation(
                        component=fabric.name, time_ps=txn.t_first_data,
                        rule="axi.handshake",
                        message=f"R data at {txn.t_first_data}ps outside "
                                f"[AW/AR accept {txn.t_accepted}ps, done "
                                f"{txn.t_done}ps]", txn=txn))
            else:
                if not txn.meta.get("needs_ack"):
                    found.append(Violation(
                        component=fabric.name, time_ps=txn.t_accepted or 0,
                        rule="axi.handshake",
                        message="write accepted without a B-channel "
                                "response requirement", txn=txn))
                elif txn.t_done is not None and txn.t_done <= txn.t_accepted:
                    found.append(Violation(
                        component=fabric.name, time_ps=txn.t_done,
                        rule="axi.handshake",
                        message=f"write completed at {txn.t_done}ps before "
                                f"its B response could follow acceptance "
                                f"({txn.t_accepted}ps)", txn=txn))

    # -- registry-served generic fabrics ---------------------------------
    def _check_generic(self, fabric, spec, expect_drained: bool,
                       found: List[Violation]) -> None:
        """Spec-derived post-run checks for :class:`GenericFabric`.

        The rules mirror the hand-written per-protocol passes, but every
        behavioural toggle comes from the :class:`ProtocolSpec` entry:
        request/acceptance pairing always holds; non-split specs must
        serialize transactions end to end; write completion semantics
        follow ``spec.posted_writes``.
        """
        name = spec.name
        self._check_pairing(fabric, f"{name}.pairing", expect_drained, found)
        if not spec.split:
            previous = None
            for _port, txn in self._grants.get(fabric, []):
                if previous is not None and (
                        previous.t_done is None
                        or txn.t_granted < previous.t_done):
                    found.append(Violation(
                        component=fabric.name, time_ps=txn.t_granted,
                        rule=f"{name}.serialization",
                        message=f"txn {txn.tid} granted at {txn.t_granted}ps "
                                f"while txn {previous.tid} (done="
                                f"{previous.t_done}) still held the fabric",
                        txn=txn))
                previous = txn
        for txn in self._accepts.get(fabric, []):
            if not txn.is_write:
                continue
            needs_ack = txn.meta.get("needs_ack")
            if not spec.posted_writes and not needs_ack:
                found.append(Violation(
                    component=fabric.name, time_ps=txn.t_accepted or 0,
                    rule=f"{name}.nonposted",
                    message="write accepted without the non-posted "
                            "acknowledgement the protocol requires",
                    txn=txn))
                continue
            if needs_ack is False and txn.t_done != txn.t_accepted:
                found.append(Violation(
                    component=fabric.name, time_ps=txn.t_accepted,
                    rule=f"{name}.posted_write",
                    message=f"posted write completed at {txn.t_done}ps, not "
                            f"at acceptance ({txn.t_accepted}ps)", txn=txn))
            if needs_ack and txn.t_done is not None \
                    and txn.t_done <= txn.t_accepted:
                found.append(Violation(
                    component=fabric.name, time_ps=txn.t_done,
                    rule=f"{name}.nonposted",
                    message=f"non-posted write completed at {txn.t_done}ps "
                            f"without waiting for the acknowledgement "
                            f"(accepted {txn.t_accepted}ps)", txn=txn))

    # -- bridges ----------------------------------------------------------
    def _check_bridge(self, bridge, expect_drained: bool,
                      found: List[Violation]) -> None:
        """Store-and-forward conservation: nothing lost, nothing duplicated."""
        children = self._issued.get(bridge.init_port, [])
        forwarded = bridge.forwarded.value
        if len(children) != forwarded:
            found.append(Violation(
                component=bridge.name, time_ps=self.sim.now,
                rule="bridge.conservation",
                message=f"{forwarded} transactions forwarded but "
                        f"{len(children)} children issued on "
                        f"{bridge.dest.name}"))
        if expect_drained:
            accepted = bridge.target_port.accepted.value
            if accepted != forwarded:
                found.append(Violation(
                    component=bridge.name, time_ps=self.sim.now,
                    rule="bridge.conservation",
                    message=f"{accepted} transactions accepted on "
                            f"{bridge.source.name} but {forwarded} forwarded "
                            "(lost inside the bridge)"))
            queued = bridge.target_port.request_fifo.level
            if queued:
                found.append(Violation(
                    component=bridge.name, time_ps=self.sim.now,
                    rule="bridge.conservation",
                    message=f"{queued} request(s) still queued in the "
                            "bridge at drain"))
        parents_seen = set()
        for child in children:
            parent = child.meta.get("parent")
            if parent is None:
                found.append(Violation(
                    component=bridge.name, time_ps=self.sim.now,
                    rule="bridge.conservation",
                    message=f"child txn {child.tid} has no parent",
                    txn=child))
                continue
            if parent.tid in parents_seen:
                found.append(Violation(
                    component=bridge.name, time_ps=self.sim.now,
                    rule="bridge.conservation",
                    message=f"parent txn {parent.tid} forwarded twice "
                            "(duplicated across the bridge)", txn=child))
            parents_seen.add(parent.tid)
            if (parent.is_read and parent.t_done is not None
                    and child.t_done is not None
                    and child.t_done > parent.t_done):
                found.append(Violation(
                    component=bridge.name, time_ps=parent.t_done,
                    rule="bridge.conservation",
                    message=f"read parent {parent.tid} completed at "
                            f"{parent.t_done}ps before its child finished "
                            f"({child.t_done}ps)", txn=parent))

    # -- FIFO bounds -------------------------------------------------------
    def _check_fifo_bounds(self, fifo, found: List[Violation]) -> None:
        if fifo.high_water > fifo.capacity:
            found.append(Violation(
                component=fifo.name, time_ps=self.sim.now, rule="fifo.bounds",
                message=f"high-water mark {fifo.high_water} exceeds "
                        f"capacity {fifo.capacity}"))
        if len(fifo._items) > fifo.capacity:
            found.append(Violation(
                component=fifo.name, time_ps=self.sim.now, rule="fifo.bounds",
                message=f"level {len(fifo._items)} exceeds capacity "
                        f"{fifo.capacity}"))

    # -- span tiling -------------------------------------------------------
    def _check_span_tiling(self, found: List[Violation]) -> None:
        recorder = self.sim._spans
        if recorder is None:
            return
        from ..obs.trace import build_spans, span_tiling_errors

        for txn in recorder.completed():
            spans, _instants = build_spans(txn, recorder.marks(txn))
            for defect in span_tiling_errors(txn, spans):
                found.append(Violation(
                    component=txn.initiator, time_ps=txn.t_done,
                    rule="obs.span_tiling", message=defect, txn=txn))


__all__ = ["SimChecker", "covered_protocols"]
