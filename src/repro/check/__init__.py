"""``repro.check`` — runtime protocol/timing invariant checkers.

The paper's credibility rests on the virtual platform being cycle-accurate;
this package mechanically verifies that during simulation.  It follows the
``repro.obs`` attachment pattern exactly: :func:`checked` is an ambient
context manager that registers a construction hook on the kernel, every
:class:`~repro.core.kernel.Simulator` built inside it comes up with a
:class:`~repro.check.monitors.SimChecker` in its ``sim._checks`` slot, and
model code feeds the checker through ``is not None``-guarded notification
points.  Outside a session ``sim._checks`` is ``None`` and the guards all
fail — checking costs nothing when off (``tests/test_obs_overhead.py``
pins that against the kernel benchmark baseline).

Usage::

    from repro.check import checked, format_report

    with checked() as session:
        result = run_config(config)        # builds its own Simulator(s)
    violations = session.finalize()
    print(format_report(violations))

For fast-path vs reference kernel bit-identity, use the differential
harness::

    from repro.check import CheckedRun, random_config

    outcome = CheckedRun(random_config(seed=7))
    assert outcome.ok, outcome.format()

Or from the shell: ``repro check <experiment|config.json> [--strict]``.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, List

from ..core import kernel as _kernel
from .differential import CheckedRun, DifferentialResult, random_config
from .lt_accuracy import LtComparison, LtRun, within_bounds
from .monitors import SimChecker
from .sdram_audit import SdramCommandLog, audit_sdram
from .violations import InvariantViolation, Violation, format_report

__all__ = [
    "CheckSession",
    "CheckedRun",
    "DifferentialResult",
    "InvariantViolation",
    "LtComparison",
    "LtRun",
    "SdramCommandLog",
    "SimChecker",
    "Violation",
    "audit_sdram",
    "checked",
    "format_report",
    "random_config",
    "within_bounds",
]


class CheckSession:
    """One checking session: a checker for every simulator it saw."""

    def __init__(self, with_spans: bool = True) -> None:
        #: Also attach a :class:`~repro.obs.trace.SpanRecorder` (unless one
        #: is already present from an enclosing ``repro.obs.capture()``) so
        #: the span-tiling monitor has spans to audit.
        self.with_spans = with_spans
        self.checkers: List[SimChecker] = []

    def attach(self, sim) -> SimChecker:
        """Attach invariant checking to an already-built simulator."""
        if sim._checks is not None:
            raise RuntimeError("simulator already has an invariant checker")
        if self.with_spans and sim._spans is None:
            from ..obs.trace import SpanRecorder

            sim._spans = SpanRecorder(sim)
        checker = SimChecker(sim)
        sim._checks = checker
        self.checkers.append(checker)
        return checker

    @property
    def violations(self) -> List[Violation]:
        """Violations detected live so far (beat ordering, FIFO bounds)."""
        return [v for checker in self.checkers for v in checker.violations]

    def finalize(self, expect_drained: bool = True) -> List[Violation]:
        """Run every post-run pass on every simulator; return all violations."""
        return [v for checker in self.checkers
                for v in checker.finalize(expect_drained=expect_drained)]


@contextmanager
def checked(with_spans: bool = True) -> Iterator[CheckSession]:
    """Ambiently check every simulator built while the context is active.

    Note on composition with :func:`repro.obs.capture`: ``capture()`` refuses
    to attach to a simulator that already has a span recorder, so when both
    are wanted, enter ``capture()`` *first* and ``checked()`` inside it (the
    session then reuses the capture's recorder instead of making its own).
    """
    session = CheckSession(with_spans=with_spans)
    _kernel._new_sim_hooks.append(session.attach)
    try:
        yield session
    finally:
        _kernel._new_sim_hooks.remove(session.attach)
