"""Independent SDRAM command-stream auditor.

The :class:`~repro.memory.sdram.SdramDevice` enforces JEDEC timing
*constructively* — it computes the earliest legal slot for every command.
That makes it useless as a witness for its own correctness: a bug in the
readiness bookkeeping moves the commands *and* the check together.

The auditor closes the loop the way the paper validated its controller
("with RTL signal waveforms on a cycle-by-cycle basis"): when checks are
enabled the device appends every issued command to a
:class:`SdramCommandLog`, and :func:`audit_sdram` replays that stream
against :class:`~repro.memory.timing.SdramTiming` from first principles —
per-bank row state, tRCD/tRP/tRAS/tRC/tRRD/tRFC distances, command-bus
spacing and the autorefresh interval — sharing no state with the device.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from .violations import Violation

#: Command mnemonics as the paper lists them (ACTIVE -> ACT).
CMD_PRECHARGE = "PRE"
CMD_ACTIVATE = "ACT"
CMD_READ = "RD"
CMD_WRITE = "WR"
CMD_REFRESH = "REF"


@dataclass
class SdramCommandLog:
    """The recorded command stream of one SDRAM device.

    Entries are ``(time_ps, cmd, bank, row)`` with ``bank``/``row`` of
    ``-1`` where not applicable (REF).  The device appends in issue order;
    :func:`audit_sdram` sorts defensively anyway.
    """

    name: str
    timing: object  # SdramTiming (duck-typed; this module stays import-light)
    period_ps: int
    #: Set by the LMI controller when its autorefresh engine is enabled;
    #: bare devices (unit tests) are not expected to refresh.
    refresh_expected: bool = False
    commands: List[Tuple[int, str, int, int]] = field(default_factory=list)

    def record(self, time_ps: int, cmd: str, bank: int = -1,
               row: int = -1) -> None:
        self.commands.append((time_ps, cmd, bank, row))


def audit_sdram(log: SdramCommandLog,
                banks: Optional[int] = None) -> List[Violation]:
    """Replay ``log`` against its timing parameters; return violations.

    Rules checked (rule ids in parentheses):

    * row state — RD/WR only to the open row, ACT only on a closed bank,
      REF only with every bank precharged (``sdram.row_state``);
    * tRCD — ACT to RD/WR, same bank (``sdram.t_rcd``);
    * tRP  — PRE to ACT/REF, same bank (``sdram.t_rp``);
    * tRAS — ACT to PRE, same bank (``sdram.t_ras``);
    * tRC  — ACT to ACT, same bank (``sdram.t_rc``);
    * tRRD — ACT to ACT, any bank (``sdram.t_rrd``);
    * tRFC — REF to next ACT (``sdram.t_rfc``);
    * command-bus occupancy — one command per clock (``sdram.cmd_bus``);
    * autorefresh — when refreshes are expected, no ACT/RD/WR may run with
      the last refresh staler than tREFI plus a bounded service slack
      (``sdram.refresh``; the LMI engine forgives refresh debt across idle
      gaps, so the slack covers its worst-case group-service latency).
    """
    timing = log.timing
    period = log.period_ps
    cyc = lambda n: n * period  # noqa: E731 - tiny local helper
    commands = sorted(log.commands)
    violations: List[Violation] = []

    def flag(time_ps: int, rule: str, message: str,
             cmd: Optional[Tuple[int, str, int, int]] = None) -> None:
        violations.append(Violation(component=log.name, time_ps=time_ps,
                                    rule=rule, message=message, txn=cmd))

    nbanks = banks if banks is not None else 1 + max(
        [bank for _, _, bank, _ in commands if bank >= 0], default=0)
    open_row = [None] * nbanks
    last_act = [None] * nbanks
    last_pre = [None] * nbanks
    last_act_any: Optional[int] = None
    last_ref: Optional[int] = None
    last_cmd_ps: Optional[int] = None
    #: Refresh staleness bound: the interval itself plus the engine's
    #: worst-case service latency (a refresh cycle, a row cycle, a write
    #: recovery and a generous command/pipeline allowance).
    refresh_limit = cyc(timing.t_refi + timing.t_rfc + timing.t_rc
                        + timing.t_ras + 64)

    for entry in commands:
        when, cmd, bank, row = entry
        if last_cmd_ps is not None and when - last_cmd_ps < cyc(1):
            flag(when, "sdram.cmd_bus",
                 f"command {cmd} only {when - last_cmd_ps}ps after the "
                 f"previous command (one per {period}ps clock)", entry)
        last_cmd_ps = when
        if log.refresh_expected and cmd in (CMD_ACTIVATE, CMD_READ, CMD_WRITE):
            since = when - (last_ref if last_ref is not None else 0)
            if since > refresh_limit:
                flag(when, "sdram.refresh",
                     f"{cmd} with the last AUTOREFRESH {since}ps stale "
                     f"(limit {refresh_limit}ps = tREFI + slack)", entry)
        if cmd == CMD_ACTIVATE:
            if open_row[bank] is not None:
                flag(when, "sdram.row_state",
                     f"ACT bank {bank} with row {open_row[bank]} open", entry)
            if last_pre[bank] is not None and \
                    when - last_pre[bank] < cyc(timing.t_rp):
                flag(when, "sdram.t_rp",
                     f"ACT bank {bank} {when - last_pre[bank]}ps after PRE "
                     f"(tRP = {cyc(timing.t_rp)}ps)", entry)
            if last_act[bank] is not None and \
                    when - last_act[bank] < cyc(timing.t_rc):
                flag(when, "sdram.t_rc",
                     f"ACT bank {bank} {when - last_act[bank]}ps after the "
                     f"previous ACT (tRC = {cyc(timing.t_rc)}ps)", entry)
            if last_act_any is not None and \
                    when - last_act_any < cyc(timing.t_rrd):
                flag(when, "sdram.t_rrd",
                     f"ACT {when - last_act_any}ps after an ACT on another "
                     f"bank (tRRD = {cyc(timing.t_rrd)}ps)", entry)
            if last_ref is not None and when - last_ref < cyc(timing.t_rfc):
                flag(when, "sdram.t_rfc",
                     f"ACT {when - last_ref}ps after AUTOREFRESH "
                     f"(tRFC = {cyc(timing.t_rfc)}ps)", entry)
            open_row[bank] = row
            last_act[bank] = when
            last_act_any = when
        elif cmd in (CMD_READ, CMD_WRITE):
            if open_row[bank] != row:
                flag(when, "sdram.row_state",
                     f"{cmd} bank {bank} row {row} but open row is "
                     f"{open_row[bank]}", entry)
            if last_act[bank] is not None and \
                    when - last_act[bank] < cyc(timing.t_rcd):
                flag(when, "sdram.t_rcd",
                     f"{cmd} bank {bank} {when - last_act[bank]}ps after ACT "
                     f"(tRCD = {cyc(timing.t_rcd)}ps)", entry)
        elif cmd == CMD_PRECHARGE:
            if last_act[bank] is not None and open_row[bank] is not None and \
                    when - last_act[bank] < cyc(timing.t_ras):
                flag(when, "sdram.t_ras",
                     f"PRE bank {bank} {when - last_act[bank]}ps after ACT "
                     f"(tRAS = {cyc(timing.t_ras)}ps)", entry)
            open_row[bank] = None
            last_pre[bank] = when
        elif cmd == CMD_REFRESH:
            for b in range(nbanks):
                if open_row[b] is not None:
                    flag(when, "sdram.row_state",
                         f"AUTOREFRESH with bank {b} row {open_row[b]} open",
                         entry)
                if last_pre[b] is not None and \
                        when - last_pre[b] < cyc(timing.t_rp):
                    flag(when, "sdram.t_rp",
                         f"AUTOREFRESH {when - last_pre[b]}ps after PRE on "
                         f"bank {b} (tRP = {cyc(timing.t_rp)}ps)", entry)
            last_ref = when
        else:
            flag(when, "sdram.unknown", f"unknown command {cmd!r}", entry)
    return violations


__all__ = ["SdramCommandLog", "audit_sdram", "CMD_PRECHARGE", "CMD_ACTIVATE",
           "CMD_READ", "CMD_WRITE", "CMD_REFRESH"]
