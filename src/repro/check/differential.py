"""Differential harness: fast path vs reference kernel, under full checks.

The PR 1 kernel selects one of two pre-bound loop bodies at ``run()`` time:
the *fast* untraced body and the *traced* reference body (the original,
straightforward loop shape).  Both must produce bit-identical simulations —
a divergence would silently corrupt every figure the repo reproduces.

:class:`CheckedRun` executes one :class:`~repro.platforms.config.PlatformConfig`
twice — once per loop body, each leg inside its own :func:`repro.check.checked`
session — and asserts:

* identical processed-event counts and final simulation time,
* field-for-field identical :class:`~repro.analysis.metrics.RunResult`
  (execution time, transaction/byte counts, latency statistics,
  utilization, extras),
* zero invariant violations from the full monitor suite on both legs.

:func:`random_config` derives small-but-diverse platform configurations
from an integer seed (every protocol, both topologies, both memory kinds,
bridge/two-phase/CPU variations), sized so a differential pair completes in
well under a second — suitable for hypothesis-driven sweeps
(``tests/test_kernel_fastpath.py``) and the ``check_smoke`` CI tier.
"""

from __future__ import annotations

import dataclasses
import random
from dataclasses import dataclass, field
from typing import List, Optional

from ..analysis.metrics import RunResult
from ..core.kernel import Simulator
from ..platforms.config import (
    ClusterSpec,
    CpuConfig,
    IpSpec,
    MemoryConfig,
    PlatformConfig,
    TwoPhaseSpec,
)
from ..interconnect.types import StbusType
from ..platforms.reference import build_platform
from .violations import Violation


def _noop_trace(time_ps, event) -> None:
    """A trace that records nothing — forces the traced (reference) loop
    body without the cost or side effects of real tracing."""


#: Generous drain bound for the small randomized configurations (1 ms).
_DEFAULT_MAX_PS = 10**9


@dataclass
class DifferentialResult:
    """Outcome of one fast-vs-reference differential run."""

    label: str
    fast: RunResult
    reference: RunResult
    fast_events: int
    reference_events: int
    fast_now: int
    reference_now: int
    #: Invariant violations from both legs (component, time, rule, txn).
    violations: List[Violation] = field(default_factory=list)
    #: Human-readable fast-vs-reference divergences (empty when identical).
    mismatches: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations and not self.mismatches

    def format(self) -> str:
        from .violations import format_report

        lines = [f"differential run {self.label}: "
                 f"{self.fast_events} events, now={self.fast_now}ps"]
        if self.mismatches:
            lines.append("fast path diverged from the reference kernel:")
            lines.extend(f"  {m}" for m in self.mismatches)
        else:
            lines.append("fast path and reference kernel are bit-identical")
        lines.append(format_report(self.violations, limit=20))
        return "\n".join(lines)


def _run_leg(config: PlatformConfig, max_ps: Optional[int],
             reference: bool):
    """One leg: build, simulate and finalize under its own check session."""
    from . import checked

    with checked() as session:
        sim = Simulator(trace=_noop_trace) if reference else Simulator()
        platform = build_platform(sim, config)
        result = platform.run(max_ps=max_ps)
    return sim, result, session.finalize(expect_drained=True)


def CheckedRun(config: PlatformConfig,
               max_ps: Optional[int] = _DEFAULT_MAX_PS) -> DifferentialResult:
    """Run ``config`` on both kernel paths with all monitors; compare.

    Returns a :class:`DifferentialResult`; check ``.ok`` (or raise on
    ``.format()``) rather than trusting either leg alone.
    """
    fast_sim, fast_result, fast_violations = _run_leg(
        config, max_ps, reference=False)
    ref_sim, ref_result, ref_violations = _run_leg(
        config, max_ps, reference=True)

    mismatches: List[str] = []
    if fast_sim.processed_events != ref_sim.processed_events:
        mismatches.append(
            f"processed_events: fast={fast_sim.processed_events} "
            f"reference={ref_sim.processed_events}")
    if fast_sim.now != ref_sim.now:
        mismatches.append(f"final time: fast={fast_sim.now}ps "
                          f"reference={ref_sim.now}ps")
    for f in dataclasses.fields(RunResult):
        fast_value = getattr(fast_result, f.name)
        ref_value = getattr(ref_result, f.name)
        if fast_value != ref_value:
            mismatches.append(f"RunResult.{f.name}: fast={fast_value!r} "
                              f"reference={ref_value!r}")

    return DifferentialResult(
        label=config.label(),
        fast=fast_result,
        reference=ref_result,
        fast_events=fast_sim.processed_events,
        reference_events=ref_sim.processed_events,
        fast_now=fast_sim.now,
        reference_now=ref_sim.now,
        violations=list(fast_violations) + list(ref_violations),
        mismatches=mismatches,
    )


def random_config(seed: int) -> PlatformConfig:
    """A small randomized :class:`PlatformConfig`, deterministic in ``seed``.

    Covers every fabric protocol, both topologies, on-chip and LMI/SDRAM
    memory, posted/non-posted traffic mixes, bridge-split overrides,
    two-phase IPs and the occasional CPU — while staying small enough
    (a handful of IPs, tens of transactions) that the differential pair
    runs in milliseconds.
    """
    rng = random.Random(seed)
    protocol = rng.choice(["stbus", "stbus", "ahb", "axi",
                           "wishbone", "apb", "axi4lite", "avalon",
                           "tilelink"])
    topology = rng.choice(["distributed", "collapsed"])

    clusters = []
    for c in range(rng.randint(1, 2)):
        ips = []
        for i in range(rng.randint(1, 2)):
            ips.append(IpSpec(
                name=f"c{c}_ip{i}",
                transactions=rng.randint(3, 8),
                burst_beats=rng.choice([1, 2, 4, 8]),
                read_fraction=rng.choice([0.0, 0.5, 1.0]),
                idle_cycles=rng.randint(0, 6),
                message_packets=rng.choice([1, 1, 2]),
                pattern=rng.choice(["seq", "random", "strided"]),
                max_outstanding=rng.choice([1, 2, 4]),
                priority=rng.choice([0, 0, 1]),
            ))
        clusters.append(ClusterSpec(
            name=f"c{c}",
            freq_mhz=rng.choice([200.0, 266.0, 400.0]),
            data_width_bytes=rng.choice([4, 8]),
            stbus_type=rng.choice([StbusType.T2, StbusType.T3]),
            ips=tuple(ips),
        ))

    memory = MemoryConfig(kind=rng.choice(["onchip", "onchip", "lmi"]),
                          wait_states=rng.randint(0, 2))
    cpu = CpuConfig(enabled=rng.random() < 0.25, blocks=8,
                    working_set=1 << 12, seed=seed & 0xFFFF)
    two_phase = (TwoPhaseSpec(fraction=0.5, idle_multiplier=4.0)
                 if rng.random() < 0.25 else None)

    return PlatformConfig(
        protocol=protocol,
        topology=topology,
        memory=memory,
        cpu=cpu,
        clusters=tuple(clusters),
        central_freq_mhz=rng.choice([200.0, 250.0]),
        central_width_bytes=rng.choice([4, 8]),
        central_stbus_type=rng.choice(
            [StbusType.T2, StbusType.T3, StbusType.T3, StbusType.T1]),
        traffic_scale=1.0,
        bridge_crossing_cycles=rng.choice([1, 4]),
        bridge_split_override=rng.choice([None, None, True, False]),
        lmi_bridge_split=rng.random() < 0.25,
        two_phase=two_phase,
        message_arbitration=rng.random() < 0.75,
        central_crossbar=(protocol == "stbus" and rng.random() < 0.25),
        seed=seed,
    )


__all__ = ["CheckedRun", "DifferentialResult", "random_config"]
