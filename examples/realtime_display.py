#!/usr/bin/env python3
"""Real-time scan-out under memory contention (guideline 4).

A display controller must fetch one frame-buffer line from the LMI + DDR
memory every line period while two DMA engines stream through the same
controller.  With plain round-robin arbitration the panel underruns; with
priority labels on the display's requests (an STBus Type-2+ feature) the
I/O bottleneck disappears — and the DMA traffic still completes.

Run with::

    python examples/realtime_display.py
"""

from repro.experiments import io_qos


def main() -> None:
    data = io_qos.run(lines=40)
    print(io_qos.report(data))
    failures = io_qos.check(data)
    print("\nshape claims:", "all hold" if not failures else failures)
    print("\nInterpretation: monitoring only the bus would show 'low "
          "display bandwidth' in both cases; the deadline margins show "
          "the round-robin architecture is the bottleneck, and a "
          "priority-aware I/O architecture removes it (guideline 4).")


if __name__ == "__main__":
    main()
