#!/usr/bin/env python3
"""A set-top-box style video pipeline on the full platform stack.

Models the workload class the paper's introduction motivates: a video
stream is *decrypted*, *decoded* and *resized* by three dependent engines
(IPTG agents with inter-agent synchronisation points), all sharing one
off-chip DDR SDRAM behind the LMI memory controller, while an ST220 CPU
interferes with cache-miss traffic.

Run with::

    python examples/video_pipeline.py
"""

from repro import AddressRange, Simulator, StbusNode, StbusType
from repro.analysis import format_table
from repro.cpu import BenchmarkConfig, St220Core, SyntheticBenchmark
from repro.memory import LmiConfig, LmiController
from repro.traffic import AgentSpec, Fixed, IptgPhase, MultiAgentIp

MEM_BASE = 0x8000_0000
MEM_SPAN = 1 << 26


def main() -> None:
    sim = Simulator()

    # Interconnect: one STBus T3 node at 250 MHz, 64-bit.
    node = StbusNode(sim, "n8", sim.clock(freq_mhz=250, name="bus_clk"),
                     data_width_bytes=8, bus_type=StbusType.T3)

    # Memory subsystem: LMI controller + DDR SDRAM at 166 MHz.
    lmi = LmiController.attach(
        sim, node, "lmi", MEM_BASE, MEM_SPAN,
        sim.clock(freq_mhz=166, name="lmi_clk"),
        config=LmiConfig(input_fifo_depth=6, lookahead_depth=4))

    # The video pipeline: three dependent agents, bounded frame buffers.
    frame_phase = IptgPhase(transactions=6, burst_beats=Fixed(8),
                            beat_bytes=8, idle_cycles=Fixed(2),
                            read_fraction=0.5)
    pipeline = MultiAgentIp(
        sim, "video", node,
        agents=[
            AgentSpec("decrypt", frame_phase, items=6, buffering=2,
                      max_outstanding=4),
            AgentSpec("decode", frame_phase, items=6, buffering=2,
                      max_outstanding=4),
            AgentSpec("resize", frame_phase, items=6, max_outstanding=4),
        ],
        address_base=MEM_BASE, address_span=1 << 22, seed=3)

    # The ST220 running a cache-miss-heavy synthetic benchmark.
    cpu_port = node.connect_initiator("st220", max_outstanding=2)
    cpu = St220Core(sim, "st220", cpu_port, SyntheticBenchmark(
        BenchmarkConfig(blocks=200, working_set=1 << 15,
                        data_base=MEM_BASE + 0x0100_0000,
                        code_base=MEM_BASE + 0x0200_0000)))

    sim.run(until=100_000_000_000)

    print("Video pipeline on STBus + LMI/DDR (with CPU interference)\n")
    rows = []
    stages = {}
    for iptg in pipeline.iptgs:
        stage = iptg.name.split(".")[1]
        stats = stages.setdefault(stage, {"txns": 0, "bytes": 0, "lat": []})
        stats["txns"] += iptg.completed
        stats["bytes"] += iptg.bytes_generated
        stats["lat"].append(iptg.mean_latency_ps())
    for stage, stats in stages.items():
        mean_lat = sum(stats["lat"]) / len(stats["lat"]) / 1000
        rows.append([stage, stats["txns"], stats["bytes"], mean_lat])
    print(format_table(["stage", "transactions", "bytes", "mean lat (ns)"],
                       rows, float_digits=1))
    print(f"\npipeline finished: {pipeline.done.triggered} "
          f"at {sim.now / 1000:.0f} ns")
    print(f"CPU blocks retired: {cpu.blocks_retired.value}, "
          f"D-cache miss rate {cpu.dcache.miss_rate:.1%}, "
          f"stall cycles {cpu.stall_cycles.value}")
    print(f"LMI: served {lmi.served.value} transactions, "
          f"{lmi.merges.value} opcode merges, "
          f"row-hit rate {lmi.device.row_hit_rate:.1%}, "
          f"{lmi.device.refreshes.value} refreshes")


if __name__ == "__main__":
    main()
