#!/usr/bin/env python3
"""Design-space exploration with the platform harness.

The paper's closing guideline: a complete modelling framework lets you
"fine-grain tune the architecture for the application domain of interest".
This example sweeps two of the knobs the guidelines single out — the LMI
input-FIFO depth (guideline 2) and the initiators' outstanding-transaction
budget (guideline 3) — over the full reference platform and prints the
execution-time landscape.

Run with::

    python examples/design_space_exploration.py
"""

from dataclasses import replace

from repro.analysis import format_table
from repro.experiments.common import run_config
from repro.memory import LmiConfig
from repro.platforms import instance, lmi_memory

FIFO_DEPTHS = (1, 2, 4, 8)
OUTSTANDING = (1, 2, 4)


def configure(fifo_depth: int, outstanding: int):
    config = instance("stbus", "distributed",
                      lmi_memory(LmiConfig(input_fifo_depth=fifo_depth,
                                           lookahead_depth=min(4, fifo_depth))),
                      traffic_scale=0.4)
    clusters = tuple(
        replace(cluster, ips=tuple(replace(ip, max_outstanding=outstanding)
                                   for ip in cluster.ips))
        for cluster in config.clusters)
    return config.scaled(clusters=clusters)


def main() -> None:
    print("DSE: distributed STBus + LMI — execution time (us)\n")
    rows = []
    best = None
    for outstanding in OUTSTANDING:
        row = [f"outstanding={outstanding}"]
        for depth in FIFO_DEPTHS:
            result = run_config(configure(depth, outstanding))
            micros = result.execution_time_ps / 1_000_000
            row.append(micros)
            if best is None or micros < best[0]:
                best = (micros, depth, outstanding)
        rows.append(row)
    headers = ["config"] + [f"fifo={d}" for d in FIFO_DEPTHS]
    print(format_table(headers, rows, float_digits=2))
    micros, depth, outstanding = best
    print(f"\nbest point: LMI FIFO depth {depth}, "
          f"{outstanding} outstanding transactions -> {micros:.2f} us")
    print("(deeper controller buffering only pays off once the initiators "
          "can keep it fed — guidelines 2 and 3 interact)")


if __name__ == "__main__":
    main()
