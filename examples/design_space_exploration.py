#!/usr/bin/env python3
"""Design-space exploration with the repro.dse search engine.

The paper's closing guideline: a complete modelling framework lets you
"fine-grain tune the architecture for the application domain of interest".
This example asks the framework's search subsystem (docs/DSE.md) the
question directly instead of nesting sweep loops by hand: over the LMI
platform, explore FIFO depth (guideline 2), the lookahead window
(guideline 1), the memory topology and the bus width, and return the
*Pareto front* over latency, fabric utilisation and wire cost — every
member verified non-dominated by an independent checker.

Run with::

    python examples/design_space_exploration.py
"""

from repro.dse import explore, front_table, parse_dse

DOCUMENT = {
    "base": {
        "protocol": "stbus",
        "topology": "distributed",
        "traffic_scale": 0.4,
        "cpu": {"enabled": False},
        "memory": {"kind": "lmi", "sdram": "ddr"},
    },
    "max_us": 20000.0,
    "axes": {
        "topology": ["shared", "partial", "crossbar"],
        "fifo_depth": [1, 2, 4, 8],
        "lookahead": [1, 4],
    },
    "objectives": ["latency", "utilization", "cost"],
    "optimizer": {"seed": 1},
}


def main() -> None:
    print("DSE: STBus + LMI/DDR — Pareto front over "
          "(latency, idle fraction, wire cost)\n")
    outcome = explore(parse_dse(DOCUMENT))
    print(front_table(outcome))
    print(f"\n{outcome.mode} search: {len(outcome.evaluated)} of "
          f"{outcome.space_size} designs simulated, "
          f"{len(outcome.front)} non-dominated")
    cheapest = min(outcome.front, key=lambda m: m.objectives["cost"])
    fastest = min(outcome.front, key=lambda m: m.objectives["latency"])
    print(f"cheapest: {cheapest.label}")
    print(f"fastest:  {fastest.label}")
    print("(deeper controller buffering and a wider interconnect only pay "
          "off when the traffic can exploit them — the front shows exactly "
          "where the wire budget stops buying latency)")


if __name__ == "__main__":
    main()
