#!/usr/bin/env python3
"""Multi-abstraction simulation: transaction-level vs cycle-accurate.

The paper's virtual platform is explicitly multi-abstraction — traffic can
be simulated at "transaction-level [or] bus cycle-accurate" detail.  This
example runs the same collapsed platform at both tiers and reports the
accuracy/speed trade: the TLM tier should land within a few tens of
percent on execution time while processing far fewer kernel events.

Run with::

    python examples/abstraction_levels.py
"""

import time

from repro.analysis import format_table
from repro.core import Simulator
from repro.platforms import build_platform, onchip_memory, instance
from repro.platforms.config import CpuConfig


def saturating_clusters():
    """Back-to-back traffic so the memory, not generation, sets the pace
    (the regime where abstraction accuracy actually matters)."""
    from dataclasses import replace

    from repro.platforms import reference_clusters

    return tuple(
        replace(cluster, ips=tuple(replace(ip, idle_cycles=0)
                                   for ip in cluster.ips))
        for cluster in reference_clusters())


def run_tier(abstraction: str):
    config = instance("stbus", "collapsed", onchip_memory(1),
                      abstraction=abstraction,
                      clusters=saturating_clusters(),
                      cpu=CpuConfig(enabled=False),
                      traffic_scale=0.5)
    sim = Simulator()
    started = time.perf_counter()
    result = build_platform(sim, config).run(max_ps=10**13)
    wall = time.perf_counter() - started
    return result, sim.processed_events, wall


def main() -> None:
    print("Multi-abstraction platform simulation\n")
    cycle, cycle_events, cycle_wall = run_tier("cycle")
    tlm, tlm_events, tlm_wall = run_tier("tlm")
    rows = [
        ["cycle-accurate", cycle.execution_time_ps / 1e6, cycle_events,
         cycle_wall * 1000],
        ["transaction-level", tlm.execution_time_ps / 1e6, tlm_events,
         tlm_wall * 1000],
    ]
    print(format_table(
        ["tier", "simulated exec (us)", "kernel events", "wall time (ms)"],
        rows, float_digits=2))
    error = abs(tlm.execution_time_ps - cycle.execution_time_ps) \
        / cycle.execution_time_ps
    speedup = cycle_events / max(1, tlm_events)
    print(f"\nTLM accuracy: {error:.1%} execution-time deviation")
    print(f"TLM event reduction: {speedup:.1f}x fewer kernel events")
    print("\nFlow: explore broadly at transaction level, confirm the "
          "short-list cycle-accurately (Section 3's multi-abstraction "
          "methodology).")


if __name__ == "__main__":
    main()
