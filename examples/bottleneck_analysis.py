#!/usr/bin/env python3
"""Bottleneck diagnosis from the memory-controller interface (Section 5).

"Should low bandwidth communication be monitored at the I/O interface,
this might be due to the actual inefficiency of the memory controller or
to the poor performance of the system interconnect" — and the cure is the
Fig. 6 instrument: classify every cycle at the LMI bus interface.

This example runs the same traffic through a split-capable STBus platform
and a blocking-bridge AHB platform and shows how the interface statistics
point at two different bottlenecks.

Run with::

    python examples/bottleneck_analysis.py
"""

from repro.analysis import STATE_FULL, STATE_IDLE, STATE_STORING, breakdown_chart
from repro.analysis.timeline import TimelineSampler, counter_probe
from repro.core import Simulator
from repro.platforms import build_platform, instance, lmi_memory


def diagnose(label: str, protocol: str) -> None:
    config = instance(protocol, "distributed", lmi_memory(),
                      traffic_scale=0.4)
    sim = Simulator()
    platform = build_platform(sim, config)
    # Section 5 instrument #2: memory bandwidth over time.
    # Keep the horizon inside the run: an idle sampling tail would dilute
    # the monitor's time-weighted state fractions.
    sampler = TimelineSampler(
        sim, interval_ps=650_000, horizon_ps=32_000_000,
        probes={"served": counter_probe(platform.lmi.served)})
    result = platform.run(max_ps=20_000_000_000_000)
    report = platform.monitor.report()
    print(f"\n--- {label} ---")
    print(breakdown_chart(report, (STATE_FULL, STATE_STORING, STATE_IDLE)))
    print(f"memory txn rate over time: "
          f"|{sampler.sparkline('served', rate=True, width=50)}|")
    row = next(iter(report.values()))
    if row[STATE_FULL] > 0.25:
        verdict = ("memory controller saturated: the interconnect delivers "
                   "more than the LMI can drain -> optimise the memory/IO "
                   "architecture")
    elif row[STATE_IDLE] > 0.85:
        verdict = ("memory controller starving: requests are stuck in the "
                   "interconnect -> the system interconnect is the "
                   "bottleneck (blocking bridges, no split transactions)")
    else:
        verdict = "balanced operation"
    print(f"execution time: {result.execution_time_ps / 1_000_000:.1f} us")
    print(f"diagnosis: {verdict}")


def main() -> None:
    print("Bottleneck analysis via LMI bus-interface statistics")
    diagnose("full STBus platform (split GenConv bridges)", "stbus")
    diagnose("full AHB platform (blocking bridges)", "ahb")


if __name__ == "__main__":
    main()
