#!/usr/bin/env python3
"""Quickstart: build a small memory-centric system and measure it.

One STBus node, one on-chip memory with 1 wait state, two traffic
generators — the minimal many-to-one setup of Section 4.1.2.  Watch the
response channel settle at the 50% efficiency bound the paper derives.

Run with::

    python examples/quickstart.py
"""

from repro import AddressRange, OnChipMemory, Simulator, StbusNode, StbusType
from repro.analysis import format_table, percent
from repro.traffic import Fixed, Iptg, IptgPhase


def main() -> None:
    sim = Simulator()
    clk = sim.clock(freq_mhz=200, name="clk")

    # One STBus Type-2 node (split + pipelined transactions).
    node = StbusNode(sim, "n0", clk, data_width_bytes=4,
                     bus_type=StbusType.T2)

    # A 1-wait-state on-chip memory decoding the whole address map.
    mem_port = node.add_target("mem", AddressRange(0x0000_0000, 1 << 20),
                               request_depth=2, response_depth=4)
    OnChipMemory(sim, "mem", mem_port, clk, wait_states=1, width_bytes=4)

    # Two IPTGs issuing back-to-back 8-beat read bursts.
    iptgs = []
    for i in range(2):
        port = node.connect_initiator(f"iptg{i}", max_outstanding=4)
        phase = IptgPhase(transactions=100, burst_beats=Fixed(8),
                          beat_bytes=4, idle_cycles=Fixed(0),
                          read_fraction=1.0)
        iptgs.append(Iptg(sim, f"iptg{i}", port, [phase],
                          address_base=i * 0x10000, address_span=0x10000,
                          seed=i + 1))

    sim.run(until=10_000_000_000)

    print("Quickstart: 2 IPTGs -> STBus T2 node -> 1-ws on-chip memory\n")
    rows = []
    for iptg in iptgs:
        rows.append([iptg.name, iptg.completed,
                     iptg.bytes_generated,
                     iptg.mean_latency_ps() / 1000])
    print(format_table(["generator", "transactions", "bytes", "mean lat (ns)"],
                       rows, float_digits=1))
    print(f"\nexecution time: {sim.now / 1000:.0f} ns")
    print(f"request-channel utilisation:  "
          f"{percent(node.req_channel.utilization())}")
    print(f"response-channel utilisation: "
          f"{percent(node.resp_channel.utilization())}   "
          "<- the 50% bound of Section 4.1.2")


if __name__ == "__main__":
    main()
