"""Setup shim for environments whose pip cannot build PEP 517 editable wheels
(the offline container lacks the ``wheel`` package).  ``pip install -e .``
falls back to this via ``python setup.py develop``; configuration lives in
pyproject.toml."""

from setuptools import setup

setup()
