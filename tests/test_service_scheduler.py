"""Scheduler tests: deterministic dispatch, dedupe layers, preemption
and migration — driven directly on an event loop (docs/SERVICE.md)."""

import asyncio

from repro.platforms.loader import config_to_dict
from repro.platforms.variants import quick_config
from repro.service import JobQueue, Scheduler, parse_submission
from repro.sweep import SweepCache, _simulate, result_to_dict

CONFIG = config_to_dict(quick_config(traffic_scale=0.05))
MAX_PS = 10_000_000


def run_jobs(documents, fleet=2, cache=None, slice_ps=500_000,
             prepare=None, timeout=120.0):
    """Submit every document up front, run the scheduler to completion.

    Submitting before the dispatch loop starts makes the dispatch order a
    pure function of the queue contents — no wall-clock races.
    """
    queue = JobQueue()
    scheduler = Scheduler(queue, fleet=fleet, cache=cache,
                          slice_ps=slice_ps)
    jobs = [queue.submit(parse_submission(document))
            for document in documents]
    if prepare is not None:
        prepare(scheduler)

    async def scenario():
        await scheduler.start()
        try:
            done = await queue.wait(
                lambda: all(job.state in ("done", "failed")
                            for job in jobs),
                timeout=timeout)
            assert done, [job.view() for job in jobs]
        finally:
            await scheduler.stop()

    asyncio.run(scenario())
    return queue, scheduler, jobs


def started_order(jobs):
    """(job id, unit) pairs in the order workers picked them up."""
    events = sorted((event for job in jobs for event in job.events
                     if event["event"] == "unit_started"
                     and event.get("worker") is not None),
                    key=lambda event: event["seq"])
    return [(event["job"], event["unit"]) for event in events]


def doc(tenant="alice", seed=None, **overrides):
    config = dict(CONFIG)
    if seed is not None:  # distinct configs defeat the dedupe layers
        config["seed"] = seed
    base = {"tenant": tenant, "config": config, "max_us": MAX_PS / 1e6}
    base.update(overrides)
    return base


class TestDeterministicDispatch:
    def test_priority_lanes_drain_in_rank_order_on_saturated_pool(self):
        """One worker, three lanes submitted worst-first: execution order
        must be interactive, normal, batch regardless of arrival."""
        documents = [
            doc(tenant="c", priority="batch", seed=3),
            doc(tenant="a", priority="normal", seed=2),
            doc(tenant="b", priority="interactive", seed=1),
        ]
        _queue, _scheduler, jobs = run_jobs(documents, fleet=1)
        assert started_order(jobs) == [
            (jobs[2].id, 0), (jobs[1].id, 0), (jobs[0].id, 0)]

    def test_same_lane_fifo_within_saturated_pool(self):
        documents = [doc(tenant=f"t{n}", seed=n + 1) for n in range(3)]
        _queue, _scheduler, jobs = run_jobs(documents, fleet=1)
        assert started_order(jobs) == [(job.id, 0) for job in jobs]


class TestDedupe:
    def test_identical_inflight_units_coalesce(self):
        """Two identical submissions racing on a 2-worker fleet: exactly
        one simulates, the other follows its in-flight future."""
        _q, _s, jobs = run_jobs([doc(tenant="a"), doc(tenant="b")])
        sources = sorted(job.units[0].cached or "run" for job in jobs)
        assert sources == ["inflight", "run"]
        first, second = (job.units[0].result for job in jobs)
        assert first == second

    def test_cache_hit_retires_unit_without_a_worker(self, tmp_path):
        cache = SweepCache(tmp_path / "store")
        _q, _s, warm = run_jobs([doc()], cache=cache)
        assert warm[0].units[0].cached is None  # cold: simulated

        _q, _s, hits = run_jobs([doc()], cache=cache)
        unit = hits[0].units[0]
        assert unit.cached == "cache"
        assert unit.worker is None
        assert unit.result == warm[0].units[0].result

    def test_forced_checkpoint_bypasses_cache(self, tmp_path):
        """A checkpoint_at_us job exists to exercise preemption, so a
        cache hit must not short-circuit it."""
        cache = SweepCache(tmp_path / "store")
        run_jobs([doc()], cache=cache)  # populate the store
        _q, _s, jobs = run_jobs([doc(checkpoint_at_us=1.0)], cache=cache)
        unit = jobs[0].units[0]
        assert unit.cached is None
        assert unit.preemptions == 1

    def test_trace_jobs_bypass_cache(self, tmp_path):
        cache = SweepCache(tmp_path / "store")
        run_jobs([doc()], cache=cache)
        _q, _s, jobs = run_jobs([doc(trace=True)], cache=cache)
        unit = jobs[0].units[0]
        assert unit.cached is None
        assert unit.trace is not None
        assert len(unit.trace["traceEvents"]) > 0


class TestPreemption:
    def test_forced_checkpoint_resumes_bit_identical(self):
        """Preempt at an exact simulated instant, migrate to the other
        worker, resume — the result must equal an uninterrupted run."""
        _q, scheduler, jobs = run_jobs(
            [doc(checkpoint_at_us=1.0)], fleet=2)
        unit = jobs[0].units[0]
        assert unit.preemptions == 1
        events = {event["event"]: event for event in jobs[0].events}
        assert events["unit_preempted"]["at_ps"] == 1_000_000
        # Migration: resumed on a different worker than it started on.
        assert events["unit_resumed"]["worker"] \
            != events["unit_started"]["worker"]
        straight = _simulate(quick_config(traffic_scale=0.05), MAX_PS)
        assert unit.result == result_to_dict(straight.result)
        assert unit.events == straight.events
        assert unit.sim_time_ps == straight.sim_time_ps

    def test_drain_flag_preempts_at_slice_boundary(self):
        """A pre-set drain flag (deterministic stand-in for a drain
        request) checkpoints the unit at the first slice boundary."""
        def pre_drain(scheduler):
            scheduler.workers[0].drain_flag.set()

        _q, scheduler, jobs = run_jobs(
            [doc(preemptible=True)], fleet=1, slice_ps=500_000,
            prepare=pre_drain)
        unit = jobs[0].units[0]
        assert unit.preemptions == 1
        preempted = [event for event in jobs[0].events
                     if event["event"] == "unit_preempted"]
        assert preempted[0]["at_ps"] == 500_000
        straight = _simulate(quick_config(traffic_scale=0.05), MAX_PS)
        assert unit.result == result_to_dict(straight.result)

    def test_non_preemptible_units_ignore_the_drain_flag(self):
        def pre_drain(scheduler):
            scheduler.workers[0].drain_flag.set()

        _q, _s, jobs = run_jobs([doc()], fleet=1, prepare=pre_drain)
        unit = jobs[0].units[0]
        assert unit.preemptions == 0
        assert unit.state == "done"


class TestFailures:
    def test_execution_failure_fails_the_job_not_the_service(
            self, monkeypatch):
        from repro.service import scheduler as scheduler_module

        def boom(*_args):
            raise RuntimeError("exploded")

        monkeypatch.setattr(scheduler_module, "_execute_fresh", boom)
        _q, _s, jobs = run_jobs([doc()])
        unit = jobs[0].units[0]
        assert unit.state == "failed"
        assert "exploded" in unit.error
        assert jobs[0].state == "failed"
        assert "exploded" in jobs[0].error

    def test_checkpoint_instant_past_completion_falls_through(self):
        """A forced instant the run never reaches must not wedge the
        unit: the execution body falls through to normal completion."""
        _q, _s, jobs = run_jobs([doc(checkpoint_at_us=9_999.0)])
        unit = jobs[0].units[0]
        assert unit.state == "done"
        assert unit.preemptions == 0
