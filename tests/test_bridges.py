"""Behavioural tests for lightweight bridges and GenConv converters."""

import pytest

from repro.bridge import GenConvBridge, LightweightBridge
from repro.core import Simulator
from repro.interconnect import AddressRange, StbusType

from .helpers import MEM_SPAN, add_memory, drive, make_node, read, write


def bridged_system(sim, bridge_cls, source_protocol="stbus",
                   dest_protocol="stbus", wait_states=1, request_depth=4,
                   **bridge_kwargs):
    """source fabric --bridge--> dest fabric --> memory."""
    source = make_node(sim, protocol=source_protocol, freq_mhz=200, width=4)
    dest_clk = sim.clock(freq_mhz=250, name="dest_clk")
    from repro.interconnect import AhbLayer, AxiFabric, StbusNode

    makers = {"stbus": lambda: StbusNode(sim, "dest", dest_clk,
                                         data_width_bytes=8,
                                         bus_type=StbusType.T3),
              "ahb": lambda: AhbLayer(sim, "dest", dest_clk,
                                      data_width_bytes=8),
              "axi": lambda: AxiFabric(sim, "dest", dest_clk,
                                       data_width_bytes=8)}
    dest = makers[dest_protocol]()
    port, memory = None, None
    port = dest.add_target("mem", AddressRange(0, MEM_SPAN),
                           request_depth=request_depth, response_depth=8)
    from repro.memory import OnChipMemory

    memory = OnChipMemory(sim, "mem", port, dest_clk,
                          wait_states=wait_states, width_bytes=8)
    bridge = bridge_cls(sim, "bridge", source, dest,
                        AddressRange(0, MEM_SPAN), **bridge_kwargs)
    return source, dest, bridge, port, memory


class TestLightweightBridge:
    def test_read_crosses_and_completes(self, sim):
        source, *_ = bridged_system(sim, LightweightBridge)
        port = source.connect_initiator("ip0", max_outstanding=1)
        txn = read(0x100, beats=8, beat_bytes=4)
        drive(sim, port, [txn])
        sim.run(until=1_000_000_000)
        assert txn.t_done is not None
        assert txn.t_first_data is not None

    def test_blocking_reads_serialise(self, sim):
        """The defining lightweight property: one read in flight at a time,
        even when the initiator could pipeline."""
        source, __, bridge, *_ = bridged_system(sim, LightweightBridge,
                                                wait_states=4)
        port = source.connect_initiator("ip0", max_outstanding=4)
        txns = [read(i * 64) for i in range(4)]
        drive(sim, port, txns)
        sim.run(until=2_000_000_000)
        ordered = sorted(txns, key=lambda t: t.t_accepted)
        for earlier, later in zip(ordered, ordered[1:]):
            # The bridge relays the next read's data only after the
            # previous read fully completed (one slot may sit buffered in
            # the bridge's interface FIFO, but service is strictly serial).
            assert later.t_first_data >= earlier.t_done

    def test_posted_writes_flow_without_blocking(self, sim):
        source, *_ = bridged_system(sim, LightweightBridge, wait_states=4)
        port = source.connect_initiator("ip0", max_outstanding=4)
        txns = [write(i * 64, posted=True) for i in range(4)]
        drive(sim, port, txns)
        sim.run(until=2_000_000_000)
        assert all(t.t_done == t.t_accepted for t in txns)

    def test_nonposted_write_ack_relayed(self, sim):
        source, *_ = bridged_system(sim, LightweightBridge,
                                    source_protocol="ahb")
        port = source.connect_initiator("ip0", max_outstanding=1)
        txn = write(0x40, posted=False)
        drive(sim, port, [txn])
        sim.run(until=1_000_000_000)
        assert txn.t_done is not None and txn.t_done > txn.t_accepted

    def test_width_conversion_preserves_bytes(self, sim):
        source, __, bridge, __, memory = bridged_system(
            sim, LightweightBridge)
        port = source.connect_initiator("ip0", max_outstanding=1)
        txn = read(0x0, beats=8, beat_bytes=4)  # 32 bytes on 32-bit side
        drive(sim, port, [txn])
        sim.run(until=1_000_000_000)
        # The 64-bit side served 32 bytes = 4 wide beats.
        assert memory.beats_served.value == 4
        assert txn.t_done is not None

    def test_crossing_latency_adds_up(self):
        def latency(crossing):
            sim = Simulator()
            source, *_ = bridged_system(sim, LightweightBridge,
                                        crossing_cycles=crossing)
            port = source.connect_initiator("ip0", max_outstanding=1)
            txn = read(0x100)
            drive(sim, port, [txn])
            sim.run(until=1_000_000_000)
            return txn.latency_ps

        assert latency(8) > latency(1)

    @pytest.mark.parametrize("src,dst", [
        ("ahb", "ahb"), ("axi", "axi"), ("ahb", "stbus"), ("axi", "stbus"),
        ("ahb", "axi"), ("stbus", "ahb"), ("stbus", "axi")])
    def test_all_protocol_pairings(self, sim, src, dst):
        """The seven bridge pairings of Section 3.2 all transport traffic."""
        source, *_ = bridged_system(sim, LightweightBridge,
                                    source_protocol=src, dest_protocol=dst)
        port = source.connect_initiator("ip0", max_outstanding=2)
        txns = [read(i * 64) for i in range(2)] + [write(0x8000)]
        drive(sim, port, txns)
        sim.run(until=2_000_000_000)
        assert all(t.t_done is not None for t in txns)


class TestGenConv:
    def test_split_pipelines_reads(self, sim):
        """GenConv keeps accepting while reads are in flight — multiple
        outstanding requests cross the bridge."""
        source, *_ = bridged_system(sim, GenConvBridge, wait_states=4,
                                    child_outstanding=4)
        port = source.connect_initiator("ip0", max_outstanding=4)
        txns = [read(i * 64) for i in range(4)]
        drive(sim, port, txns)
        sim.run(until=2_000_000_000)
        assert all(t.t_done is not None for t in txns)
        # At least one later read was accepted before an earlier completed.
        overlapped = any(later.t_accepted < earlier.t_done
                         for earlier, later in zip(txns, txns[1:]))
        assert overlapped

    def test_faster_than_lightweight_under_read_load(self):
        def elapsed(bridge_cls):
            sim = Simulator()
            source, *_ = bridged_system(sim, bridge_cls, wait_states=4)
            port = source.connect_initiator("ip0", max_outstanding=4)
            txns = [read(i * 64) for i in range(8)]
            drive(sim, port, txns)
            sim.run(until=2_000_000_000)
            assert all(t.t_done is not None for t in txns)
            return sim.now

        assert elapsed(GenConvBridge) < elapsed(LightweightBridge)

    def test_in_order_response_delivery(self, sim):
        source, *_ = bridged_system(sim, GenConvBridge, wait_states=2,
                                    child_outstanding=4, in_order=True)
        port = source.connect_initiator("ip0", max_outstanding=4)
        txns = [read(i * 64) for i in range(5)]
        drive(sim, port, txns)
        sim.run(until=2_000_000_000)
        completions = [t.t_done for t in txns]
        assert completions == sorted(completions)

    def test_message_grouping_preserved_from_stbus(self, sim):
        source, dest, bridge, *_ = bridged_system(sim, GenConvBridge)
        port = source.connect_initiator("ip0", max_outstanding=4)
        txn = read(0x0, message_id=42, message_last=False)
        child = bridge.make_child(txn)
        assert child.message_id == 42
        assert child.message_last is False

    def test_message_grouping_stripped_by_lightweight(self, sim):
        source, dest, bridge, *_ = bridged_system(sim, LightweightBridge,
                                                  source_protocol="axi")
        txn = read(0x0, message_id=42, message_last=False)
        child = bridge.make_child(txn)
        assert child.message_id is None
        assert child.message_last is True

    def test_message_grouping_preserved_from_crossbar(self, sim):
        """Regression: the gate used to compare the protocol label against
        "stbus" exactly, so a GenConv sourced from an STBus *crossbar*
        (label "stbus-xbar") silently stripped message grouping on the way
        to the memory controller.  The registry resolves the family now."""
        from repro.interconnect import StbusNode, StbusType
        from repro.interconnect.crossbar import StbusCrossbar
        from repro.memory import OnChipMemory

        clk = sim.clock(freq_mhz=200, name="xclk")
        source = StbusCrossbar(sim, "xbar", clk, data_width_bytes=4,
                               bus_type=StbusType.T3)
        dclk = sim.clock(freq_mhz=250, name="xdclk")
        dest = StbusNode(sim, "dest", dclk, data_width_bytes=8,
                         bus_type=StbusType.T3)
        port = dest.add_target("mem", AddressRange(0, MEM_SPAN),
                               request_depth=4, response_depth=8)
        OnChipMemory(sim, "mem", port, dclk, wait_states=1, width_bytes=8)
        bridge = GenConvBridge(sim, "br", source, dest,
                               AddressRange(0, MEM_SPAN))
        txn = read(0x0, message_id=42, message_last=False)
        child = bridge.make_child(txn)
        assert child.message_id == 42
        assert child.message_last is False

    def test_nonposted_write_ack_in_order(self, sim):
        source, *_ = bridged_system(sim, GenConvBridge,
                                    source_protocol="ahb")
        port = source.connect_initiator("ip0", max_outstanding=2)
        txns = [write(0x100, posted=False), read(0x200)]
        drive(sim, port, txns)
        sim.run(until=1_000_000_000)
        assert all(t.t_done is not None for t in txns)


class TestBridgeValidation:
    def test_negative_crossing_rejected(self, sim):
        with pytest.raises(ValueError):
            bridged_system(sim, LightweightBridge, crossing_cycles=-1)
