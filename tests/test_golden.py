"""The committed golden regression corpus (tests/golden/).

Tier-1 keeps the cheap guarantees: the corpus is present, loadable,
matches the manifest, and a sampled entry replays bit-identically.  The
full-corpus replay is the dedicated CI golden job (marker ``golden``,
see docs/CI.md) — it simulates every entry twice and is deliberately
kept out of the edit-test loop.
"""

import json

import pytest

from repro.snapshot import (
    SNAPSHOT_FORMAT,
    golden_configs,
    golden_dir,
    golden_entries,
    load_checkpoint,
    resume_checkpoint,
    verify_golden,
)

#: Tier-1 replays these (small, fast entries spanning two memory paths).
_SAMPLED = ("quick_fixed_priority", "example_custom_platform")


def test_corpus_is_committed():
    entries = golden_entries()
    assert entries, (
        "tests/golden/ is empty — regenerate the corpus with "
        "`repro snapshot --refresh-golden` and commit the files")


def test_corpus_matches_manifest():
    """Every manifest entry is committed and nothing stale lingers."""
    committed = {path.name for path in golden_entries()}
    expected = {f"{name}.ckpt.json" for name in golden_configs()}
    assert committed == expected


def test_every_entry_loads_and_is_current_format():
    for path in golden_entries():
        checkpoint = load_checkpoint(path)  # validates both digests
        assert checkpoint.format == SNAPSHOT_FORMAT
        assert checkpoint.expect is not None, (
            f"{path.name}: golden entries must record the final result")


def test_entries_are_reasonably_small():
    """The corpus must stay reviewable: digests, not state dumps."""
    for path in golden_entries():
        assert path.stat().st_size < 256 * 1024, (
            f"{path.name} is {path.stat().st_size} bytes; bulky state "
            f"belongs behind encoder.digest(), not inline")


@pytest.mark.parametrize("name", _SAMPLED)
def test_sampled_entry_replays_bit_identically(name):
    path = golden_dir() / f"{name}.ckpt.json"
    assert path.is_file(), f"{name} missing from the corpus"
    outcome = resume_checkpoint(load_checkpoint(path))
    assert outcome.ok, "\n".join(outcome.mismatches)


def test_summary_lists_every_entry():
    from repro.snapshot import corpus_summary

    summary = corpus_summary()
    for path in golden_entries():
        assert path.name in summary


@pytest.mark.golden
def test_full_corpus_replays_bit_identically():
    failures = verify_golden()
    assert not failures, "\n".join(failures)


def test_verify_golden_reports_empty_corpus(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_GOLDEN_DIR", str(tmp_path))
    failures = verify_golden()
    assert len(failures) == 1
    assert "refresh-golden" in failures[0]


def test_verify_golden_flags_tampered_entry(tmp_path, monkeypatch):
    source = golden_entries()[0]
    document = json.loads(source.read_text())
    document["at_ps"] += 1
    (tmp_path / source.name).write_text(json.dumps(document))
    failures = verify_golden(tmp_path)
    assert failures and "corrupt" in failures[0]
