"""Tests for per-transaction energy accounting (``repro.obs.energy``).

Three layers, mirroring how the accountant is wired in:

* unit behaviour of :class:`EnergyAccountant` / :func:`attach_energy`
  (integer-fJ conservation, idempotent attachment, the disabled default);
* end-to-end conservation — every committed example configuration and
  every registry experiment must report per-component energies that sum
  to the total *exactly* at the fJ grain;
* the surfaces: loader round-trip of the coefficient block, RunResult
  derived quantities, the LT energy clause, the zero-traffic edge and
  the ``repro stats --energy`` CLI.
"""

import dataclasses
import json
from pathlib import Path

import pytest

from repro.check.lt_accuracy import ENERGY_DRIFT, LtRun
from repro.cli import _energy_report, main, registry
from repro.core import Simulator
from repro.obs import capture
from repro.obs.energy import (
    EnergyAccountant,
    EnergyConfig,
    attach_energy,
    fj_from_pj,
    fj_from_power,
)
from repro.platforms import build_platform, quick_config
from repro.platforms.loader import (
    ConfigError,
    config_from_dict,
    config_to_dict,
    load_config,
)

from .helpers import add_memory, make_node

EXAMPLES = Path(__file__).resolve().parent.parent / "examples" / "configs"


def _enabled(config):
    """A copy of ``config`` with energy accounting switched on."""
    return config.scaled(
        energy=dataclasses.replace(config.energy, enabled=True))


def _example_configs():
    """Every platform config reachable from the committed examples.

    Sweep spec files contribute each of their expanded points and DSE
    spec files the extremes of their candidate enumeration, so new
    example files are covered automatically whichever schema they use.
    """
    cases = []
    for path in sorted(EXAMPLES.glob("*.json")):
        document = json.loads(path.read_text())
        if "points" in document or "grid" in document:
            from repro.sweep import load_sweep

            spec = load_sweep(str(path))
            cases.extend((f"{path.name}:{label}", config)
                         for label, config in zip(spec.labels, spec.configs))
        elif "axes" in document:
            from repro.dse import load_dse

            space = load_dse(str(path)).space
            candidates = list(space.candidates())
            for candidate in {candidates[0], candidates[-1]}:
                cases.append((f"{path.name}:{space.label(candidate)}",
                              space.config(candidate)))
        else:
            cases.append((path.name, load_config(str(path))))
    return cases


class TestAccountantUnit:
    def test_simulator_default_has_no_accountant(self):
        assert Simulator()._energy is None

    def test_charge_conserves_exactly_in_fj(self):
        accountant = EnergyAccountant()
        for index in range(100):
            accountant.charge(f"c{index % 7}", 13 * index + 1, index)
        assert sum(accountant.component_fj().values()) == accountant.total_fj
        assert accountant.total_pj == accountant.total_fj / 1000

    def test_non_positive_charges_are_ignored(self):
        accountant = EnergyAccountant()
        accountant.charge("c", 0)
        accountant.charge("c", -5)
        assert accountant.total_fj == 0
        assert accountant.component_fj() == {}

    def test_conversion_identities(self):
        assert fj_from_pj(1.0) == 1000
        assert fj_from_pj(4.2) == 4200
        # 1 mW over 1 ps is 1 fJ.
        assert fj_from_power(1.0, 1) == 1
        assert fj_from_power(45.0, 1_000_000) == 45_000_000

    def test_attach_is_idempotent_and_configure_repoints(self):
        sim = Simulator()
        first = attach_energy(sim)
        config = EnergyConfig(enabled=True, ahb_pj_per_beat=1.25)
        second = attach_energy(sim, config)
        assert second is first
        assert first.config.ahb_pj_per_beat == 1.25
        assert "energy" in sim.metrics

    def test_finalize_is_idempotent(self):
        sim = Simulator()
        accountant = attach_energy(sim)
        calls = []
        accountant.add_finalizer(calls.append)
        accountant.finalize(100)
        accountant.finalize(200)
        assert calls == [100]
        assert accountant.finalized

    def test_txn_energy_requires_per_transaction_mode(self):
        plain = EnergyAccountant()
        plain.charge("c", 10, tid=7)
        assert plain.txn_pj(7) is None
        tracking = EnergyAccountant(per_transaction=True)
        tracking.charge("c", 10, tid=7)
        assert tracking.txn_pj(7) == 0.01
        assert tracking.txn_pj(999) is None


class TestPlatformConservation:
    def test_quick_platform_conserves_and_reports(self):
        sim = Simulator()
        platform = build_platform(sim, _enabled(quick_config()))
        result = platform.run(max_ps=10**13)
        accountant = sim._energy
        assert accountant is not None and accountant.finalized
        assert accountant.total_fj > 0
        assert sum(accountant.component_fj().values()) == accountant.total_fj
        assert result.energy_total_pj == pytest.approx(accountant.total_pj)
        assert sum(result.energy_pj.values()) == \
            pytest.approx(result.energy_total_pj)
        # The initiator view only covers requester-attributable charges.
        assert sum(accountant.initiator_pj().values()) <= \
            accountant.total_pj + 1e-9

    def test_disabled_config_attaches_nothing_and_matches_timing(self):
        config = quick_config()
        sim_plain = Simulator()
        result_plain = build_platform(sim_plain, config).run(max_ps=10**13)
        assert sim_plain._energy is None
        assert result_plain.energy_total_pj == 0.0
        assert result_plain.energy_pj == {}
        sim_energy = Simulator()
        result_energy = build_platform(
            sim_energy, _enabled(config)).run(max_ps=10**13)
        # Accounting observes; it must not move a single event.
        assert result_energy.execution_time_ps == \
            result_plain.execution_time_ps
        assert sim_energy.processed_events == sim_plain.processed_events

    @pytest.mark.parametrize(
        "label,config",
        _example_configs(),
        ids=[label for label, _ in _example_configs()])
    def test_committed_example_configs_conserve(self, label, config):
        sim = Simulator()
        platform = build_platform(sim, _enabled(config))
        result = platform.run(max_ps=20_000 * 1_000_000)
        accountant = sim._energy
        assert accountant is not None
        assert accountant.total_fj > 0, f"{label}: no energy recorded"
        assert sum(accountant.component_fj().values()) == accountant.total_fj
        assert sum(result.energy_pj.values()) == \
            pytest.approx(result.energy_total_pj)
        assert result.pj_per_byte > 0


class TestExperimentConservation:
    @pytest.mark.parametrize("name", sorted(registry()))
    def test_experiment_energy_conserves(self, name):
        _description, runner = registry()[name]
        with capture(energy=True) as cap:
            runner(0.2, None)
        rows = cap.metrics_snapshot()  # finalizes every accountant
        accountants = [a for a in cap.accountants if a is not None]
        assert accountants, f"{name}: capture attached no accountants"
        assert any(a.total_fj > 0 for a in accountants), (
            f"{name}: no energy recorded")
        for accountant in accountants:
            assert sum(accountant.component_fj().values()) == \
                accountant.total_fj
        # The registry surfaces the same ledger as flat metric rows.
        totals = [value for path, value in rows.items()
                  if path.endswith("energy.total.pj")]
        assert sum(totals) == pytest.approx(
            sum(a.total_pj for a in accountants))


class TestLtEnergyClause:
    def test_quick_platform_within_energy_drift(self):
        comparison = LtRun(quick_config(), max_ps=10**13)
        assert comparison.ca.energy_total_pj > 0
        assert comparison.lt.energy_total_pj > 0
        assert comparison.energy_drift <= ENERGY_DRIFT
        assert comparison.ok, comparison.describe()
        assert "energy drift" in comparison.describe()


class TestZeroTraffic:
    def _idle_capture(self):
        with capture(energy=True) as cap:
            sim = Simulator()
            node = make_node(sim)
            add_memory(sim, node)
            sim.run()
        return cap

    def test_empty_capture_reports_without_division(self):
        cap = self._idle_capture()
        assert cap.completed() == []
        report = _energy_report(cap)
        assert "pJ per byte:   0.000" in report
        assert "payload bytes: 0" in report

    def test_empty_capture_snapshot_and_trace_are_valid(self):
        cap = self._idle_capture()
        rows = cap.metrics_snapshot()
        assert rows.get("energy.total.pj", 0.0) == 0.0
        document = cap.to_trace_json()
        text = json.dumps(document)
        assert json.loads(text) == document
        assert not [event for event in document["traceEvents"]
                    if event["ph"] in ("X", "C")]
        assert cap.format_summary()  # renders, no division by zero

    def test_zero_byte_run_result_properties(self):
        from repro.analysis import RunResult

        result = RunResult(label="idle", execution_time_ps=0,
                           transactions=0, bytes_transferred=0,
                           energy_total_pj=5.0)
        assert result.pj_per_byte == 0.0
        assert result.energy_delay_product == 0.0


class TestLoaderRoundTrip:
    def test_energy_block_round_trips(self):
        config = _enabled(quick_config()).scaled(
            energy=dataclasses.replace(
                quick_config().energy, enabled=True,
                stbus_t3_pj_per_beat=8.25))
        document = config_to_dict(config)
        assert document["energy"]["enabled"] is True
        restored = config_from_dict(document)
        assert restored.energy == config.energy

    def test_sdram_preset_string(self):
        document = config_to_dict(quick_config())
        document["energy"] = {"enabled": True, "sdram": "sdr"}
        config = config_from_dict(document)
        assert config.energy.sdram.act_pj > 0

    def test_unknown_sdram_preset_rejected(self):
        document = config_to_dict(quick_config())
        document["energy"] = {"enabled": True, "sdram": "nope"}
        with pytest.raises(ConfigError, match="unknown preset"):
            config_from_dict(document)

    def test_unknown_energy_key_rejected(self):
        document = config_to_dict(quick_config())
        document["energy"] = {"enabled": True, "watts": 9000}
        with pytest.raises(ConfigError, match="unknown keys"):
            config_from_dict(document)


class TestStatsCli:
    def test_experiment_energy_breakdown(self, capsys):
        status = main(["stats", "s412", "--scale", "0.2", "--energy"])
        assert status == 0
        text = capsys.readouterr().out
        assert "### energy breakdown" in text
        assert "total energy:" in text
        assert "pJ per byte:" in text
        assert "energy.total.pj" in text

    def test_config_target_energy_breakdown(self, capsys):
        status = main(["stats", str(EXAMPLES / "custom_platform.json"),
                       "--energy", "--max-us", "20000"])
        assert status == 0
        text = capsys.readouterr().out
        assert "### energy breakdown" in text
        assert "lmi.sdram" in text

    def test_unreadable_target_fails(self, capsys):
        assert main(["stats", "no_such_file.json"]) == 2
        assert "neither an experiment" in capsys.readouterr().err
