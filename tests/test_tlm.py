"""Tests for the transaction-level (approximately-timed) fabric tier."""

import pytest

from repro.core import Simulator
from repro.interconnect import AddressRange, StbusType
from repro.interconnect.tlm import (
    SdramServiceModel,
    ServiceEstimate,
    SramServiceModel,
    TlmNode,
)

from .helpers import add_memory, drive, make_node, read, run_transactions, write


def make_tlm(sim, wait_states=1, width=4, freq_mhz=200):
    clk = sim.clock(freq_mhz=freq_mhz, name="tlm_clk")
    node = TlmNode(sim, "tlm", clk, data_width_bytes=width)
    model = SramServiceModel(clk, wait_states=wait_states, width_bytes=width)
    node.add_tlm_target("mem", AddressRange(0, 1 << 20), model)
    return node


class TestServiceModels:
    def test_estimate_validation(self):
        with pytest.raises(ValueError):
            ServiceEstimate(first_data_ps=-1, occupancy_ps=10)
        with pytest.raises(ValueError):
            ServiceEstimate(first_data_ps=20, occupancy_ps=10)

    def test_sram_model_scales_with_bytes(self, sim):
        clk = sim.clock(freq_mhz=200)
        model = SramServiceModel(clk, wait_states=1, width_bytes=4)
        small = model.estimate(read(0, beats=4))
        large = model.estimate(read(0, beats=16))
        assert large.occupancy_ps == 4 * small.occupancy_ps

    def test_sdram_model_headline_latency(self, sim):
        clk = sim.clock(freq_mhz=166)
        model = SdramServiceModel(clk, first_read_cycles=11,
                                  row_hit_fraction=1.0)
        estimate = model.estimate(read(0, beats=8, beat_bytes=8))
        assert estimate.first_data_ps == clk.to_ps(11)

    def test_sdram_model_validation(self, sim):
        clk = sim.clock(freq_mhz=166)
        with pytest.raises(ValueError):
            SdramServiceModel(clk, row_hit_fraction=1.5)


class TestTlmNode:
    def test_transactions_complete(self, sim):
        node = make_tlm(sim)
        port = node.connect_initiator("ip0", max_outstanding=4)
        txns = [read(i * 64) for i in range(10)]
        run_transactions(sim, port, txns)
        assert all(t.t_done is not None for t in txns)
        assert node.tlm_targets[0].served == 10

    def test_posted_write_completes_at_grant(self, sim):
        node = make_tlm(sim)
        port = node.connect_initiator("ip0", max_outstanding=1)
        txn = write(0x40, posted=True)
        run_transactions(sim, port, [txn])
        assert txn.t_done == txn.t_accepted

    def test_overlapping_targets_rejected(self, sim):
        node = make_tlm(sim)
        clk = node.clock
        with pytest.raises(ValueError):
            node.add_tlm_target("dup", AddressRange(0, 64),
                                SramServiceModel(clk))

    def test_unmapped_address_rejected(self, sim):
        node = make_tlm(sim)
        with pytest.raises(ValueError):
            node.tlm_route(0xFFFF_FFFF)

    def test_target_serialisation(self, sim):
        node = make_tlm(sim, wait_states=4)
        port = node.connect_initiator("ip0", max_outstanding=4)
        txns = [read(i * 64) for i in range(4)]
        run_transactions(sim, port, txns)
        firsts = sorted(t.t_first_data for t in txns)
        # Service windows do not overlap: first-data times are spaced by at
        # least one occupancy window apart after the first.
        occupancy = SramServiceModel(node.clock, wait_states=4,
                                     width_bytes=4).estimate(txns[0])
        for a, b in zip(firsts, firsts[1:]):
            assert b - a >= occupancy.occupancy_ps


class TestCrossValidation:
    """The TLM tier must track the cycle-accurate tier's trends."""

    def _cycle_accurate(self, n, wait_states):
        sim = Simulator()
        node = make_node(sim, bus_type=StbusType.T2)
        add_memory(sim, node, wait_states=wait_states, width=4)
        port = node.connect_initiator("ip0", max_outstanding=4)
        txns = [read(i * 32) for i in range(n)]
        end = run_transactions(sim, port, txns)
        return end, sim.processed_events

    def _tlm(self, n, wait_states):
        sim = Simulator()
        node = make_tlm(sim, wait_states=wait_states)
        port = node.connect_initiator("ip0", max_outstanding=4)
        txns = [read(i * 32) for i in range(n)]
        end = run_transactions(sim, port, txns)
        return end, sim.processed_events

    def test_execution_time_within_tolerance(self):
        ca, __ = self._cycle_accurate(40, wait_states=1)
        tlm, __ = self._tlm(40, wait_states=1)
        assert tlm == pytest.approx(ca, rel=0.2)

    def test_wait_state_trend_preserved(self):
        ca_ratio = self._cycle_accurate(30, 4)[0] / \
            self._cycle_accurate(30, 1)[0]
        tlm_ratio = self._tlm(30, 4)[0] / self._tlm(30, 1)[0]
        assert tlm_ratio == pytest.approx(ca_ratio, rel=0.25)

    def test_tlm_processes_fewer_events(self):
        __, ca_events = self._cycle_accurate(40, wait_states=1)
        __, tlm_events = self._tlm(40, wait_states=1)
        assert tlm_events < ca_events / 2
