"""Additional fabric coverage: response interleaving, GenConv out-of-order
relay, utilisation reporting, memory pipeline ordering."""

import pytest

from repro.bridge import GenConvBridge
from repro.core import Simulator
from repro.interconnect import AddressRange, StbusType
from repro.memory import OnChipMemory

from .helpers import add_memory, drive, make_node, read, run_transactions


class TestResponseInterleaving:
    def _two_target_reads(self, bus_type):
        sim = Simulator()
        node = make_node(sim, bus_type=bus_type)
        add_memory(sim, node, base=0x000000, wait_states=3,
                   response_depth=2)
        add_memory(sim, node, base=0x200000, wait_states=3,
                   response_depth=2)
        a = node.connect_initiator("a", max_outstanding=1)
        b = node.connect_initiator("b", max_outstanding=1)
        ra = read(0x000000, beats=8, initiator="a")
        rb = read(0x200000, beats=8, initiator="b")
        drive(sim, a, [ra])
        drive(sim, b, [rb])
        sim.run(until=1_000_000_000)
        assert ra.t_done and rb.t_done
        return ra, rb

    def test_t3_interleaves_concurrent_packets(self):
        """Shaped packets: both bursts make progress concurrently."""
        ra, rb = self._two_target_reads(StbusType.T3)
        assert ra.t_first_data < rb.t_done
        assert rb.t_first_data < ra.t_done

    def test_t2_packets_atomic(self):
        """Packet-atomic delivery: one burst's data completes before the
        other's begins on the shared response channel."""
        ra, rb = self._two_target_reads(StbusType.T2)
        first, second = sorted([ra, rb], key=lambda t: t.t_first_data)
        assert second.t_first_data >= first.t_done


class TestGenConvOutOfOrder:
    def _bridged(self, sim, in_order):
        source = make_node(sim, bus_type=StbusType.T3)
        dest_clk = sim.clock(freq_mhz=250, name="dclk")
        from repro.interconnect import StbusNode

        dest = StbusNode(sim, "dest", dest_clk, data_width_bytes=8,
                         bus_type=StbusType.T3)
        # Two memories with very different speeds behind the bridge.
        fast = dest.add_target("fast", AddressRange(0, 1 << 20),
                               request_depth=2, response_depth=4)
        OnChipMemory(sim, "fast", fast, dest_clk, wait_states=0,
                     width_bytes=8)
        slow = dest.add_target("slow", AddressRange(1 << 20, 1 << 20),
                               request_depth=2, response_depth=4)
        OnChipMemory(sim, "slow", slow, dest_clk, wait_states=12,
                     width_bytes=8)
        GenConvBridge(sim, "conv", source, dest, AddressRange(0, 2 << 20),
                      child_outstanding=4, in_order=in_order)
        return source

    def test_out_of_order_lets_fast_read_overtake(self, sim):
        source = self._bridged(sim, in_order=False)
        port = source.connect_initiator("ip0", max_outstanding=2)
        slow_read = read(1 << 20, beats=8)   # slow memory, issued first
        fast_read = read(0x0, beats=8)       # fast memory, issued second
        drive(sim, port, [slow_read, fast_read])
        sim.run(until=1_000_000_000)
        assert fast_read.t_done < slow_read.t_done

    def test_in_order_serialises_completions(self, sim):
        source = self._bridged(sim, in_order=True)
        port = source.connect_initiator("ip0", max_outstanding=2)
        slow_read = read(1 << 20, beats=8)
        fast_read = read(0x0, beats=8)
        drive(sim, port, [slow_read, fast_read])
        sim.run(until=1_000_000_000)
        assert fast_read.t_done > slow_read.t_done


class TestUtilizationReport:
    def test_reports_all_channels(self, sim):
        node = make_node(sim, protocol="axi")
        add_memory(sim, node)
        port = node.connect_initiator("ip0", max_outstanding=2)
        run_transactions(sim, port, [read(0x0), read(0x40)])
        report = node.utilization_report()
        assert set(report) == {"ar", "w", "r", "b"}
        assert report["r"] > 0

    def test_stbus_channel_names(self, sim):
        node = make_node(sim)
        add_memory(sim, node)
        port = node.connect_initiator("ip0", max_outstanding=2)
        run_transactions(sim, port, [read(0x0)])
        assert set(node.utilization_report()) == {"request", "response"}


class TestMemoryPipelineOrdering:
    def test_overlapped_accesses_stream_in_order(self, sim):
        """With deep pipelining, the data port still serves bursts in
        arrival order (the ticket mechanism)."""
        node = make_node(sim)
        add_memory(sim, node, wait_states=1, access_latency_cycles=10,
                   pipeline_depth=4, request_depth=4)
        port = node.connect_initiator("ip0", max_outstanding=4)
        txns = [read(i * 32) for i in range(8)]
        run_transactions(sim, port, txns)
        firsts = [t.t_first_data for t in txns]
        assert firsts == sorted(firsts)

    def test_pipeline_depth_one_is_strictly_serial(self, sim):
        node = make_node(sim)
        add_memory(sim, node, wait_states=1, access_latency_cycles=10,
                   pipeline_depth=1, request_depth=1)
        port = node.connect_initiator("ip0", max_outstanding=4)
        txns = [read(i * 32, beats=4) for i in range(4)]
        run_transactions(sim, port, txns)
        latency_span = node.clock.to_ps(10)
        ordered = sorted(txns, key=lambda t: t.t_first_data)
        for earlier, later in zip(ordered, ordered[1:]):
            # Each access's latency phase starts after the previous
            # burst finished: spacing >= the access latency itself.
            assert later.t_first_data - earlier.t_first_data >= latency_span
