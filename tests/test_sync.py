"""Unit tests for synchronisation primitives (Semaphore, Barrier, WorkSignal)."""

import pytest

from repro.core import Semaphore, Barrier
from repro.core.sync import WorkSignal


class TestSemaphore:
    def test_initial_tokens(self, sim):
        sem = Semaphore(sim, 3)
        assert sem.available == 3 and sem.in_use == 0

    def test_negative_tokens_rejected(self, sim):
        with pytest.raises(ValueError):
            Semaphore(sim, -1)

    def test_try_acquire(self, sim):
        sem = Semaphore(sim, 1)
        assert sem.try_acquire()
        assert not sem.try_acquire()
        sem.release()
        assert sem.try_acquire()

    def test_acquire_blocks_when_exhausted(self, sim):
        sem = Semaphore(sim, 1)
        log = []

        def worker(name, hold):
            yield sem.acquire()
            log.append((sim.now, name, "got"))
            yield sim.timeout(hold)
            sem.release()

        sim.process(worker("a", 100))
        sim.process(worker("b", 50))
        sim.run()
        assert log == [(0, "a", "got"), (100, "b", "got")]

    def test_release_over_capacity_raises(self, sim):
        sem = Semaphore(sim, 1)
        with pytest.raises(RuntimeError):
            sem.release()

    def test_fifo_fairness(self, sim):
        sem = Semaphore(sim, 0)
        order = []

        def waiter(name):
            yield sem.acquire()
            order.append(name)

        for name in ("w0", "w1", "w2"):
            sim.process(waiter(name))

        def releaser():
            yield sim.timeout(10)
            for _ in range(3):
                sem.release()

        sim.process(releaser())
        sim.run()
        assert order == ["w0", "w1", "w2"]


class TestBarrier:
    def test_all_parties_released_together(self, sim):
        barrier = Barrier(sim, 3)
        log = []

        def party(name, delay):
            yield sim.timeout(delay)
            yield barrier.wait()
            log.append((sim.now, name))

        sim.process(party("a", 10))
        sim.process(party("b", 50))
        sim.process(party("c", 30))
        sim.run()
        # Released together, in arrival order.
        assert log == [(50, "a"), (50, "c"), (50, "b")]

    def test_barrier_rearms(self, sim):
        barrier = Barrier(sim, 2)
        times = []

        def party(offset):
            for i in range(2):
                yield sim.timeout(offset)
                yield barrier.wait()
                times.append(sim.now)

        sim.process(party(10))
        sim.process(party(25))
        sim.run()
        assert barrier.generations == 2
        assert times == [25, 25, 50, 50]

    def test_single_party_barrier_never_blocks(self, sim):
        barrier = Barrier(sim, 1)
        done = []

        def party():
            yield barrier.wait()
            done.append(sim.now)

        sim.process(party())
        sim.run()
        assert done == [0]

    def test_invalid_parties(self, sim):
        with pytest.raises(ValueError):
            Barrier(sim, 0)


class TestWorkSignal:
    def test_wait_after_notify_fires(self, sim):
        signal = WorkSignal(sim)
        woke = []

        def consumer():
            yield signal.wait()
            woke.append(sim.now)

        sim.process(consumer())

        def producer():
            yield sim.timeout(70)
            signal.notify()

        sim.process(producer())
        sim.run()
        assert woke == [70]

    def test_missed_notify_not_lost(self, sim):
        """Regression for the AXI channel-process deadlock: a notify that
        lands while no consumer is waiting must still wake the next wait."""
        signal = WorkSignal(sim)
        woke = []

        def late_consumer():
            yield sim.timeout(100)  # busy while the notify arrives
            yield signal.wait()
            woke.append(sim.now)

        def producer():
            yield sim.timeout(50)
            signal.notify()

        sim.process(late_consumer())
        sim.process(producer())
        sim.run()
        assert woke == [100]

    def test_consumed_notify_does_not_rewake(self, sim):
        signal = WorkSignal(sim)
        wakes = []

        def consumer():
            # First wait: consumes the pending notification.
            yield signal.wait()
            wakes.append(sim.now)
            # Second wait: no new notify -> must block forever.
            yield signal.wait()
            wakes.append(sim.now)

        signal.notify()
        sim.process(consumer())
        sim.run(until=10_000)
        assert wakes == [0]

    def test_multiple_consumers_all_wake(self, sim):
        signal = WorkSignal(sim)
        woke = []

        def consumer(name):
            yield signal.wait()
            woke.append(name)

        sim.process(consumer("a"))
        sim.process(consumer("b"))

        def producer():
            yield sim.timeout(5)
            signal.notify()

        sim.process(producer())
        sim.run()
        assert sorted(woke) == ["a", "b"]

    def test_notify_between_waits_by_other_consumer(self, sim):
        """A consumer arriving after an un-consumed notify wakes at once.

        Spurious wake-ups are allowed by design (consumers re-scan for
        work); what is forbidden is a consumer sleeping through queued
        work — so the late consumer must wake no later than the next
        notify, and may wake immediately on the stale one.
        """
        signal = WorkSignal(sim)
        woke = []

        def consumer(name, start):
            yield sim.timeout(start)
            yield signal.wait()
            woke.append((name, sim.now))

        sim.process(consumer("early", 0))
        sim.process(consumer("late", 200))

        def producer():
            yield sim.timeout(100)
            signal.notify()
            yield sim.timeout(200)
            signal.notify()

        sim.process(producer())
        sim.run()
        assert ("early", 100) in woke
        late = [t for name, t in woke if name == "late"]
        assert late and late[0] <= 300
