"""Tests for the runtime invariant monitors (``repro.check``).

Two directions:

* *positive* — real platform runs under ``checked()`` report zero
  violations (the monitors do not false-positive on legal behaviour);
* *injected* — each monitor fires on a deliberately broken input, proving
  the rule is actually enforced rather than vacuously true.

Injection works on real simulator objects: timestamps are tampered after a
legal run, FIFO internals are driven past their public API, recorded
grant/accept histories are edited — whatever reaches the specific rule
without having to build a whole broken fabric.
"""

import pytest

from repro.check import (
    CheckSession,
    InvariantViolation,
    SimChecker,
    Violation,
    checked,
    format_report,
)
from repro.core import Simulator
from repro.core.fifo import Fifo
from repro.interconnect.types import Opcode, ResponseBeat, Transaction
from repro.platforms import build_platform
from repro.platforms.config import PlatformConfig
from repro.platforms.variants import quick_config


def run_checked(config, max_ps=None):
    with checked() as session:
        sim = Simulator()
        platform = build_platform(sim, config)
        platform.run(max_ps=max_ps)
    return sim, platform, session


def rules_of(violations):
    return {v.rule for v in violations}


# ---------------------------------------------------------------------------
# positive: real runs are clean
# ---------------------------------------------------------------------------
class TestCleanRuns:
    @pytest.mark.parametrize("protocol", ["stbus", "ahb", "axi"])
    def test_quick_config_zero_violations(self, protocol):
        sim, _platform, session = run_checked(quick_config(protocol=protocol))
        violations = session.finalize()
        assert violations == [], format_report(violations)
        assert sim._checks is session.checkers[0]

    def test_lmi_memory_zero_violations(self):
        from repro.platforms.config import MemoryConfig

        config = quick_config(memory=MemoryConfig(kind="lmi"))
        _sim, _platform, session = run_checked(config)
        violations = session.finalize()
        assert violations == [], format_report(violations)
        # The LMI run must actually have exercised the SDRAM auditor.
        checker = session.checkers[0]
        assert checker.sdram_logs and checker.sdram_logs[0].commands

    def test_checker_detached_outside_session(self):
        sim = Simulator()
        assert sim._checks is None

    def test_double_attach_rejected(self):
        session = CheckSession()
        sim = Simulator()
        session.attach(sim)
        with pytest.raises(RuntimeError):
            session.attach(sim)


# ---------------------------------------------------------------------------
# FIFO bounds (satellite: routed through the violation report type)
# ---------------------------------------------------------------------------
class TestFifoBounds:
    def test_overflow_reports_component_and_time(self, sim):
        fifo = Fifo(sim, capacity=1, name="central.lmi.req")
        fifo._store("a")
        with pytest.raises(InvariantViolation) as excinfo:
            fifo._store("b")
        violation = excinfo.value.violation
        assert violation.rule == "fifo.overflow"
        assert violation.component == "central.lmi.req"
        assert violation.time_ps == sim.now
        assert "capacity 1" in violation.message

    def test_underflow_reports_component(self, sim):
        fifo = Fifo(sim, capacity=2, name="bridge.resp")
        with pytest.raises(InvariantViolation) as excinfo:
            fifo._take()
        assert excinfo.value.violation.rule == "fifo.underflow"
        assert excinfo.value.violation.component == "bridge.resp"

    def test_violation_recorded_in_active_session(self):
        session = CheckSession(with_spans=False)
        sim = Simulator()
        session.attach(sim)
        fifo = Fifo(sim, capacity=1, name="f")
        fifo._store(1)
        with pytest.raises(InvariantViolation):
            fifo._store(2)
        assert rules_of(session.violations) == {"fifo.overflow"}

    def test_finalize_flags_over_capacity_state(self):
        session = CheckSession(with_spans=False)
        sim = Simulator()
        session.attach(sim)
        fifo = Fifo(sim, capacity=2, name="f")
        # Bypass even _store: corrupt the deque directly, as a buggy model
        # holding a reference to the internals would.
        fifo._items.extend([1, 2, 3])
        assert "fifo.bounds" in rules_of(session.finalize())


# ---------------------------------------------------------------------------
# beat ordering (live note_beat checks)
# ---------------------------------------------------------------------------
class TestBeatOrdering:
    def _fabric_and_txn(self, opcode=Opcode.READ, beats=4):
        session = CheckSession(with_spans=False)
        sim = Simulator()
        session.attach(sim)
        config = quick_config(protocol="axi")
        platform = build_platform(sim, config)
        fabric = platform.fabrics["central"]
        txn = Transaction(initiator="ip0", opcode=opcode, address=0,
                          beats=beats, beat_bytes=4)
        txn.bind(sim)
        return session, fabric, txn

    def test_out_of_order_data_beat_flagged(self):
        session, fabric, txn = self._fabric_and_txn()
        fabric.deliver_beat(ResponseBeat(txn, 1, is_last=False))
        assert any(v.rule == "axi.id_order" and "out of order" in v.message
                   for v in session.violations)

    def test_in_order_beats_clean(self):
        session, fabric, txn = self._fabric_and_txn(beats=2)
        fabric.deliver_beat(ResponseBeat(txn, 0, is_last=False))
        fabric.deliver_beat(ResponseBeat(txn, 1, is_last=True))
        assert session.violations == []

    def test_beat_after_completion_flagged(self):
        session, fabric, txn = self._fabric_and_txn(beats=2)
        fabric.deliver_beat(ResponseBeat(txn, 0, is_last=False))
        fabric.deliver_beat(ResponseBeat(txn, 1, is_last=True))
        fabric.deliver_beat(ResponseBeat(txn, 1, is_last=True))
        assert any("after the transaction completed" in v.message
                   for v in session.violations)

    def test_write_ack_on_read_flagged(self):
        session, fabric, txn = self._fabric_and_txn(opcode=Opcode.READ)
        fabric.deliver_beat(ResponseBeat(txn, -1, is_last=True))
        assert any("write acknowledgement" in v.message
                   for v in session.violations)

    def test_data_beat_on_write_flagged(self):
        session, fabric, txn = self._fabric_and_txn(opcode=Opcode.WRITE)
        fabric.deliver_beat(ResponseBeat(txn, 0, is_last=False))
        assert any("data beat" in v.message for v in session.violations)

    def test_wrong_is_last_flagged(self):
        session, fabric, txn = self._fabric_and_txn(beats=4)
        fabric.deliver_beat(ResponseBeat(txn, 0, is_last=True))
        assert any("is_last" in v.message for v in session.violations)


# ---------------------------------------------------------------------------
# post-run protocol passes, via history/timestamp tampering on real runs
# ---------------------------------------------------------------------------
class TestProtocolPasses:
    def test_source_order_violation(self):
        sim, platform, session = run_checked(quick_config())
        checker = session.checkers[0]
        port, grants = next((p, g) for p, g in checker._port_grants.items()
                            if len(g) >= 2)
        grants[0], grants[1] = grants[1], grants[0]
        assert any(v.rule.endswith(".source_order")
                   for v in checker.finalize())

    def test_split_pairing_lost_request(self):
        sim, platform, session = run_checked(quick_config(protocol="stbus"))
        checker = session.checkers[0]
        fabric = next(f for f in checker.fabrics
                      if f.protocol == "stbus" and checker._accepts.get(f))
        checker._accepts[fabric].pop()  # a granted request never accepted
        assert "stbus.split_pairing" in rules_of(checker.finalize())

    def test_split_pairing_reorder(self):
        sim, platform, session = run_checked(quick_config(protocol="stbus"))
        checker = session.checkers[0]
        fabric = next(f for f in checker.fabrics
                      if len(checker._accepts.get(f, [])) >= 2)
        accepts = checker._accepts[fabric]
        accepts[0], accepts[1] = accepts[1], accepts[0]
        assert "stbus.split_pairing" in rules_of(checker.finalize())

    def test_stbus_t1_hold_violation(self):
        from repro.interconnect.types import StbusType

        config = quick_config(central_stbus_type=StbusType.T1)
        sim, platform, session = run_checked(config)
        assert session.finalize() == []  # T1 runs are legally serial
        checker = session.checkers[0]
        fabric = next(f for f in checker.fabrics if not f.supports_split
                      and len(checker._grants.get(f, [])) >= 2)
        # Pretend the first granted transaction completed *after* the
        # second was granted — an overlap a Type 1 node must never allow.
        first = checker._grants[fabric][0][1]
        second = checker._grants[fabric][1][1]
        first.t_done = second.t_granted + 1
        found = checker.finalize(expect_drained=False)
        assert "stbus.t1_hold" in rules_of(found)

    def test_stbus_posted_write_late_completion(self):
        config = quick_config(protocol="stbus")
        sim, platform, session = run_checked(config)
        checker = session.checkers[0]
        txn = next(t for f in checker.fabrics
                   for t in checker._accepts.get(f, [])
                   if t.is_write and t.meta.get("needs_ack") is False)
        txn.t_done = txn.t_accepted + 100
        assert "stbus.posted_write" in rules_of(
            checker.finalize(expect_drained=False))

    def test_ahb_serialization_violation(self):
        sim, platform, session = run_checked(quick_config(protocol="ahb"))
        checker = session.checkers[0]
        fabric = next(f for f in checker.fabrics if f.protocol == "ahb"
                      and len(checker._grants.get(f, [])) >= 2)
        first = checker._grants[fabric][0][1]
        second = checker._grants[fabric][1][1]
        first.t_done = second.t_granted + 1
        assert "ahb.serialization" in rules_of(
            checker.finalize(expect_drained=False))

    def test_ahb_nonposted_write_violation(self):
        sim, platform, session = run_checked(quick_config(protocol="ahb"))
        checker = session.checkers[0]
        txn = next(t for f in checker.fabrics
                   for t in checker._accepts.get(f, []) if t.is_write)
        txn.meta["needs_ack"] = False  # claim the write was posted
        assert "ahb.nonposted" in rules_of(
            checker.finalize(expect_drained=False))

    def test_axi_read_without_data(self):
        sim, platform, session = run_checked(quick_config(protocol="axi"))
        checker = session.checkers[0]
        txn = next(t for f in checker.fabrics if f.protocol == "axi"
                   for t in checker._accepts.get(f, []) if t.is_read)
        txn.t_first_data = None
        assert "axi.handshake" in rules_of(
            checker.finalize(expect_drained=False))

    def test_axi_early_write_completion(self):
        sim, platform, session = run_checked(quick_config(protocol="axi"))
        checker = session.checkers[0]
        txn = next(t for f in checker.fabrics if f.protocol == "axi"
                   for t in checker._accepts.get(f, []) if t.is_write)
        txn.t_done = txn.t_accepted  # B response cannot be instantaneous
        assert "axi.handshake" in rules_of(
            checker.finalize(expect_drained=False))

    def test_lifecycle_incomplete_on_drained_run(self):
        sim, platform, session = run_checked(quick_config())
        checker = session.checkers[0]
        txn = next(iter(checker._issued.values()))[0]
        txn.t_done = None
        assert "lifecycle.incomplete" in rules_of(checker.finalize())

    def test_lifecycle_order_violation(self):
        sim, platform, session = run_checked(quick_config())
        checker = session.checkers[0]
        txn = next(iter(checker._issued.values()))[0]
        txn.t_granted = txn.t_issued - 5
        assert "lifecycle.order" in rules_of(
            checker.finalize(expect_drained=False))


# ---------------------------------------------------------------------------
# bridge conservation
# ---------------------------------------------------------------------------
class TestBridgeConservation:
    def _checked_bridged_run(self):
        sim, platform, session = run_checked(
            quick_config(topology="distributed"))
        checker = session.checkers[0]
        bridge = next(b for b in checker.bridges
                      if checker._issued.get(b.init_port))
        return checker, bridge

    def test_real_bridges_conserve(self):
        checker, bridge = self._checked_bridged_run()
        assert checker.finalize() == []
        assert len(checker._issued[bridge.init_port]) == \
            bridge.forwarded.value

    def test_lost_transaction_flagged(self):
        checker, bridge = self._checked_bridged_run()
        bridge.forwarded.add()  # claims one more than was actually issued
        assert "bridge.conservation" in rules_of(checker.finalize())

    def test_duplicated_parent_flagged(self):
        checker, bridge = self._checked_bridged_run()
        children = checker._issued[bridge.init_port]
        duplicate = children[0].child(beats=children[0].beats,
                                      beat_bytes=children[0].beat_bytes)
        duplicate.meta["parent"] = children[0].meta["parent"]
        children.append(duplicate)
        bridge.forwarded.add()
        assert any(v.rule == "bridge.conservation"
                   and "twice" in v.message for v in checker.finalize())

    def test_orphan_child_flagged(self):
        checker, bridge = self._checked_bridged_run()
        child = checker._issued[bridge.init_port][0]
        child.meta.pop("parent")
        assert any(v.rule == "bridge.conservation"
                   and "no parent" in v.message
                   for v in checker.finalize(expect_drained=False))


# ---------------------------------------------------------------------------
# span tiling (satellite: promoted to a monitor over real runs)
# ---------------------------------------------------------------------------
class TestSpanTiling:
    def test_checked_session_installs_spans(self):
        with checked() as session:
            sim = Simulator()
        assert sim._spans is not None

    def test_tampered_timestamps_break_tiling(self):
        sim, platform, session = run_checked(quick_config())
        checker = session.checkers[0]
        txn = sim._spans.completed()[0]
        # Corrupt the lifecycle so no valid tiling of [t_created, t_done]
        # exists (build_spans absorbs merely-shifted interior stamps).
        txn.t_created = txn.t_done + 10
        assert "obs.span_tiling" in rules_of(
            checker.finalize(expect_drained=False))

    def test_direct_helper_reports_gap(self):
        from repro.obs.trace import Span, span_tiling_errors

        txn = Transaction(initiator="ip", opcode=Opcode.READ, address=0,
                          beats=1, beat_bytes=4)
        txn.t_created = 0
        txn.t_done = 100
        spans = [Span("arbitration", 0, 40), Span("response_transfer", 60, 40)]
        errors = span_tiling_errors(txn, spans)
        assert any("gap" in e for e in errors)

    def test_direct_helper_clean_tiling(self):
        from repro.obs.trace import Span, span_tiling_errors

        txn = Transaction(initiator="ip", opcode=Opcode.READ, address=0,
                          beats=1, beat_bytes=4)
        txn.t_created = 0
        txn.t_done = 100
        spans = [Span("arbitration", 0, 40), Span("response_transfer", 40, 60)]
        assert span_tiling_errors(txn, spans) == []


# ---------------------------------------------------------------------------
# report formatting
# ---------------------------------------------------------------------------
class TestReport:
    def test_format_report_summarises_rules(self):
        violations = [
            Violation("a", 10, "fifo.overflow", "x"),
            Violation("b", 20, "fifo.overflow", "y"),
            Violation("c", 30, "sdram.t_ras", "z"),
        ]
        report = format_report(violations)
        assert "3 violation(s) across 2 rule(s)" in report
        assert "fifo.overflow" in report and "sdram.t_ras" in report

    def test_format_report_limit(self):
        violations = [Violation("a", i, "r", "m") for i in range(10)]
        assert "... 7 more" in format_report(violations, limit=3)

    def test_empty_report(self):
        assert format_report([]) == "no invariant violations"
