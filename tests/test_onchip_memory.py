"""Behavioural tests for the on-chip shared memory model."""

import pytest

from repro.core import Simulator

from .helpers import add_memory, make_node, read, run_transactions, write


class TestServiceTiming:
    def test_per_word_wait_states(self, sim):
        node = make_node(sim, width=4)
        add_memory(sim, node, wait_states=1, width=4)
        port = node.connect_initiator("ip0", max_outstanding=1)
        txn = read(0x0, beats=8, beat_bytes=4)
        run_transactions(sim, port, [txn])
        period = node.clock.period_ps
        # 8 words x (1 + 1 ws) cycles of array time, + request + delivery.
        service = txn.t_done - txn.t_accepted
        assert service >= 16 * period

    def test_byte_based_service(self):
        """A burst of narrow beats costs the same array time as the same
        bytes in wide beats (the memory is byte-based, not beat-based)."""
        def service_time(beats, beat_bytes):
            sim = Simulator()
            node = make_node(sim, width=8)
            add_memory(sim, node, wait_states=1, width=8)
            port = node.connect_initiator("ip0", max_outstanding=1)
            txn = read(0x0, beats=beats, beat_bytes=beat_bytes)
            run_transactions(sim, port, [txn])
            return txn.t_done - txn.t_accepted

        narrow = service_time(beats=8, beat_bytes=4)   # 32 bytes
        wide = service_time(beats=4, beat_bytes=8)     # 32 bytes
        assert narrow == pytest.approx(wide, rel=0.25)

    def test_zero_wait_states_streams_full_rate(self, sim):
        node = make_node(sim)
        add_memory(sim, node, wait_states=0)
        port = node.connect_initiator("ip0", max_outstanding=4)
        txns = [read(i * 32) for i in range(8)]
        run_transactions(sim, port, txns)
        assert node.resp_channel.utilization() > 0.85


class TestAccessLatency:
    def test_latency_delays_first_data(self):
        def first_data(latency):
            sim = Simulator()
            node = make_node(sim)
            add_memory(sim, node, wait_states=1,
                       access_latency_cycles=latency)
            port = node.connect_initiator("ip0", max_outstanding=1)
            txn = read(0x0)
            run_transactions(sim, port, [txn])
            return txn.t_first_data - txn.t_accepted

        assert first_data(16) - first_data(0) == \
            16 * 5_000  # 16 cycles at 200 MHz

    def test_pipelining_overlaps_latency_phases(self):
        """A pipelined interface overlaps access latencies; a single-slot
        one serialises them (the Fig. 4 mechanism)."""
        def elapsed(pipeline_depth, request_depth):
            sim = Simulator()
            node = make_node(sim)
            add_memory(sim, node, wait_states=1, access_latency_cycles=12,
                       pipeline_depth=pipeline_depth,
                       request_depth=request_depth)
            port = node.connect_initiator("ip0", max_outstanding=8)
            txns = [read(i * 32) for i in range(8)]
            return run_transactions(sim, port, txns)

        assert elapsed(4, 4) < 0.7 * elapsed(1, 1)

    def test_data_streams_in_arrival_order(self, sim):
        node = make_node(sim)
        add_memory(sim, node, wait_states=1, access_latency_cycles=8,
                   pipeline_depth=4, request_depth=4)
        port = node.connect_initiator("ip0", max_outstanding=4)
        txns = [read(i * 32) for i in range(6)]
        run_transactions(sim, port, txns)
        first_data = [t.t_first_data for t in txns]
        assert first_data == sorted(first_data)


class TestWrites:
    def test_nonposted_write_acknowledged(self, sim):
        node = make_node(sim)
        __, memory = add_memory(sim, node, wait_states=2)
        port = node.connect_initiator("ip0", max_outstanding=1)
        txn = write(0x0, posted=False)
        run_transactions(sim, port, [txn])
        assert txn.t_done > txn.t_accepted
        assert memory.writes.value == 1

    def test_counters(self, sim):
        node = make_node(sim)
        __, memory = add_memory(sim, node)
        port = node.connect_initiator("ip0", max_outstanding=2)
        txns = [read(0x0), write(0x100), read(0x200)]
        run_transactions(sim, port, txns)
        assert memory.reads.value == 2
        assert memory.writes.value == 1
        assert memory.beats_served.value > 0


class TestValidation:
    def test_bad_parameters_rejected(self, sim):
        node = make_node(sim)
        with pytest.raises(ValueError):
            add_memory(sim, node, wait_states=-1)
        with pytest.raises(ValueError):
            add_memory(sim, node, base=0x200000, access_latency_cycles=-1)
        with pytest.raises(ValueError):
            add_memory(sim, node, base=0x400000, pipeline_depth=0)
