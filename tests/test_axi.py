"""Behavioural tests for the AMBA AXI fabric model."""

import pytest

from repro.interconnect import Opcode

from .helpers import add_memory, drive, make_node, read, run_transactions, write


class TestOutstandingTransactions:
    def test_multiple_outstanding_reads(self, sim):
        fabric = make_node(sim, protocol="axi")
        add_memory(sim, fabric, wait_states=4, request_depth=4)
        port = fabric.connect_initiator("ip0", max_outstanding=4)
        txns = [read(i * 64) for i in range(4)]
        run_transactions(sim, port, txns)
        # All four requests were accepted before the first data returned.
        assert txns[3].t_accepted < txns[0].t_done

    def test_burst_overlap_sustains_efficiency(self, sim):
        """Section 4.1.2: the AR channel keeps issuing while R streams, so
        the R channel sustains the 50% bound of a 1-ws memory."""
        fabric = make_node(sim, protocol="axi")
        add_memory(sim, fabric, wait_states=1)
        port = fabric.connect_initiator("ip0", max_outstanding=4)
        txns = [read(i * 32) for i in range(16)]
        run_transactions(sim, port, txns)
        assert fabric.r_channel.utilization() == pytest.approx(0.5, abs=0.06)


class TestChannelIndependence:
    def test_reads_and_writes_use_separate_channels(self, sim):
        fabric = make_node(sim, protocol="axi")
        add_memory(sim, fabric, wait_states=1, request_depth=4)
        port_r = fabric.connect_initiator("reader", max_outstanding=4)
        port_w = fabric.connect_initiator("writer", max_outstanding=4)
        reads = [read(i * 32, initiator="reader") for i in range(6)]
        writes = [write(0x40000 + i * 32, initiator="writer")
                  for i in range(6)]
        drive(sim, port_r, reads)
        drive(sim, port_w, writes)
        sim.run(until=1_000_000_000)
        assert all(t.t_done is not None for t in reads + writes)
        assert fabric.ar_channel.transfers > 0
        assert fabric.w_channel.transfers > 0
        assert fabric.r_channel.transfers > 0
        assert fabric.b_channel.transfers > 0

    def test_write_gets_b_response(self, sim):
        fabric = make_node(sim, protocol="axi")
        add_memory(sim, fabric)
        port = fabric.connect_initiator("ip0", max_outstanding=1)
        txn = write(0x100, posted=True)  # AXI always returns a B response
        run_transactions(sim, port, [txn])
        assert txn.t_done > txn.t_accepted
        assert fabric.b_channel.transfers == 1


class TestPerBeatArbitration:
    def test_r_channel_interleaves_bursts(self, sim):
        """Fine-granularity arbitration: beats of concurrent bursts from
        different targets interleave on R."""
        fabric = make_node(sim, protocol="axi")
        add_memory(sim, fabric, base=0x000000, wait_states=2)
        add_memory(sim, fabric, base=0x200000, wait_states=2)
        a = fabric.connect_initiator("a", max_outstanding=2)
        b = fabric.connect_initiator("b", max_outstanding=2)
        ra = read(0x000000, beats=8, initiator="a")
        rb = read(0x200000, beats=8, initiator="b")
        drive(sim, a, [ra])
        drive(sim, b, [rb])
        sim.run(until=1_000_000_000)
        # Concurrent service: neither serialised behind the other.
        assert ra.t_first_data < rb.t_done
        assert rb.t_first_data < ra.t_done

    def test_wait_state_masking_beats_serial_ahb(self):
        """With parallel slow targets, AXI masks wait states that AHB
        exposes (Section 4.1.1)."""
        from repro.core import Simulator

        def elapsed(protocol):
            sim = Simulator()
            fabric = make_node(sim, protocol=protocol)
            add_memory(sim, fabric, base=0x000000, wait_states=3)
            add_memory(sim, fabric, base=0x200000, wait_states=3)
            ports = [fabric.connect_initiator(f"ip{i}", max_outstanding=4)
                     for i in range(2)]
            batches = [[read(i * 0x200000 + j * 32, initiator=f"ip{i}")
                        for j in range(8)] for i in range(2)]
            for port, batch in zip(ports, batches):
                drive(sim, port, batch)
            sim.run(until=2_000_000_000)
            assert all(t.t_done is not None for b in batches for t in b)
            return sim.now

        assert elapsed("axi") < elapsed("ahb")


class TestMixedQueueRegression:
    def test_write_behind_reads_is_not_stranded(self, sim):
        """Regression: a write surfacing at a port's queue head after reads
        drained must wake the AW engine (lost-wakeup deadlock)."""
        fabric = make_node(sim, protocol="axi")
        add_memory(sim, fabric, wait_states=2, request_depth=1,
                   response_depth=1)
        port = fabric.connect_initiator("ip0", max_outstanding=6)
        txns = [read(i * 32) for i in range(3)]
        txns += [write(0x40000 + i * 32) for i in range(2)]
        txns += [read(0x1000 + i * 32) for i in range(3)]
        run_transactions(sim, port, txns)
        assert all(t.t_done is not None for t in txns)

    def test_heavily_mixed_multimaster_traffic_drains(self, sim):
        fabric = make_node(sim, protocol="axi")
        add_memory(sim, fabric, wait_states=2, request_depth=1,
                   response_depth=1)
        batches = []
        for i in range(4):
            port = fabric.connect_initiator(f"ip{i}", max_outstanding=6)
            batch = []
            for j in range(10):
                maker = read if (i + j) % 3 else write
                batch.append(maker(i * 0x1000 + j * 64, initiator=f"ip{i}"))
            drive(sim, port, batch)
            batches.append(batch)
        sim.run(until=2_000_000_000)
        assert all(t.t_done is not None for b in batches for t in b)
