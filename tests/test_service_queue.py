"""Job-queue tests: multi-tenant quotas, priority-lane ordering, and
event bookkeeping (docs/SERVICE.md)."""

import asyncio

import pytest

from repro.platforms.loader import config_to_dict
from repro.platforms.variants import quick_config
from repro.service import JobQueue, QuotaExceeded, UnknownJob, parse_submission

CONFIG = config_to_dict(quick_config(traffic_scale=0.05))


def submit(queue, tenant="alice", lane="normal", units=1, **extra):
    if units == 1 and "sweep" not in extra:
        document = {"tenant": tenant, "priority": lane, "config": CONFIG}
    else:
        document = {"tenant": tenant, "priority": lane, "sweep": {
            "base": CONFIG,
            "points": [{"label": f"p{n}", "seed": n + 1}
                       for n in range(units)],
        }}
    document.update(extra)
    return queue.submit(parse_submission(document))


class TestQuota:
    def test_quota_refuses_whole_submission_up_front(self):
        """A sweep that would only partially fit is refused entirely —
        a typed rejection, never a hang or a half-enqueued job."""
        queue = JobQueue(quota_units=3)
        submit(queue, units=2)
        with pytest.raises(QuotaExceeded) as excinfo:
            submit(queue, units=2)
        error = excinfo.value
        assert error.http_status == 429
        assert (error.tenant, error.active, error.incoming, error.limit) \
            == ("alice", 2, 2, 3)
        # Nothing from the refused submission was enqueued.
        assert len(queue.list_jobs()) == 1
        assert queue.active_units("alice") == 2

    def test_quota_is_per_tenant(self):
        queue = JobQueue(quota_units=2)
        submit(queue, tenant="alice", units=2)
        submit(queue, tenant="bob", units=2)  # independent budget
        with pytest.raises(QuotaExceeded):
            submit(queue, tenant="alice", units=1)

    def test_finished_units_release_quota(self):
        queue = JobQueue(quota_units=2)
        job = submit(queue, units=2)
        for unit in job.units:
            unit.state = "done"
        assert queue.active_units("alice") == 0
        submit(queue, units=2)  # fits again


class TestOrdering:
    def test_lanes_outrank_submission_order(self):
        """Dispatch order is (lane rank, submission seq, unit index) —
        a pure function of the submissions, independent of timing."""
        queue = JobQueue()
        batch = submit(queue, tenant="c", lane="batch", units=2)
        normal = submit(queue, tenant="a", lane="normal")
        urgent = submit(queue, tenant="b", lane="interactive")
        order = [(unit.job.id, unit.index) for unit in queue.pending_units()]
        assert order == [(urgent.id, 0), (normal.id, 0),
                         (batch.id, 0), (batch.id, 1)]
        assert queue.take_next().job is urgent

    def test_same_lane_preserves_submission_order(self):
        queue = JobQueue()
        first = submit(queue, tenant="a")
        second = submit(queue, tenant="b")
        jobs = [unit.job.id for unit in queue.pending_units()]
        assert jobs == [first.id, second.id]

    def test_requeue_keeps_place_in_line(self):
        """A preempted unit keeps its sort key, so it migrates to the
        next free worker instead of going to the back of the queue."""
        queue = JobQueue()
        job = submit(queue, lane="interactive")
        submit(queue, tenant="later", lane="normal")
        unit = queue.take_next()
        unit.state = "running"
        unit.worker = "worker-0"
        queue.requeue(unit, {"fake": "checkpoint"})
        assert unit.state == "queued"
        assert unit.preemptions == 1
        assert unit.last_worker == "worker-0"
        assert unit.checkpoint == {"fake": "checkpoint"}
        assert queue.take_next() is unit  # still ahead of the normal job


class TestEventsAndState:
    def test_unknown_job_is_typed(self):
        queue = JobQueue()
        with pytest.raises(UnknownJob, match="job-9"):
            queue.get("job-9")

    def test_event_sequence_is_global_and_monotonic(self):
        queue = JobQueue()
        a = submit(queue, tenant="a")
        b = submit(queue, tenant="b")
        queue.record_event(a, "unit_started", unit=0)
        queue.record_event(b, "unit_started", unit=0)
        for job in (a, b):  # per-job logs are strictly increasing
            seqs = [event["seq"] for event in job.events]
            assert seqs == sorted(seqs)
        merged = sorted(event["seq"] for event in a.events + b.events)
        assert merged == [1, 2, 3, 4]  # one global sequence, no reuse
        assert queue.events_since(a, since=a.events[0]["seq"]) \
            == a.events[1:]

    def test_unit_completion_rolls_up_to_job_state(self):
        queue = JobQueue()
        job = submit(queue, units=2)
        job.units[0].state = "running"
        queue.finish_unit_bookkeeping(job)
        assert job.state == "running"
        for unit in job.units:
            unit.state = "done"
        queue.finish_unit_bookkeeping(job)
        assert job.state == "done"
        assert job.events[-1]["event"] == "job_done"
        assert job.progress() == {"units": 2, "done": 2}

    def test_failed_unit_fails_the_job_with_its_error(self):
        queue = JobQueue()
        job = submit(queue, units=2)
        job.units[0].state = "failed"
        job.units[0].error = "exploded"
        queue.finish_unit_bookkeeping(job)
        assert job.state == "failed"
        assert "exploded" in job.error

    def test_wait_wakes_on_events_and_times_out(self):
        queue = JobQueue()
        job = submit(queue)

        async def scenario():
            # Times out: nothing marks the job done.
            assert await queue.wait(lambda: job.state == "done",
                                    timeout=0.05) is False

            async def finish():
                await asyncio.sleep(0.01)
                job.state = "done"
                queue.record_event(job, "job_done")

            task = asyncio.get_running_loop().create_task(finish())
            assert await queue.wait(lambda: job.state == "done",
                                    timeout=5.0) is True
            await task

        asyncio.run(scenario())
