"""Tests for the TLM (transaction-level) platform abstraction tier."""

import pytest

from repro.core import Simulator
from repro.platforms import MemoryConfig, PlatformConfig, build_platform, quick_config


class TestConfig:
    def test_tlm_requires_collapsed(self):
        with pytest.raises(ValueError, match="collapsed"):
            PlatformConfig(abstraction="tlm", topology="distributed")

    def test_unknown_abstraction(self):
        with pytest.raises(ValueError):
            PlatformConfig(abstraction="rtl")


class TestExecution:
    def _run(self, abstraction, **overrides):
        sim = Simulator()
        config = quick_config(topology="collapsed", abstraction=abstraction,
                              **overrides)
        platform = build_platform(sim, config)
        result = platform.run(max_ps=10**13)
        return sim, result

    def test_tlm_platform_completes(self):
        __, result = self._run("tlm")
        assert result.transactions > 0
        assert result.execution_time_ps > 0

    def test_tlm_tracks_cycle_accurate(self):
        __, cycle = self._run("cycle")
        __, tlm = self._run("tlm")
        assert tlm.execution_time_ps == pytest.approx(
            cycle.execution_time_ps, rel=0.3)

    def test_tlm_uses_fewer_events(self):
        sim_cycle, __ = self._run("cycle")
        sim_tlm, __ = self._run("tlm")
        assert sim_tlm.processed_events < sim_cycle.processed_events

    def test_tlm_with_lmi_service_model(self):
        __, result = self._run("tlm", memory=MemoryConfig(kind="lmi"))
        assert result.transactions > 0

    def test_tlm_with_cpu(self):
        from repro.platforms import CpuConfig

        __, result = self._run("tlm", cpu=CpuConfig(enabled=True, blocks=30))
        # quick_config scales traffic (and CPU blocks) down by its
        # traffic_scale; the point is that the CPU ran to completion.
        assert result.extra["cpu_blocks"] >= 1.0
        assert result.extra["cpu_dcache_miss_rate"] > 0.0

    def test_loader_round_trips_abstraction(self):
        from repro.platforms.loader import config_from_dict, config_to_dict

        config = quick_config(topology="collapsed", abstraction="tlm")
        assert config_from_dict(config_to_dict(config)) == config
