"""Unit tests for the statistics collection system."""

import math

import pytest

from repro.core import (
    ChannelUtilization,
    Counter,
    LatencySummary,
    PhasedStates,
    TimeWeightedStates,
)


class TestCounter:
    def test_add(self):
        counter = Counter("c")
        counter.add()
        counter.add(4)
        assert counter.value == 5

    def test_cannot_decrease(self):
        counter = Counter("c")
        with pytest.raises(ValueError):
            counter.add(-1)


class TestTimeWeightedStates:
    def test_breakdown_fractions(self, sim):
        tws = TimeWeightedStates(sim, initial="idle")

        def body():
            yield sim.timeout(300)
            tws.set_state("busy")
            yield sim.timeout(700)

        sim.process(body())
        sim.run()
        breakdown = tws.breakdown()
        assert breakdown["idle"] == pytest.approx(0.3)
        assert breakdown["busy"] == pytest.approx(0.7)

    def test_same_state_noop(self, sim):
        tws = TimeWeightedStates(sim, initial="a")
        tws.set_state("a")
        sim.timeout(100)
        sim.run()
        assert tws.breakdown() == {"a": 1.0}

    def test_empty_window(self, sim):
        tws = TimeWeightedStates(sim)
        assert tws.breakdown() == {}

    def test_durations_absolute(self, sim):
        tws = TimeWeightedStates(sim, initial="x")

        def body():
            yield sim.timeout(250)
            tws.set_state("y")
            yield sim.timeout(150)

        sim.process(body())
        sim.run()
        assert tws.durations() == {"x": 250, "y": 150}


class TestPhasedStates:
    def test_phase_breakdowns(self, sim):
        phased = PhasedStates(sim, initial="idle", first_phase="p1")

        def body():
            tws_set = phased.set_state
            yield sim.timeout(100)
            tws_set("busy")
            yield sim.timeout(100)
            phased.begin_phase("p2")
            yield sim.timeout(50)
            tws_set("idle")
            yield sim.timeout(150)

        sim.process(body())
        sim.run()
        result = phased.breakdowns()
        assert set(result) == {"p1", "p2"}
        assert result["p1"]["idle"] == pytest.approx(0.5)
        assert result["p1"]["busy"] == pytest.approx(0.5)
        assert result["p2"]["busy"] == pytest.approx(0.25)
        assert result["p2"]["idle"] == pytest.approx(0.75)

    def test_state_carries_across_phases(self, sim):
        phased = PhasedStates(sim, initial="busy", first_phase="p1")

        def body():
            yield sim.timeout(10)
            phased.begin_phase("p2")
            yield sim.timeout(90)

        sim.process(body())
        sim.run()
        assert phased.breakdowns()["p2"] == {"busy": 1.0}


class TestLatencySummary:
    def test_empty(self):
        summary = LatencySummary()
        assert summary.count == 0
        assert math.isnan(summary.mean)
        assert math.isnan(summary.percentile(50))

    def test_stats(self):
        summary = LatencySummary()
        for value in (10, 20, 30, 40):
            summary.add(value)
        assert summary.count == 4
        assert summary.mean == 25
        assert summary.minimum == 10
        assert summary.maximum == 40
        assert summary.percentile(0) == 10
        assert summary.percentile(100) == 40
        assert summary.percentile(50) == pytest.approx(25)

    def test_negative_rejected(self):
        summary = LatencySummary()
        with pytest.raises(ValueError):
            summary.add(-1)

    def test_percentile_range_checked(self):
        summary = LatencySummary()
        summary.add(1)
        with pytest.raises(ValueError):
            summary.percentile(101)

    def test_single_sample(self):
        summary = LatencySummary()
        summary.add(42)
        assert summary.percentile(37) == 42.0


class TestChannelUtilization:
    def test_utilization_fraction(self, sim):
        channel = ChannelUtilization(sim)

        def body():
            yield sim.timeout(1_000)

        sim.process(body())
        channel.add_busy(400, transfers=4)
        sim.run()
        assert channel.utilization() == pytest.approx(0.4)
        assert channel.transfers == 4

    def test_zero_elapsed(self, sim):
        channel = ChannelUtilization(sim)
        assert channel.utilization() == 0.0

    def test_reset(self, sim):
        channel = ChannelUtilization(sim)
        channel.add_busy(100)

        def body():
            yield sim.timeout(500)

        sim.process(body())
        sim.run()
        channel.reset()
        assert channel.busy_ps == 0
        assert channel.utilization() == 0.0

    def test_negative_busy_rejected(self, sim):
        channel = ChannelUtilization(sim)
        with pytest.raises(ValueError):
            channel.add_busy(-1)
